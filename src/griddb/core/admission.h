// Admission control and graceful load shedding for the JClarens data
// access service.
//
// The paper's north star is "heavy traffic from millions of users"; the
// failure mode it invites is a convoy: one slow mart or a runaway
// cross-database join ties up every execution slot and queue position, and
// every other client times out instead of a few being told to come back
// later. The AdmissionController puts three bounds in front of query
// execution:
//
//  1. A semaphore-style concurrency limit. Up to `max_concurrent` queries
//     execute; up to `max_queued` more wait for a slot (bounded-queue
//     backpressure); everything beyond that is shed immediately with a
//     retryable kResourceExhausted carrying a "retry_after_ms=N" hint that
//     rpc::RetryPolicy honours on the client side.
//  2. Priority-aware shedding. Interactive queries keep a reserved slice
//     of the concurrency budget (`interactive_reserve`); scan-class
//     queries are shed first, while they still can be served once load
//     drops.
//  3. A byte budget for middleware join/merge working sets. Reservations
//     above the budget are refused (shed) instead of letting concurrent
//     merges grow the heap without bound. A lone oversized query is still
//     admitted when nothing else holds memory, so the cap bounds
//     *concurrent* pressure without making big queries unservable.
//
// With `tenant_isolation` on, the controller additionally partitions the
// shared bounds into per-tenant lanes: each tenant gets its own FIFO wait
// queue (bounded by `max_queued`), a scheduling weight, an optional
// min-reserved slot count and an optional merge-memory byte budget. Freed
// slots are handed out by a deficit-round-robin scheduler over the lanes
// with waiters, so one tenant's scan storm fills only its own lane while
// other tenants keep their weighted share (and their reserved slots) of
// the execution budget. The scheduler is work-conserving: a lane with no
// demand donates both its share and its reservation — reservations are
// honoured as next-slot priority for lanes with waiters, never as slots
// held idle.
//
// All admission decisions are O(1)-ish under one mutex (O(#lanes) with
// isolation on) and never execute any query work, which is what makes a
// reject orders of magnitude cheaper than a served query (the bench gate:
// p99 reject latency < 5% of a served query). A default-constructed
// config disables everything — the seed behaviour.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "griddb/util/cancellation.h"
#include "griddb/util/status.h"

namespace griddb::core {

/// Per-tenant share of the admission budget (tenant_isolation mode).
/// Tenants without an explicit quota get the defaults below, so every
/// tenant is still isolated into its own lane.
struct TenantQuota {
  std::string tenant;  ///< "" = the default/anonymous lane.
  /// Deficit-round-robin share: a lane with weight 2 drains twice as
  /// fast as a lane with weight 1 when both have waiters.
  double weight = 1.0;
  /// Slots this tenant may always claim next: other lanes are not
  /// granted a freed slot while it would leave fewer than this many for
  /// a tenant that has queued demand below its reservation.
  size_t min_reserved = 0;
  /// Per-tenant merge-memory budget (bytes); 0 = only the global budget
  /// applies. Same lone-oversized-query exemption as the global budget.
  size_t merge_memory_budget_bytes = 0;
  /// Per-tenant retry-after hint on sheds; 0 = the global hint.
  double retry_after_ms = 0;
};

struct AdmissionConfig {
  /// Queries executing concurrently; 0 disables admission control.
  size_t max_concurrent = 0;
  /// Queries allowed to wait (block) for a slot once `max_concurrent` is
  /// reached; beyond this, arrivals are shed. 0 = shed immediately when
  /// all slots are busy. With tenant_isolation the bound applies per
  /// lane, so one tenant's backlog cannot consume another's queue space.
  size_t max_queued = 0;
  /// Slots reserved for interactive queries: scan-priority queries are
  /// shed once fewer than this many slots remain free. Clamped to
  /// max_concurrent.
  size_t interactive_reserve = 0;
  /// Retry-after hint (virtual ms) embedded in shed responses.
  double retry_after_ms = 250.0;
  /// Concurrency cap for batch-priority queries (the asynchronous batch
  /// service's chunk sub-queries). Batch work is scheduled strictly out
  /// of idle capacity: a batch query is granted a slot only when no
  /// waiter of any priority is queued, the interactive reserve stays
  /// untouched, and fewer than this many batch queries are in flight —
  /// otherwise it is shed with a retry hint (it never queues, so it can
  /// never hold a queue position against foreground traffic). Because
  /// every chunk is a separate admission, running batch work yields its
  /// slots back within one chunk once foreground load returns. 0 derives
  /// half the non-reserved slots (at least one).
  size_t batch_slots = 0;
  /// Byte budget for concurrent join/merge working sets; 0 = unlimited.
  size_t merge_memory_budget_bytes = 0;
  /// Partition slots/queue/memory into per-tenant lanes drained by a
  /// deficit-round-robin scheduler (see the header comment). Off = all
  /// tenants share one FIFO lane (the PR 5 behaviour).
  bool tenant_isolation = false;
  /// Explicit per-tenant quotas; tenants not listed get TenantQuota
  /// defaults (weight 1, no reservation, no private byte budget).
  std::vector<TenantQuota> tenant_quotas;
  /// Gate on dedicated-lane creation for tenants without an explicit
  /// quota. Lanes (and their DRR rotation slots) live for the life of the
  /// controller, so minting one per arbitrary client-supplied tenant
  /// string would let an attacker grow them without bound; when this is
  /// set, an unlisted tenant it rejects shares the default ("") lane
  /// instead. DataAccessService wires it to the RBAC catalog's user set
  /// when both are configured. Null = every tenant name gets a lane
  /// (trusting callers — test/bench use).
  std::function<bool(const std::string&)> known_tenant;

  bool enabled() const { return max_concurrent > 0; }
  bool per_tenant() const { return enabled() && tenant_isolation; }
};

class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionConfig& config);
  ~AdmissionController();

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// RAII execution slot: releasing the ticket (destruction) frees the
  /// slot and wakes one queued waiter. A ticket from a disabled
  /// controller is a no-op.
  class Ticket {
   public:
    Ticket() = default;
    ~Ticket() { Release(); }
    Ticket(Ticket&& other) noexcept
        : controller_(other.controller_),
          tenant_(std::move(other.tenant_)),
          batch_(other.batch_) {
      other.controller_ = nullptr;
    }
    Ticket& operator=(Ticket&& other) noexcept {
      if (this != &other) {
        Release();
        controller_ = other.controller_;
        tenant_ = std::move(other.tenant_);
        batch_ = other.batch_;
        other.controller_ = nullptr;
      }
      return *this;
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;

    void Release();

   private:
    friend class AdmissionController;
    explicit Ticket(AdmissionController* controller, std::string tenant = "",
                    bool batch = false)
        : controller_(controller), tenant_(std::move(tenant)), batch_(batch) {}
    AdmissionController* controller_ = nullptr;
    std::string tenant_;
    bool batch_ = false;  // releases a batch slot alongside the shared one
  };

  /// RAII merge-memory reservation.
  class MemoryLease {
   public:
    MemoryLease() = default;
    ~MemoryLease() { Release(); }
    MemoryLease(MemoryLease&& other) noexcept
        : controller_(other.controller_),
          bytes_(other.bytes_),
          tenant_(std::move(other.tenant_)) {
      other.controller_ = nullptr;
      other.bytes_ = 0;
    }
    MemoryLease& operator=(MemoryLease&& other) noexcept {
      if (this != &other) {
        Release();
        controller_ = other.controller_;
        bytes_ = other.bytes_;
        tenant_ = std::move(other.tenant_);
        other.controller_ = nullptr;
        other.bytes_ = 0;
      }
      return *this;
    }
    MemoryLease(const MemoryLease&) = delete;
    MemoryLease& operator=(const MemoryLease&) = delete;

    void Release();

   private:
    friend class AdmissionController;
    MemoryLease(AdmissionController* controller, size_t bytes,
                std::string tenant = "")
        : controller_(controller), bytes_(bytes), tenant_(std::move(tenant)) {}
    AdmissionController* controller_ = nullptr;
    size_t bytes_ = 0;
    std::string tenant_;
  };

  /// Per-lane introspection for tests, benches and dataaccess.tenantStats.
  struct LaneStats {
    std::string tenant;
    double weight = 1.0;
    size_t min_reserved = 0;
    size_t in_flight = 0;
    size_t queued = 0;
    uint64_t admitted = 0;
    uint64_t shed = 0;
  };

  /// Admission decision at query entry. Returns a slot ticket, possibly
  /// after waiting in the bounded queue; sheds with kResourceExhausted
  /// (message carries "retry_after_ms=N") when the queue is full, the
  /// priority's slice is exhausted, or `cancel` fires while queued. With
  /// tenant_isolation the decision runs in `tenant`'s lane ("" = the
  /// default lane); without it `tenant` is ignored.
  Result<Ticket> Admit(QueryPriority priority,
                       const CancelToken* cancel = nullptr,
                       const std::string& tenant = "");

  /// Reserves `bytes` of join/merge working-set budget. Sheds with
  /// kResourceExhausted when the reservation would overflow the global
  /// budget — or, with tenant_isolation, the tenant's own byte budget —
  /// while other queries hold memory; a lone reservation is always
  /// granted.
  Result<MemoryLease> ReserveMergeMemory(size_t bytes,
                                         const std::string& tenant = "");

  const AdmissionConfig& config() const { return config_; }
  size_t in_flight() const;
  size_t batch_in_flight() const;
  size_t queued() const;
  size_t merge_memory_bytes() const;
  /// One entry per lane (tenant_isolation only; empty otherwise).
  std::vector<LaneStats> lane_stats() const;

 private:
  struct Waiter {
    QueryPriority priority = QueryPriority::kInteractive;
    bool granted = false;
  };
  struct Lane {
    TenantQuota quota;
    size_t in_flight = 0;
    uint64_t admitted = 0;
    uint64_t shed = 0;
    double deficit = 0;  // DRR credit, in slots
    size_t merge_bytes = 0;
    size_t merge_holders = 0;
    std::deque<std::shared_ptr<Waiter>> queue;
  };

  void ReleaseSlot(const std::string& tenant, bool batch);
  void ReleaseMemory(size_t bytes, const std::string& tenant);
  /// Idle-capacity-only admission for batch-priority queries (no queue,
  /// no DRR interaction); see AdmissionConfig::batch_slots.
  Result<Ticket> AdmitBatchLocked(const std::string& tenant);
  Status Shed(QueryPriority priority, const char* why) const;
  Status ShedLane(Lane& lane, QueryPriority priority, const char* why);
  Lane& LaneLocked(const std::string& tenant);
  bool CanGrantLocked(const Lane& lane, QueryPriority priority) const;
  void GrantLocked(Lane& lane);
  /// Deficit-round-robin pass: hands freed slots to queued waiters, one
  /// slot per unit of accumulated per-lane credit, skipping empty lanes
  /// (work conservation) and lanes whose head CanGrantLocked refuses.
  /// Liveness invariant: the pass never returns while a free slot could
  /// be granted to some queued head — if a rotation stalls only because
  /// every such lane's credit is below one slot (possible with fractional
  /// weights), backlogged lanes are recharged a quantum and the rotation
  /// reruns, so a waiter is never stranded waiting for unrelated traffic
  /// to trigger the next dispatch.
  void DispatchLocked();

  const AdmissionConfig config_;
  mutable std::mutex mu_;
  std::condition_variable slot_cv_;
  size_t in_flight_ = 0;
  size_t batch_in_flight_ = 0;  // subset of in_flight_ holding batch tickets
  size_t queued_ = 0;
  size_t merge_memory_bytes_ = 0;
  size_t memory_holders_ = 0;
  bool shutting_down_ = false;
  // Tenant lanes (tenant_isolation only). std::map nodes are stable, so
  // Lane references survive lane creation.
  std::map<std::string, Lane> lanes_;
  std::vector<std::string> rr_order_;  // DRR rotation, by lane key
  size_t rr_cursor_ = 0;
  /// True when the cursor lane has not been charged its quantum yet this
  /// visit. Slots free one at a time, so a dispatch pass often stops
  /// mid-lane with credit left; the next pass must resume that lane
  /// WITHOUT recharging, or weights degenerate to plain round-robin.
  bool rr_fresh_ = true;
};

}  // namespace griddb::core
