// Admission control and graceful load shedding for the JClarens data
// access service.
//
// The paper's north star is "heavy traffic from millions of users"; the
// failure mode it invites is a convoy: one slow mart or a runaway
// cross-database join ties up every execution slot and queue position, and
// every other client times out instead of a few being told to come back
// later. The AdmissionController puts three bounds in front of query
// execution:
//
//  1. A semaphore-style concurrency limit. Up to `max_concurrent` queries
//     execute; up to `max_queued` more wait for a slot (bounded-queue
//     backpressure); everything beyond that is shed immediately with a
//     retryable kResourceExhausted carrying a "retry_after_ms=N" hint that
//     rpc::RetryPolicy honours on the client side.
//  2. Priority-aware shedding. Interactive queries keep a reserved slice
//     of the concurrency budget (`interactive_reserve`); scan-class
//     queries are shed first, while they still can be served once load
//     drops.
//  3. A byte budget for middleware join/merge working sets. Reservations
//     above the budget are refused (shed) instead of letting concurrent
//     merges grow the heap without bound. A lone oversized query is still
//     admitted when nothing else holds memory, so the cap bounds
//     *concurrent* pressure without making big queries unservable.
//
// All admission decisions are O(1) under one mutex and never execute any
// query work, which is what makes a reject orders of magnitude cheaper
// than a served query (the bench gate: p99 reject latency < 5% of a
// served query). A default-constructed config disables everything — the
// seed behaviour.
#pragma once

#include <cstddef>
#include <functional>
#include <condition_variable>
#include <mutex>

#include "griddb/util/cancellation.h"
#include "griddb/util/status.h"

namespace griddb::core {

struct AdmissionConfig {
  /// Queries executing concurrently; 0 disables admission control.
  size_t max_concurrent = 0;
  /// Queries allowed to wait (block) for a slot once `max_concurrent` is
  /// reached; beyond this, arrivals are shed. 0 = shed immediately when
  /// all slots are busy.
  size_t max_queued = 0;
  /// Slots reserved for interactive queries: scan-priority queries are
  /// shed once fewer than this many slots remain free. Clamped to
  /// max_concurrent.
  size_t interactive_reserve = 0;
  /// Retry-after hint (virtual ms) embedded in shed responses.
  double retry_after_ms = 250.0;
  /// Byte budget for concurrent join/merge working sets; 0 = unlimited.
  size_t merge_memory_budget_bytes = 0;

  bool enabled() const { return max_concurrent > 0; }
};

class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionConfig& config);
  ~AdmissionController();

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// RAII execution slot: releasing the ticket (destruction) frees the
  /// slot and wakes one queued waiter. A ticket from a disabled
  /// controller is a no-op.
  class Ticket {
   public:
    Ticket() = default;
    ~Ticket() { Release(); }
    Ticket(Ticket&& other) noexcept : controller_(other.controller_) {
      other.controller_ = nullptr;
    }
    Ticket& operator=(Ticket&& other) noexcept {
      if (this != &other) {
        Release();
        controller_ = other.controller_;
        other.controller_ = nullptr;
      }
      return *this;
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;

    void Release();

   private:
    friend class AdmissionController;
    explicit Ticket(AdmissionController* controller)
        : controller_(controller) {}
    AdmissionController* controller_ = nullptr;
  };

  /// RAII merge-memory reservation.
  class MemoryLease {
   public:
    MemoryLease() = default;
    ~MemoryLease() { Release(); }
    MemoryLease(MemoryLease&& other) noexcept
        : controller_(other.controller_), bytes_(other.bytes_) {
      other.controller_ = nullptr;
      other.bytes_ = 0;
    }
    MemoryLease& operator=(MemoryLease&& other) noexcept {
      if (this != &other) {
        Release();
        controller_ = other.controller_;
        bytes_ = other.bytes_;
        other.controller_ = nullptr;
        other.bytes_ = 0;
      }
      return *this;
    }
    MemoryLease(const MemoryLease&) = delete;
    MemoryLease& operator=(const MemoryLease&) = delete;

    void Release();

   private:
    friend class AdmissionController;
    MemoryLease(AdmissionController* controller, size_t bytes)
        : controller_(controller), bytes_(bytes) {}
    AdmissionController* controller_ = nullptr;
    size_t bytes_ = 0;
  };

  /// Admission decision at query entry. Returns a slot ticket, possibly
  /// after waiting in the bounded queue; sheds with kResourceExhausted
  /// (message carries "retry_after_ms=N") when the queue is full, the
  /// priority's slice is exhausted, or `cancel` fires while queued.
  Result<Ticket> Admit(QueryPriority priority,
                       const CancelToken* cancel = nullptr);

  /// Reserves `bytes` of join/merge working-set budget. Sheds with
  /// kResourceExhausted when the reservation would overflow the budget
  /// while other queries hold memory; a lone reservation is always
  /// granted.
  Result<MemoryLease> ReserveMergeMemory(size_t bytes);

  const AdmissionConfig& config() const { return config_; }
  size_t in_flight() const;
  size_t queued() const;
  size_t merge_memory_bytes() const;

 private:
  void ReleaseSlot();
  void ReleaseMemory(size_t bytes);
  Status Shed(QueryPriority priority, const char* why) const;

  const AdmissionConfig config_;
  mutable std::mutex mu_;
  std::condition_variable slot_cv_;
  size_t in_flight_ = 0;
  size_t queued_ = 0;
  size_t merge_memory_bytes_ = 0;
  size_t memory_holders_ = 0;
  bool shutting_down_ = false;
};

}  // namespace griddb::core
