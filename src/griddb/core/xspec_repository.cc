#include "griddb/core/xspec_repository.h"

#include <fstream>
#include <sstream>

#include "griddb/util/strings.h"

namespace griddb::core {

uint64_t XSpecRepository::Put(const std::string& url, std::string content) {
  std::lock_guard<std::mutex> lock(mu_);
  ++epoch_;
  documents_[url] = Document{std::move(content), epoch_};
  return epoch_;
}

bool XSpecRepository::Has(const std::string& url) const {
  std::lock_guard<std::mutex> lock(mu_);
  return documents_.count(url) > 0;
}

uint64_t XSpecRepository::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

Result<uint64_t> XSpecRepository::EpochOf(const std::string& url) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = documents_.find(url);
  if (it == documents_.end()) {
    return NotFound("no XSpec document at '" + url + "'");
  }
  return it->second.epoch;
}

Result<std::string> XSpecRepository::Fetch(const std::string& url) const {
  if (StartsWith(url, "file://")) {
    std::string path = url.substr(7);
    std::ifstream in(path, std::ios::binary);
    if (!in) return Unavailable("cannot read XSpec file '" + path + "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = documents_.find(url);
  if (it == documents_.end()) {
    return NotFound("no XSpec document at '" + url + "'");
  }
  return it->second.content;
}

}  // namespace griddb::core
