#include "griddb/core/integrity_monitor.h"

#include "griddb/obs/metrics.h"
#include "griddb/util/logging.h"

namespace griddb::core {

namespace {
obs::Counter& SweepsCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "griddb.core.integrity.sweeps");
  return *c;
}
obs::Counter& ChecksCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "griddb.core.integrity.checks");
  return *c;
}
obs::Counter& DivergencesCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "griddb.core.integrity.divergences");
  return *c;
}
obs::Counter& QuarantinesCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "griddb.core.integrity.quarantines");
  return *c;
}
obs::Counter& RepairsCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "griddb.core.integrity.repairs");
  return *c;
}
obs::Counter& ReinstatedCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "griddb.core.integrity.reinstated");
  return *c;
}
}  // namespace

void IntegrityMonitor::RegisterReplica(ReplicaSpec spec) {
  specs_.push_back(std::move(spec));
}

Status IntegrityMonitor::CheckReplica(const ReplicaSpec& spec) {
  ++stats_.replicas_checked;
  ChecksCounter().Add(1);
  obs::Span span = service_->tracer().StartSpan("integrity.check");
  span.AddAttr("table", spec.logical_table);
  span.AddAttr("database", spec.database_name);
  GRIDDB_ASSIGN_OR_RETURN(storage::TableDigest reference,
                          spec.reference_digest());
  GRIDDB_ASSIGN_OR_RETURN(
      storage::TableDigest actual,
      service_->TableDigest(spec.logical_table, spec.database_name));
  // Feed the observed content digest to the query cache: a digest that
  // moved since the last observation bumps the table's version, forcing a
  // result-cache miss on every query that referenced it.
  service_->ObserveTableDigest(spec.logical_table, actual.md5);
  if (actual == reference) {
    if (service_->IsQuarantined(spec.database_name)) {
      // Repaired out of band (or a previous repair whose reinstate was
      // interrupted): it matches again, put it back into routing.
      GRIDDB_RETURN_IF_ERROR(service_->ReinstateDatabase(spec.database_name));
      ++stats_.reinstated;
      ReinstatedCounter().Add(1);
    }
    return Status::Ok();
  }

  ++stats_.divergences;
  DivergencesCounter().Add(1);
  if (span.active()) span.AddAttr("divergent", "true");
  GRIDDB_RETURN_IF_ERROR(service_->QuarantineDatabase(
      spec.database_name,
      "anti-entropy: '" + spec.logical_table + "' diverges (replica " +
          actual.ToString() + " vs reference " + reference.ToString() + ")"));
  ++stats_.quarantines;
  QuarantinesCounter().Add(1);

  if (!spec.repair) {
    return Corruption("replica of '" + spec.logical_table + "' in '" +
                      spec.database_name +
                      "' diverges and no repair is registered; it stays "
                      "quarantined");
  }
  Status repaired = spec.repair();
  if (!repaired.ok()) {
    ++stats_.repair_failures;
    return repaired;
  }

  // Re-verify before reinstating — a repair that produced yet another
  // divergent copy must not re-enter routing. Both sides are re-read:
  // the reference may have legitimately moved during the repair.
  GRIDDB_ASSIGN_OR_RETURN(reference, spec.reference_digest());
  GRIDDB_ASSIGN_OR_RETURN(
      actual, service_->TableDigest(spec.logical_table, spec.database_name));
  service_->ObserveTableDigest(spec.logical_table, actual.md5);
  if (actual != reference) {
    ++stats_.repair_failures;
    return Corruption("replica of '" + spec.logical_table + "' in '" +
                      spec.database_name + "' still diverges after repair (" +
                      actual.ToString() + " vs " + reference.ToString() + ")");
  }
  ++stats_.repairs;
  RepairsCounter().Add(1);
  GRIDDB_RETURN_IF_ERROR(service_->ReinstateDatabase(spec.database_name));
  ++stats_.reinstated;
  ReinstatedCounter().Add(1);
  GRIDDB_LOG(Info) << "anti-entropy repaired and reinstated '"
                   << spec.database_name << "' for table '"
                   << spec.logical_table << "'";
  return Status::Ok();
}

Status IntegrityMonitor::SweepOnce() {
  ++stats_.sweeps;
  SweepsCounter().Add(1);
  obs::Span span = service_->tracer().StartSpan("integrity.sweep");
  span.AddAttr("replicas", std::to_string(specs_.size()));
  Status first = Status::Ok();
  for (const ReplicaSpec& spec : specs_) {
    Status outcome = CheckReplica(spec);
    if (!outcome.ok() && first.ok()) first = outcome;
  }
  return first;
}

rpc::XmlRpcValue IntegrityStatsToRpc(const IntegrityStats& stats) {
  rpc::XmlRpcStruct out;
  // Sparse like StatsToRpc: an all-healthy sweep report carries only the
  // sweep and check counters it always carried, nothing fault-related.
  out["sweeps"] = static_cast<int64_t>(stats.sweeps);
  out["replicas_checked"] = static_cast<int64_t>(stats.replicas_checked);
  if (stats.divergences) {
    out["divergences"] = static_cast<int64_t>(stats.divergences);
  }
  if (stats.quarantines) {
    out["quarantines"] = static_cast<int64_t>(stats.quarantines);
  }
  if (stats.repairs) out["repairs"] = static_cast<int64_t>(stats.repairs);
  if (stats.repair_failures) {
    out["repair_failures"] = static_cast<int64_t>(stats.repair_failures);
  }
  if (stats.reinstated) {
    out["reinstated"] = static_cast<int64_t>(stats.reinstated);
  }
  return out;
}

IntegrityStats IntegrityStatsFromRpc(const rpc::XmlRpcValue& value) {
  IntegrityStats stats;
  auto get_int = [&](const char* key, size_t* out) {
    auto member = value.Member(key);
    if (member.ok()) {
      auto v = (*member)->AsInt();
      if (v.ok()) *out = static_cast<size_t>(*v);
    }
  };
  get_int("sweeps", &stats.sweeps);
  get_int("replicas_checked", &stats.replicas_checked);
  get_int("divergences", &stats.divergences);
  get_int("quarantines", &stats.quarantines);
  get_int("repairs", &stats.repairs);
  get_int("repair_failures", &stats.repair_failures);
  get_int("reinstated", &stats.reinstated);
  return stats;
}

}  // namespace griddb::core
