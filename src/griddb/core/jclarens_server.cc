#include "griddb/core/jclarens_server.h"

#include "griddb/obs/metrics.h"
#include "griddb/unity/xspec.h"
#include "griddb/util/logging.h"

namespace griddb::core {

using rpc::XmlRpcArray;
using rpc::XmlRpcStruct;
using rpc::XmlRpcValue;

namespace {
Result<std::string> StringParam(const XmlRpcArray& params, size_t index) {
  if (index >= params.size()) {
    return InvalidArgument("missing parameter " + std::to_string(index));
  }
  return params[index].AsString();
}

Result<int64_t> IntParam(const XmlRpcArray& params, size_t index) {
  if (index >= params.size()) {
    return InvalidArgument("missing parameter " + std::to_string(index));
  }
  return params[index].AsInt();
}

XmlRpcValue BatchInfoToRpc(const BatchJobInfo& info) {
  XmlRpcStruct out;
  out["id"] = static_cast<int64_t>(info.id);
  out["state"] = std::string(BatchJobStateName(info.state));
  out["chunksDone"] = static_cast<int64_t>(info.chunks_done);
  out["totalChunks"] = static_cast<int64_t>(info.total_chunks);
  out["totalKnown"] = info.total_known;
  out["rows"] = static_cast<int64_t>(info.rows);
  out["recovered"] = info.recovered;
  out["ioPauses"] = static_cast<int64_t>(info.io_pauses);
  out["scratchMart"] = info.scratch_mart;
  out["resultTable"] = info.result_table;
  if (!info.error.empty()) out["error"] = info.error;
  return XmlRpcValue(std::move(out));
}
}  // namespace

JClarensServer::JClarensServer(DataAccessConfig config,
                               ral::DatabaseCatalog* catalog,
                               rpc::Transport* transport,
                               XSpecRepository* xspec_repo,
                               BatchConfig batch)
    : service_(std::move(config), catalog, transport),
      xspec_repo_(xspec_repo),
      server_(service_.config().server_url, transport) {
  if (batch.enabled()) {
    batch_ = std::make_unique<BatchJobManager>(&service_, catalog,
                                               std::move(batch));
    // Recovery before the first worker: interrupted jobs resume, done
    // jobs' scratch tables come back. A damaged journal (bad magic) is
    // operator-visible but must not keep the server from serving
    // interactive queries.
    if (Status recovered = batch_->Recover(); !recovered.ok()) {
      GRIDDB_LOG(Warn) << "batch journal recovery failed: "
                       << recovered.ToString();
    }
    if (batch_->config().autostart) batch_->Start();
  }
  RegisterMethods();
}

JClarensServer::~JClarensServer() {
  if (batch_) batch_->Stop();
}

void JClarensServer::RegisterMethods() {
  (void)server_.RegisterMethod(
      "dataaccess.query",
      [this](const XmlRpcArray& params,
             rpc::CallContext& ctx) -> Result<XmlRpcValue> {
        GRIDDB_ASSIGN_OR_RETURN(std::string sql, StringParam(params, 0));
        if (ctx.forward_depth >= service_.config().max_forward_depth) {
          std::string path = ctx.forward_path.empty()
                                 ? service_.config().server_url
                                 : ctx.forward_path + " -> " +
                                       service_.config().server_url;
          return FailedPrecondition(
              "query forwarding depth exceeded after " + path +
              " (RLS mapping loop?)");
        }
        // A request carrying trace context continues the caller's trace:
        // the handler span parents under the wire context, Query's spans
        // nest under the handler span (same tracer, same thread), and the
        // whole finished subtree ships back in the sparse "spans" member.
        // Untraced requests leave the response byte-identical.
        obs::Tracer& tracer = service_.tracer();
        obs::Span span;
        if (tracer.enabled() && ctx.trace_parent.valid()) {
          span = tracer.StartSpanUnder("dataaccess.query.remote",
                                       ctx.trace_parent);
          span.AddAttr("server", service_.config().server_url);
        }
        // Overload context. A budget shipped on the wire (sparse
        // <deadlineMs>, already shrunk by upstream hops and latency)
        // becomes a deadline token on the virtual clock; an optional
        // second parameter "scan" lowers the scheduling class so admission
        // control sheds this query before interactive ones. Both are
        // sparse: requests that carry neither run exactly as before.
        QueryContext qctx;
        // The tenant identity travels hop-by-hop (sparse <tenant> header):
        // grant checks and lane accounting on every server along a
        // forwarding chain see the ORIGINAL requester, not the forwarding
        // peer.
        qctx.tenant = ctx.tenant;
        if (ctx.deadline_budget_ms > 0) {
          net::Network* network = ctx.transport->network();
          qctx.cancel = CancelToken::WithBudget(
              [network] { return network->NowMs(); }, ctx.deadline_budget_ms);
        }
        if (params.size() >= 2) {
          auto priority = params[1].AsString();
          if (priority.ok() && *priority == "scan") {
            qctx.priority = QueryPriority::kScan;
          }
        }
        QueryStats stats;
        auto rs = service_.Query(sql, &stats, ctx.forward_depth,
                                 ctx.forward_path, std::move(qctx));
        if (!rs.ok()) {
          if (span.active()) span.SetError(rs.status().ToString());
          return rs.status();
        }
        // The service's simulated processing time becomes server-side cost
        // so callers (local clients and forwarding servers) account for it.
        ctx.cost.AddMs(stats.simulated_ms);
        XmlRpcStruct out;
        out["result"] = rpc::ResultSetToRpc(std::move(*rs));
        out["stats"] = StatsToRpc(stats);
        if (span.active()) {
          const uint64_t trace_id = span.context().trace_id;
          span.End();
          // Destructive take: a client retry that re-runs this handler
          // ships only the retry's spans, never stale duplicates.
          std::vector<obs::SpanRecord> spans = tracer.TakeTrace(trace_id);
          // Stamp the producing host so the caller's rendered trace shows
          // where the remote work ran ("@pentium4-b" in FormatTrace).
          for (obs::SpanRecord& record : spans) {
            if (record.host.empty()) record.host = service_.config().host;
          }
          if (!spans.empty()) out["spans"] = SpansToRpc(spans);
        }
        return XmlRpcValue(std::move(out));
      });

  (void)server_.RegisterMethod(
      "dataaccess.metrics",
      [](const XmlRpcArray& params,
         rpc::CallContext& ctx) -> Result<XmlRpcValue> {
        (void)params;
        (void)ctx;
        // The registry is process-wide (all servers in a simulation share
        // it), so any JClarens endpoint can serve the full snapshot.
        obs::MetricsSnapshot snap = obs::MetricsRegistry::Default().Snapshot();
        XmlRpcStruct counters;
        for (const auto& [name, value] : snap.counters) {
          counters[name] = static_cast<int64_t>(value);
        }
        XmlRpcStruct gauges;
        for (const auto& [name, value] : snap.gauges) gauges[name] = value;
        XmlRpcStruct histograms;
        for (const auto& [name, data] : snap.histograms) {
          XmlRpcStruct h;
          h["count"] = static_cast<int64_t>(data.count);
          h["sum"] = data.sum;
          XmlRpcArray buckets;
          for (uint64_t bucket : data.buckets) {
            buckets.emplace_back(static_cast<int64_t>(bucket));
          }
          h["buckets"] = std::move(buckets);
          histograms[name] = std::move(h);
        }
        XmlRpcStruct out;
        out["counters"] = std::move(counters);
        out["gauges"] = std::move(gauges);
        out["histograms"] = std::move(histograms);
        return XmlRpcValue(std::move(out));
      });

  (void)server_.RegisterMethod(
      "dataaccess.tenantStats",
      [this](const XmlRpcArray& params,
             rpc::CallContext& ctx) -> Result<XmlRpcValue> {
        (void)params;
        (void)ctx;
        // Per-lane admission introspection (the registry's tenant metrics
        // are aggregates; the per-tenant breakdown lives here).
        XmlRpcArray lanes;
        for (const AdmissionController::LaneStats& lane :
             service_.admission().lane_stats()) {
          XmlRpcStruct entry;
          entry["tenant"] = lane.tenant;
          entry["weight"] = lane.weight;
          entry["min_reserved"] = static_cast<int64_t>(lane.min_reserved);
          entry["in_flight"] = static_cast<int64_t>(lane.in_flight);
          entry["queued"] = static_cast<int64_t>(lane.queued);
          entry["admitted"] = static_cast<int64_t>(lane.admitted);
          entry["shed"] = static_cast<int64_t>(lane.shed);
          lanes.emplace_back(std::move(entry));
        }
        return XmlRpcValue(std::move(lanes));
      });

  (void)server_.RegisterMethod(
      "dataaccess.explain",
      [this](const XmlRpcArray& params,
             rpc::CallContext& ctx) -> Result<XmlRpcValue> {
        (void)ctx;
        GRIDDB_ASSIGN_OR_RETURN(std::string sql, StringParam(params, 0));
        auto plan = service_.driver().Plan(sql);
        if (!plan.ok()) {
          if (plan.status().code() == StatusCode::kNotFound) {
            return XmlRpcValue(
                "plan involves tables not registered locally; execution "
                "would consult the RLS (" +
                plan.status().message() + ")");
          }
          return plan.status();
        }
        return XmlRpcValue(unity::DescribePlan(*plan));
      });

  (void)server_.RegisterMethod(
      "dataaccess.listTables",
      [this](const XmlRpcArray& params,
             rpc::CallContext& ctx) -> Result<XmlRpcValue> {
        (void)params;
        (void)ctx;
        XmlRpcArray names;
        for (const std::string& name : service_.LocalTables()) {
          names.emplace_back(name);
        }
        return XmlRpcValue(std::move(names));
      });

  (void)server_.RegisterMethod(
      "dataaccess.describeTable",
      [this](const XmlRpcArray& params,
             rpc::CallContext& ctx) -> Result<XmlRpcValue> {
        (void)ctx;
        GRIDDB_ASSIGN_OR_RETURN(std::string logical, StringParam(params, 0));
        GRIDDB_ASSIGN_OR_RETURN(unity::TableBinding binding,
                                service_.DescribeTable(logical));
        XmlRpcArray columns;
        for (const unity::ColumnBinding& col : binding.columns) {
          XmlRpcStruct column;
          column["name"] = col.logical;
          column["type"] = std::string(storage::DataTypeName(col.type));
          columns.emplace_back(std::move(column));
        }
        XmlRpcStruct out;
        out["table"] = binding.logical;
        out["database"] = binding.database_name;
        out["columns"] = std::move(columns);
        return XmlRpcValue(std::move(out));
      });

  (void)server_.RegisterMethod(
      "dataaccess.tableDigest",
      [this](const XmlRpcArray& params,
             rpc::CallContext& ctx) -> Result<XmlRpcValue> {
        (void)ctx;
        GRIDDB_ASSIGN_OR_RETURN(std::string logical, StringParam(params, 0));
        std::string database_name;
        if (params.size() > 1) {
          GRIDDB_ASSIGN_OR_RETURN(database_name, params[1].AsString());
        }
        GRIDDB_ASSIGN_OR_RETURN(storage::TableDigest digest,
                                service_.TableDigest(logical, database_name));
        XmlRpcStruct out;
        out["rows"] = static_cast<int64_t>(digest.rows);
        out["md5"] = digest.md5;
        return XmlRpcValue(std::move(out));
      });

  (void)server_.RegisterMethod(
      "dataaccess.registerDatabase",
      [this](const XmlRpcArray& params,
             rpc::CallContext& ctx) -> Result<XmlRpcValue> {
        (void)ctx;
        GRIDDB_ASSIGN_OR_RETURN(std::string connection, StringParam(params, 0));
        std::string driver;
        if (params.size() > 1) {
          GRIDDB_ASSIGN_OR_RETURN(driver, params[1].AsString());
        }
        GRIDDB_RETURN_IF_ERROR(
            service_.RegisterLiveDatabase(connection, driver));
        return XmlRpcValue(true);
      });

  (void)server_.RegisterMethod(
      "dataaccess.cacheInvalidate",
      [this](const XmlRpcArray& params,
             rpc::CallContext& ctx) -> Result<XmlRpcValue> {
        (void)ctx;
        // Optional param 0: a logical table to invalidate; with no
        // parameter the whole cache (plans included) is dropped.
        std::string table;
        if (!params.empty()) {
          GRIDDB_ASSIGN_OR_RETURN(table, params[0].AsString());
        }
        return XmlRpcValue(
            static_cast<int64_t>(service_.CacheInvalidate(table)));
      });

  // ---- batch-query service (always registered; kUnavailable when the
  // server has no BatchConfig, so clients get a clean capability error
  // instead of kNotFound method-missing noise). The authenticated tenant
  // from the call context scopes every operation: jobs are visible only
  // to their submitter and results land in that tenant's scratch mart.
  (void)server_.RegisterMethod(
      "dataaccess.batchSubmit",
      [this](const XmlRpcArray& params,
             rpc::CallContext& ctx) -> Result<XmlRpcValue> {
        if (!batch_) {
          return Unavailable("batch service not configured on this server");
        }
        GRIDDB_ASSIGN_OR_RETURN(std::string sql, StringParam(params, 0));
        GRIDDB_ASSIGN_OR_RETURN(uint64_t id, batch_->Submit(ctx.tenant, sql));
        return XmlRpcValue(static_cast<int64_t>(id));
      });

  (void)server_.RegisterMethod(
      "dataaccess.batchPoll",
      [this](const XmlRpcArray& params,
             rpc::CallContext& ctx) -> Result<XmlRpcValue> {
        if (!batch_) {
          return Unavailable("batch service not configured on this server");
        }
        GRIDDB_ASSIGN_OR_RETURN(int64_t id, IntParam(params, 0));
        GRIDDB_ASSIGN_OR_RETURN(
            BatchJobInfo info,
            batch_->Poll(ctx.tenant, static_cast<uint64_t>(id)));
        return BatchInfoToRpc(info);
      });

  (void)server_.RegisterMethod(
      "dataaccess.batchCancel",
      [this](const XmlRpcArray& params,
             rpc::CallContext& ctx) -> Result<XmlRpcValue> {
        if (!batch_) {
          return Unavailable("batch service not configured on this server");
        }
        GRIDDB_ASSIGN_OR_RETURN(int64_t id, IntParam(params, 0));
        GRIDDB_RETURN_IF_ERROR(
            batch_->Cancel(ctx.tenant, static_cast<uint64_t>(id)));
        return XmlRpcValue(true);
      });

  (void)server_.RegisterMethod(
      "dataaccess.batchFetch",
      [this](const XmlRpcArray& params,
             rpc::CallContext& ctx) -> Result<XmlRpcValue> {
        if (!batch_) {
          return Unavailable("batch service not configured on this server");
        }
        GRIDDB_ASSIGN_OR_RETURN(int64_t id, IntParam(params, 0));
        int64_t page = 0;
        if (params.size() > 1) {
          GRIDDB_ASSIGN_OR_RETURN(page, params[1].AsInt());
        }
        if (page < 0) return InvalidArgument("page must be >= 0");
        GRIDDB_ASSIGN_OR_RETURN(
            storage::ResultSet rs,
            batch_->Fetch(ctx.tenant, static_cast<uint64_t>(id),
                          static_cast<size_t>(page)));
        XmlRpcStruct out;
        out["rows"] = static_cast<int64_t>(rs.rows.size());
        out["result"] = rpc::ResultSetToRpc(std::move(rs));
        return XmlRpcValue(std::move(out));
      });

  // Debug introspection: the crash points the batch checkpoint protocol
  // can fire, straight from the code's own registry. Chaos schedules,
  // the GRIDDB_CRASH_POINT CI sweep and the docs enumerate THIS list
  // instead of hand-copying names that would drift.
  (void)server_.RegisterMethod(
      "dataaccess.crashPoints",
      [](const XmlRpcArray& params,
         rpc::CallContext& ctx) -> Result<XmlRpcValue> {
        (void)params;
        (void)ctx;
        XmlRpcArray names;
        for (const std::string& name : BatchJobManager::CrashPointNames()) {
          names.emplace_back(name);
        }
        return XmlRpcValue(std::move(names));
      });

  (void)server_.RegisterMethod(
      "dataaccess.pluginDatabase",
      [this](const XmlRpcArray& params,
             rpc::CallContext& ctx) -> Result<XmlRpcValue> {
        (void)ctx;
        GRIDDB_ASSIGN_OR_RETURN(std::string xspec_url, StringParam(params, 0));
        GRIDDB_ASSIGN_OR_RETURN(std::string driver, StringParam(params, 1));
        GRIDDB_ASSIGN_OR_RETURN(std::string connection, StringParam(params, 2));
        if (!xspec_repo_) {
          return Unavailable("no XSpec repository configured on this server");
        }
        // Download, parse, connect, update (paper §4.10).
        GRIDDB_ASSIGN_OR_RETURN(std::string content,
                                xspec_repo_->Fetch(xspec_url));
        GRIDDB_ASSIGN_OR_RETURN(unity::LowerXSpec lower,
                                unity::LowerXSpec::FromXml(content));
        unity::UpperXSpecEntry upper;
        upper.database_name = lower.database_name;
        upper.url = connection;
        upper.driver = driver;
        upper.lower_spec = xspec_url;
        GRIDDB_RETURN_IF_ERROR(service_.RegisterDatabase(upper, lower));
        return XmlRpcValue(true);
      });
}

}  // namespace griddb::core
