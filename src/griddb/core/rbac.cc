#include "griddb/core/rbac.h"

#include <utility>

#include "griddb/obs/metrics.h"
#include "griddb/util/strings.h"

namespace griddb::core {

namespace {
obs::Counter& ChecksCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("griddb.tenant.checks");
  return *c;
}
obs::Counter& DeniedCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("griddb.tenant.denied");
  return *c;
}
obs::Counter& GrantDdlCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("griddb.tenant.grant_ddl");
  return *c;
}
obs::Counter& SnapshotSwapsCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "griddb.tenant.snapshot_swaps");
  return *c;
}
}  // namespace

Status RbacCatalog::RequireGranteeLocked(const std::string& grantee) const {
  if (users_.count(grantee) || roles_.count(grantee)) return Status::Ok();
  return NotFound("no user or role named '" + grantee + "'");
}

bool RbacCatalog::ReachesLocked(const std::string& from,
                                const std::string& target) const {
  if (from == target) return true;
  std::vector<const std::string*> frontier{&from};
  std::set<std::string> seen{from};
  while (!frontier.empty()) {
    const std::string* name = frontier.back();
    frontier.pop_back();
    auto it = member_of_.find(*name);
    if (it == member_of_.end()) continue;
    for (const std::string& parent : it->second) {
      if (parent == target) return true;
      if (seen.insert(parent).second) frontier.push_back(&parent);
    }
  }
  return false;
}

void RbacCatalog::PublishLocked() {
  auto snap = std::make_shared<Snapshot>();
  snap->generation = ++generation_;
  for (const std::string& user : users_) {
    Effective eff;
    // Transitive closure over role membership; grants attach to any
    // grantee on the way up.
    std::vector<const std::string*> frontier{&user};
    std::set<std::string> seen{user};
    while (!frontier.empty()) {
      const std::string* name = frontier.back();
      frontier.pop_back();
      if (auto it = table_grants_.find(*name); it != table_grants_.end()) {
        for (const std::string& table : it->second) {
          if (table == kAllTables) {
            eff.all_tables = true;
          } else {
            eff.tables.insert(table);
          }
        }
      }
      if (auto it = mart_grants_.find(*name); it != mart_grants_.end()) {
        eff.marts.insert(it->second.begin(), it->second.end());
      }
      if (auto it = member_of_.find(*name); it != member_of_.end()) {
        for (const std::string& parent : it->second) {
          if (seen.insert(parent).second) frontier.push_back(&parent);
        }
      }
    }
    snap->users.emplace(user, std::move(eff));
  }
  {
    std::unique_lock lock(snap_mu_);
    snap_ = std::move(snap);
  }
  GrantDdlCounter().Add(1);
  SnapshotSwapsCounter().Add(1);
}

Status RbacCatalog::CreateUser(const std::string& user) {
  std::lock_guard<std::mutex> lock(ddl_mu_);
  if (user.empty()) return InvalidArgument("user name must not be empty");
  if (users_.count(user) || roles_.count(user)) {
    return AlreadyExists("grantee '" + user + "' already exists");
  }
  users_.insert(user);
  PublishLocked();
  return Status::Ok();
}

Status RbacCatalog::CreateRole(const std::string& role) {
  std::lock_guard<std::mutex> lock(ddl_mu_);
  if (role.empty()) return InvalidArgument("role name must not be empty");
  if (users_.count(role) || roles_.count(role)) {
    return AlreadyExists("grantee '" + role + "' already exists");
  }
  roles_.insert(role);
  PublishLocked();
  return Status::Ok();
}

Status RbacCatalog::DropUser(const std::string& user) {
  std::lock_guard<std::mutex> lock(ddl_mu_);
  if (!users_.erase(user)) return NotFound("no user named '" + user + "'");
  member_of_.erase(user);
  table_grants_.erase(user);
  mart_grants_.erase(user);
  PublishLocked();
  return Status::Ok();
}

Status RbacCatalog::DropRole(const std::string& role) {
  std::lock_guard<std::mutex> lock(ddl_mu_);
  if (!roles_.erase(role)) return NotFound("no role named '" + role + "'");
  member_of_.erase(role);
  table_grants_.erase(role);
  mart_grants_.erase(role);
  for (auto& [grantee, parents] : member_of_) parents.erase(role);
  PublishLocked();
  return Status::Ok();
}

Status RbacCatalog::AssignRole(const std::string& grantee,
                               const std::string& role) {
  std::lock_guard<std::mutex> lock(ddl_mu_);
  GRIDDB_RETURN_IF_ERROR(RequireGranteeLocked(grantee));
  if (!roles_.count(role)) return NotFound("no role named '" + role + "'");
  // Membership must stay a DAG: privileges are a transitive union, so a
  // cycle would make every member of it hold every grant of the others.
  if (ReachesLocked(role, grantee)) {
    return InvalidArgument("assigning role '" + role + "' to '" + grantee +
                           "' would create a membership cycle");
  }
  member_of_[grantee].insert(role);
  PublishLocked();
  return Status::Ok();
}

Status RbacCatalog::RevokeRole(const std::string& grantee,
                               const std::string& role) {
  std::lock_guard<std::mutex> lock(ddl_mu_);
  auto it = member_of_.find(grantee);
  if (it == member_of_.end() || !it->second.erase(role)) {
    return NotFound("'" + grantee + "' is not a member of role '" + role +
                    "'");
  }
  PublishLocked();
  return Status::Ok();
}

Status RbacCatalog::GrantTable(const std::string& grantee,
                               const std::string& logical_table) {
  std::lock_guard<std::mutex> lock(ddl_mu_);
  GRIDDB_RETURN_IF_ERROR(RequireGranteeLocked(grantee));
  if (logical_table.empty()) {
    return InvalidArgument("table name must not be empty");
  }
  table_grants_[grantee].insert(logical_table == kAllTables
                                    ? std::string(kAllTables)
                                    : ToLower(logical_table));
  PublishLocked();
  return Status::Ok();
}

Status RbacCatalog::RevokeTable(const std::string& grantee,
                                const std::string& logical_table) {
  std::lock_guard<std::mutex> lock(ddl_mu_);
  auto it = table_grants_.find(grantee);
  std::string key = logical_table == kAllTables ? std::string(kAllTables)
                                                : ToLower(logical_table);
  if (it == table_grants_.end() || !it->second.erase(key)) {
    return NotFound("'" + grantee + "' holds no grant on table '" +
                    logical_table + "'");
  }
  PublishLocked();
  return Status::Ok();
}

Status RbacCatalog::GrantMart(const std::string& grantee,
                              const std::string& database_name) {
  std::lock_guard<std::mutex> lock(ddl_mu_);
  GRIDDB_RETURN_IF_ERROR(RequireGranteeLocked(grantee));
  if (database_name.empty()) {
    return InvalidArgument("mart name must not be empty");
  }
  mart_grants_[grantee].insert(database_name);
  PublishLocked();
  return Status::Ok();
}

Status RbacCatalog::RevokeMart(const std::string& grantee,
                               const std::string& database_name) {
  std::lock_guard<std::mutex> lock(ddl_mu_);
  auto it = mart_grants_.find(grantee);
  if (it == mart_grants_.end() || !it->second.erase(database_name)) {
    return NotFound("'" + grantee + "' holds no grant on mart '" +
                    database_name + "'");
  }
  PublishLocked();
  return Status::Ok();
}

Status RbacCatalog::CheckSelect(const std::string& tenant,
                                const std::vector<std::string>& tables,
                                const MartsOf& marts_of) const {
  ChecksCounter().Add(1);
  std::shared_ptr<const Snapshot> snap;
  {
    std::shared_lock lock(snap_mu_);
    snap = snap_;
  }
  const std::string& who = tenant.empty() ? kAnonymousTenant : tenant;
  auto deny = [&](std::string message) {
    DeniedCounter().Add(1);
    return PermissionDenied(std::move(message));
  };
  if (!snap) return deny("tenant '" + who + "' is not a known user");
  auto it = snap->users.find(who);
  if (it == snap->users.end()) {
    return deny("tenant '" + who + "' is not a known user");
  }
  const Effective& eff = it->second;
  for (const std::string& table : tables) {
    if (eff.all_tables || eff.tables.count(table)) continue;
    bool covered = false;
    if (!eff.marts.empty() && marts_of) {
      for (const std::string& mart : marts_of(table)) {
        if (eff.marts.count(mart)) {
          covered = true;
          break;
        }
      }
    }
    if (!covered) {
      return deny("tenant '" + who + "' lacks SELECT on table '" + table +
                  "'");
    }
  }
  return Status::Ok();
}

bool RbacCatalog::KnownTenant(const std::string& tenant) const {
  std::shared_ptr<const Snapshot> snap;
  {
    std::shared_lock lock(snap_mu_);
    snap = snap_;
  }
  const std::string& who = tenant.empty() ? kAnonymousTenant : tenant;
  return snap && snap->users.count(who) > 0;
}

uint64_t RbacCatalog::generation() const {
  std::shared_lock lock(snap_mu_);
  return snap_ ? snap_->generation : 0;
}

}  // namespace griddb::core
