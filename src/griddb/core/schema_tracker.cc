#include "griddb/core/schema_tracker.h"

#include "griddb/util/md5.h"

namespace griddb::core {

SchemaTracker::SchemaTracker(DataAccessService* service,
                             XSpecRepository* repository)
    : service_(service), repository_(repository) {}

SchemaTracker::~SchemaTracker() { Stop(); }

Result<bool> SchemaTracker::CheckOnce(const std::string& database_name) {
  checks_run_.fetch_add(1);
  GRIDDB_ASSIGN_OR_RETURN(unity::LowerXSpec lower,
                          service_->GenerateXSpecFor(database_name));
  std::string xml = lower.ToXml();

  // Size first, md5 only on size match — the paper's exact comparison
  // order (cheap check first).
  Snapshot fresh;
  fresh.size = xml.size();
  bool changed;
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto it = snapshots_.find(database_name);
    if (it == snapshots_.end()) {
      fresh.md5 = Md5Hex(xml);
      snapshots_[database_name] = fresh;
      return false;  // first observation establishes the baseline
    }
    if (it->second.size != fresh.size) {
      changed = true;
      fresh.md5 = Md5Hex(xml);
    } else {
      fresh.md5 = Md5Hex(xml);
      changed = fresh.md5 != it->second.md5;
    }
    if (changed) it->second = fresh;
  }
  if (!changed) return false;

  GRIDDB_ASSIGN_OR_RETURN(unity::UpperXSpecEntry upper,
                          service_->UpperEntryFor(database_name));
  GRIDDB_RETURN_IF_ERROR(service_->ReloadDatabase(upper, lower));
  changes_applied_.fetch_add(1);
  if (repository_ != nullptr) {
    const std::string url = upper.lower_spec.empty()
                                ? "xspec://" + database_name
                                : upper.lower_spec;
    repository_->Put(url, xml);
  }
  return true;
}

size_t SchemaTracker::RunOnceAll() {
  size_t changed = 0;
  for (const std::string& name : service_->RegisteredDatabases()) {
    auto result = CheckOnce(name);
    if (result.ok() && *result) ++changed;
  }
  return changed;
}

void SchemaTracker::Start(std::chrono::milliseconds interval) {
  Stop();
  {
    std::lock_guard<std::mutex> lock(thread_mu_);
    stop_requested_ = false;
  }
  running_.store(true);
  thread_ = std::thread([this, interval] { Loop(interval); });
}

void SchemaTracker::Stop() {
  {
    std::lock_guard<std::mutex> lock(thread_mu_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  running_.store(false);
}

void SchemaTracker::Loop(std::chrono::milliseconds interval) {
  std::unique_lock<std::mutex> lock(thread_mu_);
  while (!stop_requested_) {
    if (cv_.wait_for(lock, interval, [this] { return stop_requested_; })) {
      break;
    }
    lock.unlock();
    RunOnceAll();
    lock.lock();
  }
}

}  // namespace griddb::core
