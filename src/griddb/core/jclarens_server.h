// JClarens server: the Clarens-style web-service host for the data access
// service (paper §4, figure 1 upper half).
//
// Exposes the data access layer's methods over XML-RPC:
//   dataaccess.query(sql)                  -> {result, stats}
//   dataaccess.listTables()                -> [logical names]
//   dataaccess.describeTable(name)         -> {columns: [{name, type}]}
//   dataaccess.registerDatabase(conn, drv) -> true     (live registration)
//   dataaccess.pluginDatabase(xspecUrl, driver, conn) -> true   (§4.10)
//   system.login(user, pass)               -> session token
#pragma once

#include <memory>

#include "griddb/core/data_access_service.h"
#include "griddb/core/xspec_repository.h"
#include "griddb/rpc/server.h"

namespace griddb::core {

class JClarensServer {
 public:
  /// Binds at config.server_url. `xspec_repo` (optional) resolves XSpec
  /// URLs for the plug-in method.
  JClarensServer(DataAccessConfig config, ral::DatabaseCatalog* catalog,
                 rpc::Transport* transport,
                 XSpecRepository* xspec_repo = nullptr);

  DataAccessService& service() { return service_; }
  rpc::RpcServer& rpc() { return server_; }
  const std::string& url() const { return server_.url(); }
  const std::string& host() const { return server_.host(); }

 private:
  void RegisterMethods();

  DataAccessService service_;
  XSpecRepository* xspec_repo_;
  rpc::RpcServer server_;
};

}  // namespace griddb::core
