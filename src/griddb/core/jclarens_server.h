// JClarens server: the Clarens-style web-service host for the data access
// service (paper §4, figure 1 upper half).
//
// Exposes the data access layer's methods over XML-RPC:
//   dataaccess.query(sql)                  -> {result, stats}
//   dataaccess.listTables()                -> [logical names]
//   dataaccess.describeTable(name)         -> {columns: [{name, type}]}
//   dataaccess.registerDatabase(conn, drv) -> true     (live registration)
//   dataaccess.pluginDatabase(xspecUrl, driver, conn) -> true   (§4.10)
//   system.login(user, pass)               -> session token
//
// With a BatchConfig (journal_dir set) the server also hosts the
// crash-safe asynchronous batch-query service (core/batch):
//   dataaccess.batchSubmit(sql)        -> job id (durable on return)
//   dataaccess.batchPoll(id)           -> job status struct
//   dataaccess.batchCancel(id)         -> true
//   dataaccess.batchFetch(id, page)    -> {result} page of a done job
// The manager replays its journal (crash recovery) before the first
// worker starts, so jobs interrupted by a restart resume automatically.
#pragma once

#include <memory>

#include "griddb/core/batch/batch_service.h"
#include "griddb/core/data_access_service.h"
#include "griddb/core/xspec_repository.h"
#include "griddb/rpc/server.h"

namespace griddb::core {

class JClarensServer {
 public:
  /// Binds at config.server_url. `xspec_repo` (optional) resolves XSpec
  /// URLs for the plug-in method. `batch` (optional: enabled when its
  /// journal_dir is set) hosts the asynchronous batch-query service;
  /// recovery replays the journal before workers start.
  JClarensServer(DataAccessConfig config, ral::DatabaseCatalog* catalog,
                 rpc::Transport* transport,
                 XSpecRepository* xspec_repo = nullptr,
                 BatchConfig batch = {});
  ~JClarensServer();

  DataAccessService& service() { return service_; }
  rpc::RpcServer& rpc() { return server_; }
  const std::string& url() const { return server_.url(); }
  const std::string& host() const { return server_.host(); }
  /// The batch job manager; nullptr when batch is not configured.
  BatchJobManager* batch() { return batch_.get(); }

 private:
  void RegisterMethods();

  DataAccessService service_;
  XSpecRepository* xspec_repo_;
  rpc::RpcServer server_;
  std::unique_ptr<BatchJobManager> batch_;
};

}  // namespace griddb::core
