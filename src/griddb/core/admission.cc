#include "griddb/core/admission.h"

#include <algorithm>
#include <chrono>
#include <string>

#include "griddb/obs/metrics.h"

namespace griddb::core {

namespace {
obs::Counter& AdmittedCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("griddb.admission.admitted");
  return *c;
}
obs::Counter& QueuedCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("griddb.admission.queued");
  return *c;
}
obs::Counter& ShedCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("griddb.admission.shed");
  return *c;
}
obs::Counter& ShedScanCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("griddb.admission.shed_scan");
  return *c;
}
obs::Counter& MergeMemoryShedCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "griddb.admission.merge_memory_shed");
  return *c;
}
obs::Gauge& InFlightGauge() {
  static obs::Gauge* g =
      obs::MetricsRegistry::Default().GetGauge("griddb.admission.in_flight");
  return *g;
}
obs::Gauge& QueueDepthGauge() {
  static obs::Gauge* g =
      obs::MetricsRegistry::Default().GetGauge("griddb.admission.queue_depth");
  return *g;
}
obs::Gauge& MergeMemoryGauge() {
  static obs::Gauge* g = obs::MetricsRegistry::Default().GetGauge(
      "griddb.admission.merge_memory_bytes");
  return *g;
}
// Tenant-lane aggregates. The registry is name-keyed, so per-tenant
// breakdowns are exposed through lane_stats() / dataaccess.tenantStats
// rather than one metric per tenant name.
obs::Counter& TenantAdmittedCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "griddb.admission.tenant_admitted");
  return *c;
}
obs::Counter& TenantQueuedCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "griddb.admission.tenant_queued");
  return *c;
}
obs::Counter& TenantShedCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "griddb.admission.tenant_shed");
  return *c;
}
obs::Gauge& LanesGauge() {
  static obs::Gauge* g =
      obs::MetricsRegistry::Default().GetGauge("griddb.admission.lanes");
  return *g;
}
obs::Counter& BatchAdmittedCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "griddb.admission.batch_admitted");
  return *c;
}
obs::Counter& BatchShedCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "griddb.admission.batch_shed");
  return *c;
}
obs::Gauge& BatchInFlightGauge() {
  static obs::Gauge* g = obs::MetricsRegistry::Default().GetGauge(
      "griddb.admission.batch_in_flight");
  return *g;
}

// A zero or negative weight would starve the lane in the DRR rotation
// (its deficit never reaches one slot); clamp to a small positive share.
constexpr double kMinWeight = 1.0 / 64.0;
}  // namespace

AdmissionController::AdmissionController(const AdmissionConfig& config)
    : config_(config) {
  if (config_.per_tenant()) {
    // Materialize configured lanes up front so lane_stats() shows every
    // quota from the start; lanes for unlisted tenants appear on demand.
    for (const TenantQuota& quota : config_.tenant_quotas) {
      (void)LaneLocked(quota.tenant);
    }
  }
}

AdmissionController::~AdmissionController() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  slot_cv_.notify_all();
}

void AdmissionController::Ticket::Release() {
  if (controller_ == nullptr) return;
  controller_->ReleaseSlot(tenant_, batch_);
  controller_ = nullptr;
}

void AdmissionController::MemoryLease::Release() {
  if (controller_ == nullptr) return;
  controller_->ReleaseMemory(bytes_, tenant_);
  controller_ = nullptr;
  bytes_ = 0;
}

Status AdmissionController::Shed(QueryPriority priority,
                                 const char* why) const {
  ShedCounter().Add(1);
  if (priority == QueryPriority::kScan) ShedScanCounter().Add(1);
  // The hint is machine-parsed by rpc::RetryAfterHintMs on the client.
  return ResourceExhausted(
      std::string("server overloaded (") + why + ", " +
      QueryPriorityName(priority) + " query shed); retry_after_ms=" +
      std::to_string(static_cast<long long>(config_.retry_after_ms)));
}

Status AdmissionController::ShedLane(Lane& lane, QueryPriority priority,
                                     const char* why) {
  ++lane.shed;
  ShedCounter().Add(1);
  TenantShedCounter().Add(1);
  if (priority == QueryPriority::kScan) ShedScanCounter().Add(1);
  const double retry_after = lane.quota.retry_after_ms > 0
                                 ? lane.quota.retry_after_ms
                                 : config_.retry_after_ms;
  const std::string& name =
      lane.quota.tenant.empty() ? "anonymous" : lane.quota.tenant;
  return ResourceExhausted(
      std::string("server overloaded (") + why + ", tenant '" + name + "', " +
      QueryPriorityName(priority) + " query shed); retry_after_ms=" +
      std::to_string(static_cast<long long>(retry_after)));
}

AdmissionController::Lane& AdmissionController::LaneLocked(
    const std::string& tenant) {
  auto it = lanes_.find(tenant);
  if (it != lanes_.end()) return it->second;
  Lane lane;
  lane.quota.tenant = tenant;
  bool has_quota = false;
  for (const TenantQuota& quota : config_.tenant_quotas) {
    if (quota.tenant == tenant) {
      lane.quota = quota;
      has_quota = true;
      break;
    }
  }
  // Tenants the gate does not recognize share the default lane: lanes are
  // permanent, so unknown (possibly attacker-minted) tenant strings must
  // not each grow lanes_ and the DRR rotation. Callers key the released
  // ticket by the resolved lane (quota.tenant), not the requested name.
  if (!has_quota && !tenant.empty() && config_.known_tenant &&
      !config_.known_tenant(tenant)) {
    return LaneLocked(std::string());
  }
  lane.quota.weight = std::max(lane.quota.weight, kMinWeight);
  it = lanes_.emplace(tenant, std::move(lane)).first;
  rr_order_.push_back(tenant);
  LanesGauge().Set(static_cast<double>(lanes_.size()));
  return it->second;
}

bool AdmissionController::CanGrantLocked(const Lane& lane,
                                         QueryPriority priority) const {
  // Scans may not eat into the interactive reserve (global rule, shared
  // with the single-lane mode).
  const size_t reserve =
      std::min(config_.interactive_reserve, config_.max_concurrent);
  const size_t slot_limit = priority == QueryPriority::kScan
                                ? config_.max_concurrent - reserve
                                : config_.max_concurrent;
  if (in_flight_ >= slot_limit) return false;
  // Below its own reservation a lane always takes a free slot.
  if (lane.in_flight < lane.quota.min_reserved) return true;
  // Otherwise keep enough free slots to cover other lanes' unmet
  // reservations — but only where there is queued demand: an idle lane
  // donates its reservation (work conservation), it is paid back with
  // next-slot priority once it has waiters again.
  size_t needed = 0;
  for (const auto& [name, other] : lanes_) {
    (void)name;
    if (&other == &lane || other.queue.empty()) continue;
    if (other.quota.min_reserved > other.in_flight) {
      needed += other.quota.min_reserved - other.in_flight;
    }
  }
  return config_.max_concurrent - in_flight_ - 1 >= needed;
}

void AdmissionController::GrantLocked(Lane& lane) {
  lane.queue.front()->granted = true;
  lane.queue.pop_front();
  ++lane.in_flight;
  ++lane.admitted;
  ++in_flight_;
  lane.deficit -= 1.0;
  AdmittedCounter().Add(1);
  TenantAdmittedCounter().Add(1);
  InFlightGauge().Set(static_cast<double>(in_flight_));
}

void AdmissionController::DispatchLocked() {
  if (rr_order_.empty()) return;
  bool granted_any = false;
  for (;;) {
    // One full rotation without progress means nothing else can be placed
    // (no waiters, no slots, or every head blocked by priority/reservation
    // — or, handled below, by credit alone).
    size_t stalled = 0;
    bool slots_full = false;
    while (stalled < rr_order_.size()) {
      Lane& lane = lanes_.at(rr_order_[rr_cursor_]);
      if (lane.queue.empty()) {
        // Standard DRR: an emptied lane forfeits its credit, so an idle
        // tenant cannot bank a burst against the others.
        lane.deficit = 0;
        rr_fresh_ = true;
        rr_cursor_ = (rr_cursor_ + 1) % rr_order_.size();
        ++stalled;
        continue;
      }
      if (rr_fresh_) {
        // One quantum (= weight) of credit on entering the lane; the cap
        // bounds the burst a blocked lane can bank while still letting
        // weight > 1 lanes carry their full share across rotations.
        lane.deficit =
            std::min(lane.deficit + lane.quota.weight, lane.quota.weight + 1.0);
        rr_fresh_ = false;
      }
      bool progressed = false;
      while (!lane.queue.empty() && lane.deficit >= 1.0 &&
             CanGrantLocked(lane, lane.queue.front()->priority)) {
        GrantLocked(lane);
        progressed = true;
        granted_any = true;
      }
      if (progressed) stalled = 0;
      if (lane.queue.empty() || lane.deficit < 1.0) {
        // Demand or credit exhausted: the lane's turn is over.
        if (lane.queue.empty()) lane.deficit = 0;
        rr_fresh_ = true;
        rr_cursor_ = (rr_cursor_ + 1) % rr_order_.size();
        if (!progressed) ++stalled;
        continue;
      }
      // Credit and demand remain but the head cannot be granted.
      if (in_flight_ >= config_.max_concurrent) {
        // No slot free anywhere: stop mid-turn, keeping the cursor (and the
        // unspent credit, unrecharged) on this lane so the next freed slot
        // resumes it. Advancing and recharging on every freed slot would
        // flatten weights into plain round-robin.
        slots_full = true;
        break;
      }
      // A slot is free but this head is blocked by the interactive reserve
      // or by another lane's reservation: rotate on so grantable lanes are
      // not starved behind it; the unspent credit carries (capped) to the
      // lane's next turn.
      rr_fresh_ = true;
      rr_cursor_ = (rr_cursor_ + 1) % rr_order_.size();
      ++stalled;
    }
    if (slots_full) break;
    // Fractional-weight liveness: dispatch only runs on admission events,
    // so a rotation that stalled with a free slot while some backlogged
    // head was grantable but credit-starved (a weight < 1 lane accrues
    // less than a slot per visit) must not return and leave that waiter
    // stranded until unrelated traffic arrives. Recharge every backlogged
    // lane one quantum (weight ratios preserved, burst caps apply) and
    // rerun: each pass adds >= kMinWeight to the starved lane, so it
    // reaches a full slot of credit in a bounded number of passes.
    bool credit_starved = false;
    for (const auto& [name, lane] : lanes_) {
      (void)name;
      if (lane.queue.empty() || lane.deficit >= 1.0) continue;
      if (CanGrantLocked(lane, lane.queue.front()->priority)) {
        credit_starved = true;
        break;
      }
    }
    if (!credit_starved) break;
    for (auto& [name, lane] : lanes_) {
      (void)name;
      if (lane.queue.empty()) continue;
      lane.deficit = std::min(lane.deficit + lane.quota.weight,
                              lane.quota.weight + 1.0);
    }
    // The cursor lane was recharged with the rest; entering it again on
    // the rerun must not charge a second quantum.
    rr_fresh_ = false;
  }
  if (granted_any) slot_cv_.notify_all();
}

Result<AdmissionController::Ticket> AdmissionController::AdmitBatchLocked(
    const std::string& tenant) {
  // Batch work runs strictly out of idle capacity: it is shed (never
  // queued) unless the slot comes for free — no waiter of any priority is
  // queued, the interactive reserve stays whole, and the batch cap holds.
  const size_t reserve =
      std::min(config_.interactive_reserve, config_.max_concurrent);
  const size_t slot_limit = config_.max_concurrent - reserve;
  const size_t batch_limit =
      config_.batch_slots > 0 ? std::min(config_.batch_slots, slot_limit)
                              : std::max<size_t>(slot_limit / 2, 1);
  const char* why = nullptr;
  if (slot_limit == 0) {
    why = "no slots outside the interactive reserve";
  } else if (queued_ > 0) {
    why = "foreground demand queued";
  } else if (batch_in_flight_ >= batch_limit) {
    why = "batch slots exhausted";
  } else if (in_flight_ >= slot_limit) {
    why = "no idle capacity";
  }
  if (why != nullptr) {
    BatchShedCounter().Add(1);
    if (config_.per_tenant()) {
      return ShedLane(LaneLocked(tenant), QueryPriority::kBatch, why);
    }
    return Shed(QueryPriority::kBatch, why);
  }
  ++in_flight_;
  ++batch_in_flight_;
  AdmittedCounter().Add(1);
  BatchAdmittedCounter().Add(1);
  InFlightGauge().Set(static_cast<double>(in_flight_));
  BatchInFlightGauge().Set(static_cast<double>(batch_in_flight_));
  std::string lane_key = tenant;
  if (config_.per_tenant()) {
    // Charge the tenant's lane so tenantStats sees batch load, but leave
    // the DRR state alone: batch work never holds a queue position, so it
    // neither earns nor spends deficit credit.
    Lane& lane = LaneLocked(tenant);
    ++lane.in_flight;
    ++lane.admitted;
    TenantAdmittedCounter().Add(1);
    lane_key = lane.quota.tenant;
  }
  return Ticket(this, lane_key, /*batch=*/true);
}

Result<AdmissionController::Ticket> AdmissionController::Admit(
    QueryPriority priority, const CancelToken* cancel,
    const std::string& tenant) {
  if (!config_.enabled()) return Ticket(nullptr);

  if (priority == QueryPriority::kBatch) {
    std::lock_guard<std::mutex> batch_lock(mu_);
    return AdmitBatchLocked(tenant);
  }

  // Scans may not eat into the interactive reserve.
  const size_t reserve =
      std::min(config_.interactive_reserve, config_.max_concurrent);
  const size_t slot_limit = priority == QueryPriority::kScan
                                ? config_.max_concurrent - reserve
                                : config_.max_concurrent;

  std::unique_lock<std::mutex> lock(mu_);

  if (config_.per_tenant()) {
    Lane& lane = LaneLocked(tenant);
    // Unknown tenants resolve to the default lane; the ticket must carry
    // the lane actually charged so the release balances it.
    const std::string& lane_key = lane.quota.tenant;
    if (slot_limit == 0) {
      return ShedLane(lane, priority, "no slots for this priority");
    }
    // Immediate grant only past an empty lane queue (FIFO within the
    // lane); a genuinely free slot at arrival time was not claimable by
    // any queued waiter, so taking it cannot starve another lane.
    if (lane.queue.empty() && CanGrantLocked(lane, priority)) {
      ++lane.in_flight;
      ++lane.admitted;
      ++in_flight_;
      AdmittedCounter().Add(1);
      TenantAdmittedCounter().Add(1);
      InFlightGauge().Set(static_cast<double>(in_flight_));
      return Ticket(this, lane_key);
    }
    if (lane.queue.size() >= config_.max_queued) {
      return ShedLane(lane, priority,
                      in_flight_ >= config_.max_concurrent
                          ? "all execution slots busy, tenant queue full"
                          : "tenant slots exhausted, tenant queue full");
    }
    auto waiter = std::make_shared<Waiter>();
    waiter->priority = priority;
    lane.queue.push_back(waiter);
    ++queued_;
    QueuedCounter().Add(1);
    TenantQueuedCounter().Add(1);
    QueueDepthGauge().Set(static_cast<double>(queued_));
    // A slot may be placeable right now (e.g. this lane is below its
    // reservation while another lane's head is blocked).
    DispatchLocked();
    Status live = Status::Ok();
    if (cancel == nullptr) {
      // No cancellation to observe: sleep until granted (or shutdown)
      // instead of burning a 5 ms poll per queued waiter under overload.
      // Every grant/shutdown path notifies the CV.
      slot_cv_.wait(lock, [&] { return waiter->granted || shutting_down_; });
    } else {
      // The timed poll is what notices a cancellation (deadline expiry
      // advanced by another thread on the virtual clock).
      while (!waiter->granted && !shutting_down_) {
        live = cancel->Check();
        if (!live.ok()) break;
        slot_cv_.wait_for(lock, std::chrono::milliseconds(5));
      }
    }
    --queued_;
    QueueDepthGauge().Set(static_cast<double>(queued_));
    if (waiter->granted) {
      // Granted concurrently with a cancellation or shutdown observation:
      // hand the slot straight to the next waiter instead of keeping it.
      if (!live.ok() || shutting_down_) {
        if (lane.in_flight > 0) --lane.in_flight;
        if (in_flight_ > 0) --in_flight_;
        InFlightGauge().Set(static_cast<double>(in_flight_));
        // Return the DRR credit GrantLocked charged for a grant the lane
        // never used — immediately, not on a later dispatch pass, so the
        // redispatch below already sees the restored credit and the
        // lane's next waiter is not taxed for the cancellation. Capped at
        // the same burst bound the recharge path uses.
        lane.deficit =
            std::min(lane.deficit + 1.0, lane.quota.weight + 1.0);
        DispatchLocked();
        return !live.ok()
                   ? Result<Ticket>(live)
                   : Result<Ticket>(
                         ShedLane(lane, priority, "server shutting down"));
      }
      return Ticket(this, lane_key);
    }
    // Never granted: leave the queue, and unblock whatever our queue
    // position was holding back.
    lane.queue.erase(
        std::remove(lane.queue.begin(), lane.queue.end(), waiter),
        lane.queue.end());
    DispatchLocked();
    if (!live.ok()) return live;
    return ShedLane(lane, priority, "server shutting down");
  }

  // Single shared lane (the PR 5 behaviour).
  if (slot_limit == 0) return Shed(priority, "no slots for this priority");
  if (in_flight_ < slot_limit) {
    ++in_flight_;
    AdmittedCounter().Add(1);
    InFlightGauge().Set(static_cast<double>(in_flight_));
    return Ticket(this);
  }
  if (queued_ >= config_.max_queued) {
    return Shed(priority, in_flight_ >= config_.max_concurrent
                              ? "all execution slots busy, queue full"
                              : "scan slots exhausted");
  }

  // Bounded-queue backpressure: wait for a slot. A cancellable wait polls
  // in short real-time slices so a cancellation (deadline expiry observed
  // by another thread advancing the virtual clock) aborts the wait
  // promptly; without a token the wait just sleeps until notified.
  ++queued_;
  QueuedCounter().Add(1);
  QueueDepthGauge().Set(static_cast<double>(queued_));
  auto done_waiting = [&] {
    return shutting_down_ || in_flight_ < slot_limit;
  };
  Status live = Status::Ok();
  if (cancel == nullptr) {
    slot_cv_.wait(lock, done_waiting);
  } else {
    while (!done_waiting()) {
      live = cancel->Check();
      if (!live.ok()) break;
      slot_cv_.wait_for(lock, std::chrono::milliseconds(5));
    }
  }
  --queued_;
  QueueDepthGauge().Set(static_cast<double>(queued_));
  if (!live.ok()) return live;
  if (shutting_down_) return Shed(priority, "server shutting down");
  ++in_flight_;
  AdmittedCounter().Add(1);
  InFlightGauge().Set(static_cast<double>(in_flight_));
  return Ticket(this);
}

void AdmissionController::ReleaseSlot(const std::string& tenant, bool batch) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (config_.per_tenant()) {
      auto it = lanes_.find(tenant);
      if (it != lanes_.end() && it->second.in_flight > 0) {
        --it->second.in_flight;
      }
    }
    if (in_flight_ > 0) --in_flight_;
    if (batch && batch_in_flight_ > 0) {
      --batch_in_flight_;
      BatchInFlightGauge().Set(static_cast<double>(batch_in_flight_));
    }
    InFlightGauge().Set(static_cast<double>(in_flight_));
    if (config_.per_tenant()) DispatchLocked();
  }
  // notify_all, not notify_one: waiters now block on a plain predicate
  // wait when uncancellable, and in single-lane mode a scan waiter woken
  // alone can be unable to take the freed slot (interactive reserve)
  // while the interactive waiter that could would sleep through it.
  slot_cv_.notify_all();
}

Result<AdmissionController::MemoryLease> AdmissionController::ReserveMergeMemory(
    size_t bytes, const std::string& tenant) {
  if (!config_.enabled() || bytes == 0) return MemoryLease(nullptr, 0);
  std::lock_guard<std::mutex> lock(mu_);
  Lane* lane = config_.per_tenant() ? &LaneLocked(tenant) : nullptr;
  const size_t lane_budget =
      lane != nullptr ? lane->quota.merge_memory_budget_bytes : 0;
  if (config_.merge_memory_budget_bytes == 0 && lane_budget == 0) {
    return MemoryLease(nullptr, 0);
  }
  // A lone oversized merge is still served: the budgets bound concurrent
  // pressure, not the biggest query an operator (or tenant) may run.
  const bool global_over =
      config_.merge_memory_budget_bytes > 0 && memory_holders_ > 0 &&
      merge_memory_bytes_ + bytes > config_.merge_memory_budget_bytes;
  const bool lane_over = lane_budget > 0 && lane->merge_holders > 0 &&
                         lane->merge_bytes + bytes > lane_budget;
  if (global_over || lane_over) {
    MergeMemoryShedCounter().Add(1);
    ShedCounter().Add(1);
    if (lane_over) {
      ++lane->shed;
      TenantShedCounter().Add(1);
      const double retry_after = lane->quota.retry_after_ms > 0
                                     ? lane->quota.retry_after_ms
                                     : config_.retry_after_ms;
      const std::string& name =
          lane->quota.tenant.empty() ? "anonymous" : lane->quota.tenant;
      return ResourceExhausted(
          "merge memory budget exhausted for tenant '" + name + "' (" +
          std::to_string(lane->merge_bytes) + " of " +
          std::to_string(lane_budget) + " bytes held); retry_after_ms=" +
          std::to_string(static_cast<long long>(retry_after)));
    }
    return ResourceExhausted(
        "merge memory budget exhausted (" +
        std::to_string(merge_memory_bytes_) + " of " +
        std::to_string(config_.merge_memory_budget_bytes) +
        " bytes held); retry_after_ms=" +
        std::to_string(static_cast<long long>(config_.retry_after_ms)));
  }
  merge_memory_bytes_ += bytes;
  ++memory_holders_;
  if (lane != nullptr) {
    lane->merge_bytes += bytes;
    ++lane->merge_holders;
  }
  MergeMemoryGauge().Set(static_cast<double>(merge_memory_bytes_));
  // Key the lease by the resolved lane (unknown tenants share the default
  // lane) so the release balances the lane actually charged.
  return MemoryLease(this, bytes, lane != nullptr ? lane->quota.tenant : tenant);
}

void AdmissionController::ReleaseMemory(size_t bytes,
                                        const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  merge_memory_bytes_ -= std::min(merge_memory_bytes_, bytes);
  if (memory_holders_ > 0) --memory_holders_;
  if (config_.per_tenant()) {
    auto it = lanes_.find(tenant);
    if (it != lanes_.end()) {
      it->second.merge_bytes -= std::min(it->second.merge_bytes, bytes);
      if (it->second.merge_holders > 0) --it->second.merge_holders;
    }
  }
  MergeMemoryGauge().Set(static_cast<double>(merge_memory_bytes_));
}

size_t AdmissionController::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_;
}

size_t AdmissionController::batch_in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return batch_in_flight_;
}

size_t AdmissionController::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_;
}

size_t AdmissionController::merge_memory_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return merge_memory_bytes_;
}

std::vector<AdmissionController::LaneStats> AdmissionController::lane_stats()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<LaneStats> out;
  out.reserve(lanes_.size());
  for (const auto& [tenant, lane] : lanes_) {
    LaneStats stats;
    stats.tenant = tenant;
    stats.weight = lane.quota.weight;
    stats.min_reserved = lane.quota.min_reserved;
    stats.in_flight = lane.in_flight;
    stats.queued = lane.queue.size();
    stats.admitted = lane.admitted;
    stats.shed = lane.shed;
    out.push_back(std::move(stats));
  }
  return out;
}

}  // namespace griddb::core
