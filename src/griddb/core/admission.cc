#include "griddb/core/admission.h"

#include <algorithm>
#include <chrono>
#include <string>

#include "griddb/obs/metrics.h"

namespace griddb::core {

namespace {
obs::Counter& AdmittedCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("griddb.admission.admitted");
  return *c;
}
obs::Counter& QueuedCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("griddb.admission.queued");
  return *c;
}
obs::Counter& ShedCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("griddb.admission.shed");
  return *c;
}
obs::Counter& ShedScanCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("griddb.admission.shed_scan");
  return *c;
}
obs::Counter& MergeMemoryShedCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "griddb.admission.merge_memory_shed");
  return *c;
}
obs::Gauge& InFlightGauge() {
  static obs::Gauge* g =
      obs::MetricsRegistry::Default().GetGauge("griddb.admission.in_flight");
  return *g;
}
obs::Gauge& QueueDepthGauge() {
  static obs::Gauge* g =
      obs::MetricsRegistry::Default().GetGauge("griddb.admission.queue_depth");
  return *g;
}
obs::Gauge& MergeMemoryGauge() {
  static obs::Gauge* g = obs::MetricsRegistry::Default().GetGauge(
      "griddb.admission.merge_memory_bytes");
  return *g;
}
}  // namespace

AdmissionController::AdmissionController(const AdmissionConfig& config)
    : config_(config) {}

AdmissionController::~AdmissionController() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  slot_cv_.notify_all();
}

void AdmissionController::Ticket::Release() {
  if (controller_ == nullptr) return;
  controller_->ReleaseSlot();
  controller_ = nullptr;
}

void AdmissionController::MemoryLease::Release() {
  if (controller_ == nullptr) return;
  controller_->ReleaseMemory(bytes_);
  controller_ = nullptr;
  bytes_ = 0;
}

Status AdmissionController::Shed(QueryPriority priority,
                                 const char* why) const {
  ShedCounter().Add(1);
  if (priority == QueryPriority::kScan) ShedScanCounter().Add(1);
  // The hint is machine-parsed by rpc::RetryAfterHintMs on the client.
  return ResourceExhausted(
      std::string("server overloaded (") + why + ", " +
      QueryPriorityName(priority) + " query shed); retry_after_ms=" +
      std::to_string(static_cast<long long>(config_.retry_after_ms)));
}

Result<AdmissionController::Ticket> AdmissionController::Admit(
    QueryPriority priority, const CancelToken* cancel) {
  if (!config_.enabled()) return Ticket(nullptr);

  // Scans may not eat into the interactive reserve.
  const size_t reserve =
      std::min(config_.interactive_reserve, config_.max_concurrent);
  const size_t slot_limit = priority == QueryPriority::kScan
                                ? config_.max_concurrent - reserve
                                : config_.max_concurrent;

  std::unique_lock<std::mutex> lock(mu_);
  if (slot_limit == 0) return Shed(priority, "no slots for this priority");
  if (in_flight_ < slot_limit) {
    ++in_flight_;
    AdmittedCounter().Add(1);
    InFlightGauge().Set(static_cast<double>(in_flight_));
    return Ticket(this);
  }
  if (queued_ >= config_.max_queued) {
    return Shed(priority, in_flight_ >= config_.max_concurrent
                              ? "all execution slots busy, queue full"
                              : "scan slots exhausted");
  }

  // Bounded-queue backpressure: wait for a slot. The wait polls in short
  // real-time slices so a cancellation (deadline expiry observed by
  // another thread advancing the virtual clock) aborts the wait promptly.
  ++queued_;
  QueuedCounter().Add(1);
  QueueDepthGauge().Set(static_cast<double>(queued_));
  auto done_waiting = [&] {
    return shutting_down_ || in_flight_ < slot_limit;
  };
  Status live = Status::Ok();
  while (!done_waiting()) {
    if (cancel != nullptr) {
      live = cancel->Check();
      if (!live.ok()) break;
    }
    slot_cv_.wait_for(lock, std::chrono::milliseconds(5));
  }
  --queued_;
  QueueDepthGauge().Set(static_cast<double>(queued_));
  if (!live.ok()) return live;
  if (shutting_down_) return Shed(priority, "server shutting down");
  ++in_flight_;
  AdmittedCounter().Add(1);
  InFlightGauge().Set(static_cast<double>(in_flight_));
  return Ticket(this);
}

void AdmissionController::ReleaseSlot() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (in_flight_ > 0) --in_flight_;
    InFlightGauge().Set(static_cast<double>(in_flight_));
  }
  slot_cv_.notify_one();
}

Result<AdmissionController::MemoryLease> AdmissionController::ReserveMergeMemory(
    size_t bytes) {
  if (!config_.enabled() || config_.merge_memory_budget_bytes == 0 ||
      bytes == 0) {
    return MemoryLease(nullptr, 0);
  }
  std::lock_guard<std::mutex> lock(mu_);
  // A lone oversized merge is still served: the budget bounds concurrent
  // pressure, not the biggest query an operator may run.
  if (memory_holders_ > 0 &&
      merge_memory_bytes_ + bytes > config_.merge_memory_budget_bytes) {
    MergeMemoryShedCounter().Add(1);
    ShedCounter().Add(1);
    return ResourceExhausted(
        "merge memory budget exhausted (" +
        std::to_string(merge_memory_bytes_) + " of " +
        std::to_string(config_.merge_memory_budget_bytes) +
        " bytes held); retry_after_ms=" +
        std::to_string(static_cast<long long>(config_.retry_after_ms)));
  }
  merge_memory_bytes_ += bytes;
  ++memory_holders_;
  MergeMemoryGauge().Set(static_cast<double>(merge_memory_bytes_));
  return MemoryLease(this, bytes);
}

void AdmissionController::ReleaseMemory(size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  merge_memory_bytes_ -= std::min(merge_memory_bytes_, bytes);
  if (memory_holders_ > 0) --memory_holders_;
  MergeMemoryGauge().Set(static_cast<double>(merge_memory_bytes_));
}

size_t AdmissionController::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_;
}

size_t AdmissionController::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_;
}

size_t AdmissionController::merge_memory_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return merge_memory_bytes_;
}

}  // namespace griddb::core
