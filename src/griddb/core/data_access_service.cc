#include "griddb/core/data_access_service.h"

#include <algorithm>
#include <future>
#include <set>

#include "griddb/sql/parser.h"
#include "griddb/sql/render.h"
#include "griddb/unity/planner.h"
#include "griddb/util/logging.h"
#include "griddb/util/strings.h"

namespace griddb::core {

using storage::ResultSet;
using unity::LowerXSpec;
using unity::SubQuery;
using unity::UpperXSpecEntry;

namespace {

const sql::Dialect& ClientDialect() {
  return sql::Dialect::For(sql::Vendor::kSqlite);
}

/// True when a single-database statement fits the POOL-RAL wrapper form:
/// plain column select items over FROM tables with an optional WHERE.
bool ExpressibleInRal(const sql::SelectStmt& stmt) {
  if (stmt.distinct || !stmt.group_by.empty() || stmt.having ||
      !stmt.order_by.empty() || stmt.limit || stmt.offset ||
      !stmt.joins.empty()) {
    return false;
  }
  for (const sql::SelectItem& item : stmt.items) {
    if (item.expr->kind != sql::Expr::Kind::kColumn) return false;
  }
  return true;
}

}  // namespace

DataAccessService::DataAccessService(DataAccessConfig config,
                                     ral::DatabaseCatalog* catalog,
                                     rpc::Transport* transport)
    : config_(std::move(config)),
      catalog_(catalog),
      transport_(transport),
      driver_(catalog, transport->network(), transport->costs(),
              [&] {
                unity::UnityDriverOptions options;
                options.enhanced = config_.enhanced_driver;
                options.parallel_subqueries = config_.parallel_subqueries;
                options.projection_pushdown = config_.projection_pushdown;
                options.predicate_pushdown = config_.predicate_pushdown;
                options.max_threads = config_.max_threads;
                options.client_host = config_.host;
                options.user = config_.db_user;
                options.password = config_.db_password;
                return options;
              }()),
      pool_(catalog, transport->network(), transport->costs(), config_.host),
      workers_(config_.max_threads) {
  if (!config_.rls_url.empty()) {
    rls_ = std::make_unique<rls::RlsClient>(transport, config_.host,
                                            config_.rls_url);
  }
}

// ---------- registration ----------

Status DataAccessService::RegisterDatabase(const UpperXSpecEntry& upper,
                                           const LowerXSpec& lower) {
  GRIDDB_RETURN_IF_ERROR(driver_.AddDatabase(upper, lower));
  std::vector<std::string> tables;
  for (const unity::XSpecTable& table : lower.tables) {
    tables.push_back(ToLower(table.logical_name));
  }
  if (rls_ && !config_.server_url.empty()) {
    Status published = rls_->PublishAll(tables, config_.server_url);
    if (!published.ok()) {
      GRIDDB_LOG(Warn) << "RLS publish failed for '" << upper.database_name
                       << "': " << published.ToString();
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    registered_[upper.database_name] = upper;
    published_[upper.database_name] = std::move(tables);
  }
  // Connect to the database now (§4.10: "the server establishes a
  // connection with the database"). Registered databases are therefore
  // warm: a later non-distributed query pays no connect/auth. A failure
  // here (e.g. credentials) is deferred to query time.
  auto entry = catalog_->Find(upper.url);
  if (entry.ok()) {
    if (ral::IsPoolSupported(entry->database->vendor())) {
      Status warmed = pool_.InitHandle(upper.url, config_.db_user,
                                       config_.db_password, nullptr);
      if (!warmed.ok()) {
        GRIDDB_LOG(Warn) << "POOL handle init failed for '" << upper.url
                         << "': " << warmed.ToString();
      }
    }
    Status warmed = driver_.WarmConnection(upper.url);
    if (!warmed.ok()) {
      GRIDDB_LOG(Warn) << "JDBC warm-up failed for '" << upper.url
                       << "': " << warmed.ToString();
    }
  }
  return Status::Ok();
}

Status DataAccessService::RegisterLiveDatabase(
    const std::string& connection_string, const std::string& driver_name) {
  GRIDDB_ASSIGN_OR_RETURN(ral::DatabaseCatalog::Entry entry,
                          catalog_->Find(connection_string));
  LowerXSpec lower = unity::GenerateXSpec(*entry.database);
  UpperXSpecEntry upper;
  upper.database_name = entry.database->name();
  upper.url = connection_string;
  upper.driver = driver_name.empty()
                     ? std::string(sql::VendorName(entry.database->vendor()))
                     : driver_name;
  upper.lower_spec = upper.database_name + ".xspec";
  return RegisterDatabase(upper, lower);
}

Status DataAccessService::UnregisterDatabase(const std::string& database_name) {
  GRIDDB_RETURN_IF_ERROR(driver_.RemoveDatabase(database_name));
  std::lock_guard<std::mutex> lock(mu_);
  if (rls_ && !config_.server_url.empty()) {
    auto it = published_.find(database_name);
    if (it != published_.end()) {
      for (const std::string& table : it->second) {
        // Tables may still be published by another local database; only
        // unpublish when no other local database exports them.
        if (!driver_.dictionary().HasTable(table)) {
          (void)rls_->Unpublish(table, config_.server_url);
        }
      }
    }
  }
  registered_.erase(database_name);
  published_.erase(database_name);
  return Status::Ok();
}

Status DataAccessService::ReloadDatabase(const UpperXSpecEntry& upper,
                                         const LowerXSpec& lower) {
  GRIDDB_RETURN_IF_ERROR(driver_.ReplaceDatabase(upper, lower));
  std::vector<std::string> tables;
  for (const unity::XSpecTable& table : lower.tables) {
    tables.push_back(ToLower(table.logical_name));
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (rls_ && !config_.server_url.empty()) {
    std::vector<std::string>& old_tables = published_[upper.database_name];
    for (const std::string& old_table : old_tables) {
      bool still_present =
          std::find(tables.begin(), tables.end(), old_table) != tables.end();
      if (!still_present && !driver_.dictionary().HasTable(old_table)) {
        (void)rls_->Unpublish(old_table, config_.server_url);
      }
    }
    (void)rls_->PublishAll(tables, config_.server_url);
  }
  registered_[upper.database_name] = upper;
  published_[upper.database_name] = std::move(tables);
  return Status::Ok();
}

Result<LowerXSpec> DataAccessService::GenerateXSpecFor(
    const std::string& database_name) {
  UpperXSpecEntry upper;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = registered_.find(database_name);
    if (it == registered_.end()) {
      return NotFound("database '" + database_name + "' is not registered");
    }
    upper = it->second;
  }
  GRIDDB_ASSIGN_OR_RETURN(ral::DatabaseCatalog::Entry entry,
                          catalog_->Find(upper.url));
  return unity::GenerateXSpec(*entry.database);
}

Result<UpperXSpecEntry> DataAccessService::UpperEntryFor(
    const std::string& database_name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = registered_.find(database_name);
  if (it == registered_.end()) {
    return NotFound("database '" + database_name + "' is not registered");
  }
  return it->second;
}

std::vector<std::string> DataAccessService::RegisteredDatabases() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(registered_.size());
  for (const auto& [name, upper] : registered_) {
    (void)upper;
    out.push_back(name);
  }
  return out;
}

std::vector<std::string> DataAccessService::LocalTables() const {
  return driver_.dictionary().LogicalTables();
}

Result<unity::TableBinding> DataAccessService::DescribeTable(
    const std::string& logical) const {
  std::vector<unity::TableBinding> bindings =
      driver_.dictionary().Locate(logical);
  if (bindings.empty()) {
    return NotFound("table '" + logical + "' is not registered locally");
  }
  return bindings.front();
}

// ---------- query processing ----------

Result<ResultSet> DataAccessService::ExecuteSubQueryRouted(const SubQuery& sub,
                                                           net::Cost* cost,
                                                           QueryStats* stats) {
  GRIDDB_ASSIGN_OR_RETURN(ral::DatabaseCatalog::Entry entry,
                          catalog_->Find(sub.table.connection));
  if (ral::IsPoolSupported(entry.database->vendor())) {
    GRIDDB_RETURN_IF_ERROR(pool_.InitHandle(
        sub.table.connection, config_.db_user, config_.db_password, cost));
    const sql::Dialect& dialect = entry.database->dialect();
    GRIDDB_ASSIGN_OR_RETURN(
        ResultSet rs,
        pool_.Execute(sub.table.connection, sub.FieldStrings(dialect),
                      {dialect.QuoteIdentifier(sub.table.physical)},
                      sub.WhereString(dialect), cost));
    if (stats) ++stats->pool_ral_subqueries;
    return rs;
  }
  GRIDDB_ASSIGN_OR_RETURN(ResultSet rs, driver_.ExecuteSubQuery(sub, cost));
  if (stats) ++stats->jdbc_subqueries;
  return rs;
}

Result<ResultSet> DataAccessService::QueryLocal(const sql::SelectStmt& stmt,
                                                net::Cost* cost,
                                                QueryStats* stats) {
  GRIDDB_ASSIGN_OR_RETURN(unity::QueryPlan plan, driver_.Plan(stmt));
  if (stats) stats->tables = plan.logical_tables.size();

  if (plan.single_database) {
    if (stats) stats->databases = 1;
    GRIDDB_ASSIGN_OR_RETURN(ral::DatabaseCatalog::Entry entry,
                            catalog_->Find(plan.connection));
    const sql::Dialect& dialect = entry.database->dialect();
    if (ral::IsPoolSupported(entry.database->vendor()) &&
        ExpressibleInRal(*plan.direct_stmt)) {
      GRIDDB_RETURN_IF_ERROR(pool_.InitHandle(
          plan.connection, config_.db_user, config_.db_password, cost));
      std::vector<std::string> fields;
      for (const sql::SelectItem& item : plan.direct_stmt->items) {
        std::string field = sql::RenderExpr(*item.expr, dialect);
        if (!item.alias.empty()) {
          field += " AS " + dialect.QuoteIdentifier(item.alias);
        }
        fields.push_back(std::move(field));
      }
      std::vector<std::string> tables;
      for (const sql::TableRef& ref : plan.direct_stmt->from) {
        std::string table = dialect.QuoteIdentifier(ref.table);
        if (!ref.alias.empty()) {
          table += " " + dialect.QuoteIdentifier(ref.alias);
        }
        tables.push_back(std::move(table));
      }
      std::string where = plan.direct_stmt->where
                              ? sql::RenderExpr(*plan.direct_stmt->where, dialect)
                              : std::string();
      GRIDDB_ASSIGN_OR_RETURN(
          ResultSet rs, pool_.Execute(plan.connection, fields, tables, where,
                                      cost));
      if (stats) ++stats->pool_ral_subqueries;
      return rs;
    }
    // JDBC path for unsupported vendors or queries beyond the RAL form.
    net::Cost jdbc_cost;
    GRIDDB_ASSIGN_OR_RETURN(ResultSet rs,
                            driver_.ExecuteDirect(plan, &jdbc_cost));
    if (cost) cost->AddSequential(jdbc_cost);
    if (stats) ++stats->jdbc_subqueries;
    return rs;
  }

  // Multi-database: route each sub-query, in parallel when enabled.
  std::set<std::string> connections;
  for (const SubQuery& sub : plan.subqueries) {
    connections.insert(sub.table.connection);
  }
  if (stats) {
    stats->databases = connections.size();
    stats->distributed = true;
  }
  if (cost) {
    // Decomposition overhead, then per-database connect/auth. The
    // decomposed path opens fresh connections each time (no pooling in
    // the prototype's driver), and connection setup is serialized by the
    // driver manager even when fetches run in parallel.
    cost->AddMs(transport_->costs().distribution_overhead_ms);
    cost->AddMs(transport_->costs().connect_auth_ms *
                static_cast<double>(connections.size()));
  }

  std::vector<std::pair<std::string, ResultSet>> partials(
      plan.subqueries.size());
  std::vector<net::Cost> branch_costs(plan.subqueries.size());
  std::vector<QueryStats> branch_stats(plan.subqueries.size());

  if (config_.enhanced_driver && config_.parallel_subqueries &&
      plan.subqueries.size() > 1) {
    std::vector<std::future<Status>> futures;
    futures.reserve(plan.subqueries.size());
    for (size_t i = 0; i < plan.subqueries.size(); ++i) {
      futures.push_back(
          workers_.Submit([this, &plan, &partials, &branch_costs,
                           &branch_stats, i]() -> Status {
            auto rs = ExecuteSubQueryRouted(plan.subqueries[i],
                                            &branch_costs[i], &branch_stats[i]);
            if (!rs.ok()) return rs.status();
            partials[i] = {plan.subqueries[i].effective_name, std::move(*rs)};
            return Status::Ok();
          }));
    }
    Status first_error = Status::Ok();
    for (auto& f : futures) {
      Status s = f.get();
      if (!s.ok() && first_error.ok()) first_error = s;
    }
    GRIDDB_RETURN_IF_ERROR(first_error);
    if (cost) cost->AddParallel(branch_costs);
  } else {
    for (size_t i = 0; i < plan.subqueries.size(); ++i) {
      auto rs = ExecuteSubQueryRouted(plan.subqueries[i], &branch_costs[i],
                                      &branch_stats[i]);
      GRIDDB_RETURN_IF_ERROR(rs.status());
      partials[i] = {plan.subqueries[i].effective_name, std::move(*rs)};
      if (cost) cost->AddSequential(branch_costs[i]);
    }
  }
  if (stats) {
    for (const QueryStats& branch : branch_stats) {
      stats->pool_ral_subqueries += branch.pool_ral_subqueries;
      stats->jdbc_subqueries += branch.jdbc_subqueries;
    }
  }

  GRIDDB_ASSIGN_OR_RETURN(ResultSet merged,
                          unity::MergePartials(*plan.merge_stmt,
                                               std::move(partials)));
  if (cost) {
    cost->AddMs(transport_->costs().integrate_per_row_ms *
                static_cast<double>(merged.num_rows()));
  }
  return merged;
}

rpc::RpcClient* DataAccessService::ClientFor(const std::string& server_url) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = remote_clients_.find(server_url);
  if (it != remote_clients_.end()) return it->second.get();
  auto client = std::make_unique<rpc::RpcClient>(transport_, config_.host,
                                                 server_url);
  // Distributed queries charge the JClarens connect/auth explicitly per
  // query (fresh-connection semantics); suppress the client's one-time
  // charge so it is not double-counted.
  client->set_connect_cost_ms(0.0);
  auto [inserted, unused] =
      remote_clients_.emplace(server_url, std::move(client));
  (void)unused;
  return inserted->second.get();
}

Result<ResultSet> DataAccessService::RemoteQuery(const std::string& server_url,
                                                 const std::string& sql_text,
                                                 net::Cost* cost,
                                                 QueryStats* stats,
                                                 int forward_depth) {
  rpc::RpcClient* client = ClientFor(server_url);
  rpc::XmlRpcArray params;
  params.emplace_back(sql_text);
  GRIDDB_ASSIGN_OR_RETURN(
      rpc::XmlRpcValue response,
      client->Call("dataaccess.query", std::move(params), cost,
                   forward_depth + 1));
  GRIDDB_ASSIGN_OR_RETURN(const rpc::XmlRpcValue* result,
                          response.Member("result"));
  GRIDDB_ASSIGN_OR_RETURN(ResultSet rs, rpc::RpcToResultSet(*result));
  if (stats) {
    auto remote_stats = response.Member("stats");
    if (remote_stats.ok()) {
      QueryStats remote = StatsFromRpc(**remote_stats);
      stats->pool_ral_subqueries += remote.pool_ral_subqueries;
      stats->jdbc_subqueries += remote.jdbc_subqueries;
      stats->databases += remote.databases;
    }
  }
  return rs;
}

Result<ResultSet> DataAccessService::QueryWithRemote(
    const sql::SelectStmt& stmt,
    const std::vector<const sql::TableRef*>& missing, net::Cost* cost,
    QueryStats* stats, int forward_depth) {
  if (!rls_) {
    return NotFound("table '" + missing.front()->table +
                    "' is not registered locally and no RLS is configured");
  }
  if (stats) stats->used_rls = true;

  // Locate every missing table through the RLS. Among the returned
  // replica servers, prefer one that is actually reachable right now
  // (RLS entries can be stale: a server may have died after publishing).
  // Lookup costs are attributed to the remote branch they resolve to
  // (lookups for server X overlap with fetches from other machines).
  std::map<std::string, std::string> table_to_server;  // logical -> url
  std::set<std::string> remote_servers;
  std::map<std::string, double> lookup_ms_by_server;
  double total_lookup_ms = 0;
  for (const sql::TableRef* ref : missing) {
    net::Cost lookup_cost;
    GRIDDB_ASSIGN_OR_RETURN(std::vector<std::string> urls,
                            rls_->Lookup(ToLower(ref->table), &lookup_cost));
    // Never forward to ourselves (stale RLS entries).
    urls.erase(std::remove(urls.begin(), urls.end(), config_.server_url),
               urls.end());
    // Failover: drop URLs whose endpoint no longer resolves, keeping the
    // RLS-returned order among the live ones.
    std::string chosen;
    for (const std::string& url : urls) {
      if (transport_->Resolve(url).ok()) {
        chosen = url;
        break;
      }
    }
    if (chosen.empty() && !urls.empty()) chosen = urls.front();  // report the
                                                                 // stale one
    if (chosen.empty()) {
      if (cost) cost->AddMs(lookup_cost.total_ms());
      return NotFound("table '" + ref->table +
                      "' is not registered with any JClarens server");
    }
    table_to_server[ToLower(ref->table)] = chosen;
    remote_servers.insert(chosen);
    lookup_ms_by_server[chosen] += lookup_cost.total_ms();
    total_lookup_ms += lookup_cost.total_ms();
  }
  if (stats) stats->servers_contacted = 1 + remote_servers.size();

  std::vector<const sql::TableRef*> all_tables = stmt.AllTables();
  bool any_local = false;
  for (const sql::TableRef* ref : all_tables) {
    if (driver_.dictionary().HasTable(ref->table)) any_local = true;
  }

  // Whole-query forwarding: every table lives on one remote server.
  if (!any_local && remote_servers.size() == 1) {
    if (stats) {
      stats->tables = all_tables.size();
      stats->distributed = true;
    }
    if (cost) {
      cost->AddMs(total_lookup_ms);
      cost->AddMs(transport_->costs().connect_auth_ms);
    }
    std::string text = sql::RenderSelect(stmt, ClientDialect());
    return RemoteQuery(*remote_servers.begin(), text, cost, stats,
                       forward_depth);
  }

  // Mixed: fetch a partial per table reference (local tables through the
  // local driver, remote ones from their hosting server), merge here.
  if (stats) {
    stats->tables = all_tables.size();
    stats->distributed = true;
  }

  // Tables on the nullable side of a LEFT JOIN must be fetched whole
  // (see unity/planner.cc: pushdown there changes NULL-padding at merge).
  std::set<std::string> nullable_sides;
  for (const sql::Join& join : stmt.joins) {
    if (join.type == sql::JoinType::kLeft) {
      nullable_sides.insert(ToLower(join.table.EffectiveName()));
    }
  }

  // Pushable conjuncts: qualified entirely with one effective name.
  auto pushed_for = [&](const std::string& effective) -> sql::ExprPtr {
    if (nullable_sides.count(ToLower(effective))) return nullptr;
    std::vector<sql::ExprPtr> kept;
    for (const sql::Expr* conjunct : sql::SplitConjuncts(stmt.where.get())) {
      std::vector<const sql::ColumnRef*> refs;
      sql::CollectColumnRefs(*conjunct, refs);
      if (refs.empty()) continue;
      bool all_this_table = true;
      for (const sql::ColumnRef* ref : refs) {
        if (ref->table.empty() || !EqualsIgnoreCase(ref->table, effective)) {
          all_this_table = false;
          break;
        }
      }
      if (!all_this_table) continue;
      sql::ExprPtr copy = conjunct->Clone();
      // Strip the qualifier: the partial fetch addresses a single table.
      std::function<void(sql::Expr&)> strip = [&](sql::Expr& e) {
        if (e.kind == sql::Expr::Kind::kColumn) e.column_ref.table.clear();
        for (sql::ExprPtr& child : e.children) strip(*child);
      };
      strip(*copy);
      kept.push_back(std::move(copy));
    }
    return sql::ConjunctionOf(std::move(kept));
  };

  // One fetch per table reference, grouped by where it executes: the
  // local group plus one group per remote server. Groups run as parallel
  // branches (they hit different machines); within a group the fetches
  // are serial, and each group pays the fresh connect/auth of the
  // distributed path once per database/server.
  struct Fetch {
    std::string effective;
    std::string sql;
    bool local = false;
    std::string url;  // remote server when !local
  };
  std::vector<Fetch> local_group;
  std::map<std::string, std::vector<Fetch>> remote_groups;  // by server url
  std::set<std::string> local_connections;
  for (const sql::TableRef* ref : all_tables) {
    Fetch fetch;
    fetch.effective = ref->EffectiveName();
    sql::ExprPtr pushed = stmt.where ? pushed_for(fetch.effective) : nullptr;
    fetch.sql = "SELECT * FROM " + ToLower(ref->table);
    if (pushed) {
      fetch.sql += " WHERE " + sql::RenderExpr(*pushed, ClientDialect());
    }
    if (driver_.dictionary().HasTable(ref->table)) {
      fetch.local = true;
      for (const unity::TableBinding& b :
           driver_.dictionary().Locate(ref->table)) {
        local_connections.insert(b.connection);
        break;  // fresh connect charged for the replica actually used
      }
      local_group.push_back(std::move(fetch));
    } else {
      fetch.url = table_to_server[ToLower(ref->table)];
      remote_groups[fetch.url].push_back(std::move(fetch));
    }
  }
  if (cost) cost->AddMs(transport_->costs().distribution_overhead_ms);

  std::vector<std::pair<std::string, ResultSet>> partials;
  std::vector<net::Cost> branch_costs;

  if (!local_group.empty()) {
    net::Cost branch;
    branch.AddMs(transport_->costs().connect_auth_ms *
                 static_cast<double>(local_connections.size()));
    for (const Fetch& fetch : local_group) {
      GRIDDB_ASSIGN_OR_RETURN(ResultSet partial,
                              driver_.Query(fetch.sql, &branch));
      partials.emplace_back(fetch.effective, std::move(partial));
    }
    branch_costs.push_back(branch);
  }
  for (const auto& [url, fetches] : remote_groups) {
    net::Cost branch;
    branch.AddMs(lookup_ms_by_server[url]);
    branch.AddMs(transport_->costs().connect_auth_ms);
    for (const Fetch& fetch : fetches) {
      GRIDDB_ASSIGN_OR_RETURN(
          ResultSet partial,
          RemoteQuery(url, fetch.sql, &branch, stats, forward_depth));
      partials.emplace_back(fetch.effective, std::move(partial));
    }
    branch_costs.push_back(branch);
  }
  if (cost) cost->AddParallel(branch_costs);

  // Merge statement: original with table refs renamed to effective names.
  std::unique_ptr<sql::SelectStmt> merge_stmt = stmt.Clone();
  for (sql::TableRef& ref : merge_stmt->from) {
    ref.table = ref.EffectiveName();
    ref.alias.clear();
  }
  for (sql::Join& join : merge_stmt->joins) {
    join.table.table = join.table.EffectiveName();
    join.table.alias.clear();
  }
  GRIDDB_ASSIGN_OR_RETURN(
      ResultSet merged, unity::MergePartials(*merge_stmt, std::move(partials)));
  if (cost) {
    cost->AddMs(transport_->costs().integrate_per_row_ms *
                static_cast<double>(merged.num_rows()));
  }
  return merged;
}

Result<ResultSet> DataAccessService::Query(const std::string& sql_text,
                                           QueryStats* stats,
                                           int forward_depth) {
  net::Cost cost;
  cost.AddMs(transport_->costs().query_parse_ms);
  GRIDDB_ASSIGN_OR_RETURN(std::unique_ptr<sql::SelectStmt> stmt,
                          sql::ParseSelect(sql_text, ClientDialect()));

  std::vector<const sql::TableRef*> missing;
  for (const sql::TableRef* ref : stmt->AllTables()) {
    if (!driver_.dictionary().HasTable(ref->table)) missing.push_back(ref);
  }

  Result<ResultSet> result =
      missing.empty()
          ? QueryLocal(*stmt, &cost, stats)
          : QueryWithRemote(*stmt, missing, &cost, stats, forward_depth);
  if (!result.ok()) return result.status();
  if (stats) {
    stats->rows = result->num_rows();
    stats->simulated_ms = cost.total_ms();
  }
  return result;
}

// ---------- stats <-> RPC ----------

rpc::XmlRpcValue StatsToRpc(const QueryStats& stats) {
  rpc::XmlRpcStruct out;
  out["simulated_ms"] = stats.simulated_ms;
  out["distributed"] = stats.distributed;
  out["used_rls"] = stats.used_rls;
  out["servers_contacted"] = static_cast<int64_t>(stats.servers_contacted);
  out["databases"] = static_cast<int64_t>(stats.databases);
  out["tables"] = static_cast<int64_t>(stats.tables);
  out["rows"] = static_cast<int64_t>(stats.rows);
  out["pool_ral_subqueries"] = static_cast<int64_t>(stats.pool_ral_subqueries);
  out["jdbc_subqueries"] = static_cast<int64_t>(stats.jdbc_subqueries);
  return out;
}

QueryStats StatsFromRpc(const rpc::XmlRpcValue& value) {
  QueryStats stats;
  auto get_int = [&](const char* key, size_t* out) {
    auto member = value.Member(key);
    if (member.ok()) {
      auto v = (*member)->AsInt();
      if (v.ok()) *out = static_cast<size_t>(*v);
    }
  };
  auto member = value.Member("simulated_ms");
  if (member.ok()) {
    auto v = (*member)->AsDouble();
    if (v.ok()) stats.simulated_ms = *v;
  }
  auto distributed = value.Member("distributed");
  if (distributed.ok()) {
    auto v = (*distributed)->AsBool();
    if (v.ok()) stats.distributed = *v;
  }
  auto used_rls = value.Member("used_rls");
  if (used_rls.ok()) {
    auto v = (*used_rls)->AsBool();
    if (v.ok()) stats.used_rls = *v;
  }
  get_int("servers_contacted", &stats.servers_contacted);
  get_int("databases", &stats.databases);
  get_int("tables", &stats.tables);
  get_int("rows", &stats.rows);
  get_int("pool_ral_subqueries", &stats.pool_ral_subqueries);
  get_int("jdbc_subqueries", &stats.jdbc_subqueries);
  return stats;
}

}  // namespace griddb::core
