#include "griddb/core/data_access_service.h"

#include <algorithm>
#include <cstdio>
#include <future>
#include <iterator>
#include <optional>
#include <set>

#include "griddb/obs/metrics.h"
#include "griddb/sql/fingerprint.h"
#include "griddb/sql/parser.h"
#include "griddb/sql/render.h"
#include "griddb/unity/planner.h"
#include "griddb/util/logging.h"
#include "griddb/util/md5.h"
#include "griddb/util/strings.h"

namespace griddb::core {

using storage::ResultSet;
using unity::LowerXSpec;
using unity::SubQuery;
using unity::UpperXSpecEntry;

namespace {

const sql::Dialect& ClientDialect() {
  return sql::Dialect::For(sql::Vendor::kSqlite);
}

/// True when a single-database statement fits the POOL-RAL wrapper form:
/// plain column select items over FROM tables with an optional WHERE.
bool ExpressibleInRal(const sql::SelectStmt& stmt) {
  if (stmt.distinct || !stmt.group_by.empty() || stmt.having ||
      !stmt.order_by.empty() || stmt.limit || stmt.offset ||
      !stmt.joins.empty()) {
    return false;
  }
  for (const sql::SelectItem& item : stmt.items) {
    if (item.expr->kind != sql::Expr::Kind::kColumn) return false;
  }
  return true;
}

/// Columns of `effective` the statement references (qualified refs only) —
/// the schema an empty substitute partial needs so the merge still binds.
std::vector<std::string> ReferencedColumns(const sql::SelectStmt& stmt,
                                           const std::string& effective) {
  std::vector<const sql::ColumnRef*> refs;
  for (const sql::SelectItem& item : stmt.items) {
    sql::CollectColumnRefs(*item.expr, refs);
  }
  if (stmt.where) sql::CollectColumnRefs(*stmt.where, refs);
  for (const sql::Join& join : stmt.joins) {
    if (join.on) sql::CollectColumnRefs(*join.on, refs);
  }
  for (const sql::ExprPtr& e : stmt.group_by) sql::CollectColumnRefs(*e, refs);
  if (stmt.having) sql::CollectColumnRefs(*stmt.having, refs);
  for (const sql::OrderItem& item : stmt.order_by) {
    sql::CollectColumnRefs(*item.expr, refs);
  }
  std::vector<std::string> columns;
  for (const sql::ColumnRef* ref : refs) {
    if (!EqualsIgnoreCase(ref->table, effective)) continue;
    std::string lower = ToLower(ref->column);
    if (std::find(columns.begin(), columns.end(), lower) == columns.end()) {
      columns.push_back(std::move(lower));
    }
  }
  return columns;
}

/// A zero-row ResultSet with the given schema (partial-results substitute
/// for a failed sub-query; inner joins against it yield no rows, LEFT
/// JOINs NULL-pad).
ResultSet EmptyPartial(std::vector<std::string> columns) {
  ResultSet rs;
  rs.columns = std::move(columns);
  return rs;
}

// Per-call-site instrument handles (see rpc/server.cc for the pattern).
obs::Counter& QueriesCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("griddb.core.queries");
  return *c;
}
obs::Counter& QueryErrorsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("griddb.core.query_errors");
  return *c;
}
obs::Counter& SlowQueriesCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("griddb.core.slow_queries");
  return *c;
}
obs::Counter& ReplansCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("griddb.core.replans");
  return *c;
}
obs::Counter& FailoversCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("griddb.core.failovers");
  return *c;
}
obs::Counter& BreakerSkipsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("griddb.core.breaker_skips");
  return *c;
}
obs::Counter& ForwardsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("griddb.core.forwards");
  return *c;
}
obs::Histogram& QueryMsHistogram() {
  static obs::Histogram* h =
      obs::MetricsRegistry::Default().GetHistogram("griddb.core.query_ms");
  return *h;
}
obs::Histogram& SubqueryMsHistogram() {
  static obs::Histogram* h =
      obs::MetricsRegistry::Default().GetHistogram("griddb.core.subquery_ms");
  return *h;
}
obs::Counter& PlanCacheHitsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("griddb.cache.plan.hits");
  return *c;
}
obs::Counter& PlanCacheMissesCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("griddb.cache.plan.misses");
  return *c;
}
obs::Counter& ResultCacheHitsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("griddb.cache.result.hits");
  return *c;
}
obs::Counter& ResultCacheMissesCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("griddb.cache.result.misses");
  return *c;
}
obs::Counter& SubqueryCacheHitsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("griddb.cache.subquery.hits");
  return *c;
}
obs::Counter& SubqueryCacheMissesCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "griddb.cache.subquery.misses");
  return *c;
}
obs::Counter& DeadlineExceededCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "griddb.admission.deadline_exceeded");
  return *c;
}
obs::Counter& CancelledSubqueriesCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "griddb.admission.cancelled_subqueries");
  return *c;
}
obs::Histogram& StreamFirstChunkMs() {
  static obs::Histogram* h = obs::MetricsRegistry::Default().GetHistogram(
      "griddb.wire.stream_first_chunk_ms");
  return *h;
}

/// Consumes streamed sub-query chunks as they arrive (DESIGN.md §16):
/// the per-chunk credit returned to the client's flow-control window is
/// the simulated merge-integration time, so a slow merge stalls the
/// producer instead of buffering unboundedly. Memory accounting follows
/// the same window: while the stream is in flight the sink holds a
/// merge-memory lease sized to window x chunk bytes (not the whole
/// result), which is the point of streaming — the full-result 2x merge
/// lease is only taken later, once the rows exist anyway.
class WindowLeaseSink : public rpc::wire::StreamSink {
 public:
  WindowLeaseSink(AdmissionController* admission, std::string tenant,
                  size_t window, double integrate_per_row_ms)
      : admission_(admission),
        tenant_(std::move(tenant)),
        window_(window < 1 ? 1 : window),
        integrate_per_row_ms_(integrate_per_row_ms) {}

  void OnRestart() override {
    rows_.clear();
    lease_ = {};
  }

  Result<double> OnChunk(storage::ResultSet&& chunk, size_t seq) override {
    if (seq == 0) {
      size_t chunk_bytes = 0;
      for (const storage::Row& row : chunk.rows) {
        chunk_bytes += storage::RowWireSize(row);
      }
      // Shed (kResourceExhausted) aborts the attempt; the client's
      // RetryPolicy decides whether to come back.
      GRIDDB_ASSIGN_OR_RETURN(
          lease_, admission_->ReserveMergeMemory(window_ * chunk_bytes,
                                                 tenant_));
    }
    used_ = true;
    double credit_ms =
        integrate_per_row_ms_ * static_cast<double>(chunk.rows.size());
    rows_.insert(rows_.end(), std::make_move_iterator(chunk.rows.begin()),
                 std::make_move_iterator(chunk.rows.end()));
    return credit_ms;
  }

  bool used() const { return used_; }
  /// Hands the accumulated rows to the caller and drops the window lease.
  std::vector<storage::Row> TakeRows() {
    lease_ = {};
    return std::move(rows_);
  }

 private:
  AdmissionController* admission_;
  std::string tenant_;
  size_t window_;
  double integrate_per_row_ms_;
  bool used_ = false;
  std::vector<storage::Row> rows_;
  AdmissionController::MemoryLease lease_;
};

/// Status codes under which an opted-in client would rather see a stale
/// cached result than an error: the same transient set the replica
/// failover path treats as retry-worthy.
bool IsStaleServable(StatusCode code) {
  return code == StatusCode::kUnavailable || code == StatusCode::kTimeout ||
         code == StatusCode::kNotFound || code == StatusCode::kCorruption ||
         code == StatusCode::kResourceExhausted;
}

/// FNV-1a over the server URL: a deterministic per-server tracer seed so
/// two servers in one process never mint colliding span ids.
uint64_t SeedFromUrl(const std::string& url) {
  uint64_t hash = 0xcbf29ce484222325ull;
  for (unsigned char c : url) {
    hash ^= c;
    hash *= 0x100000001b3ull;
  }
  return hash | 1;  // never 0 (0 would fall back to the tracer default)
}

std::string SpanHexU64(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%llx",
                static_cast<unsigned long long>(v));
  return buf;
}

uint64_t SpanParseHexU64(const std::string& text) {
  uint64_t v = 0;
  for (char c : text) {
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') digit = c - 'A' + 10;
    else return 0;
    v = (v << 4) | static_cast<uint64_t>(digit);
  }
  return v;
}

}  // namespace

DataAccessService::DataAccessService(DataAccessConfig config,
                                     ral::DatabaseCatalog* catalog,
                                     rpc::Transport* transport)
    : config_(std::move(config)),
      catalog_(catalog),
      transport_(transport),
      driver_(catalog, transport->network(), transport->costs(),
              [&] {
                unity::UnityDriverOptions options;
                options.enhanced = config_.enhanced_driver;
                options.parallel_subqueries = config_.parallel_subqueries;
                options.projection_pushdown = config_.projection_pushdown;
                options.predicate_pushdown = config_.predicate_pushdown;
                options.max_threads = config_.max_threads;
                options.client_host = config_.host;
                options.user = config_.db_user;
                options.password = config_.db_password;
                return options;
              }()),
      pool_(catalog, transport->network(), transport->costs(), config_.host),
      workers_(config_.max_threads,
               [&] {
                 // Overflowing fan-out tasks are rejected, not blocked: the
                 // submitting thread holds an admission slot, and blocking
                 // it on queue space would stall the very work that frees
                 // the queue. The branch surfaces kResourceExhausted.
                 ThreadPoolOptions options;
                 options.max_queue = config_.worker_queue_limit;
                 options.overflow = ThreadPoolOptions::Overflow::kReject;
                 return options;
               }()),
      cache_([&] {
        cache::QueryCacheConfig cc;
        cc.plan_capacity = config_.plan_cache_entries;
        cc.result_capacity_bytes = config_.result_cache_bytes;
        return cc;
      }()),
      admission_([&] {
        AdmissionConfig admission = config_.admission;
        // With both RBAC and tenant isolation on, only tenants known to
        // the grant catalog earn a dedicated lane; arbitrary tenant
        // strings (whose queries will be denied at plan time anyway)
        // share the default lane instead of growing permanent per-tenant
        // scheduler state. The shared_ptr capture keeps the catalog alive
        // for the controller's lifetime.
        if (admission.per_tenant() && config_.rbac && !admission.known_tenant) {
          std::shared_ptr<RbacCatalog> rbac = config_.rbac;
          admission.known_tenant = [rbac](const std::string& tenant) {
            return rbac->KnownTenant(tenant);
          };
        }
        return admission;
      }()) {
  // Quarantined databases are invisible to the planner; with every
  // replica of a table quarantined, planning fails with "no usable
  // replica" (kNotFound), which the failover path treats as transient.
  driver_.SetReplicaFilter([this](const unity::TableBinding& binding) {
    return !IsQuarantined(binding.database_name);
  });
  // Span ids are deterministic (seed + counter) and span durations come
  // off the virtual clock, so traces replay identically run to run.
  tracer_.Reseed(config_.trace_seed != 0
                     ? config_.trace_seed
                     : SeedFromUrl(config_.server_url.empty()
                                       ? config_.server_name + "@" + config_.host
                                       : config_.server_url));
  tracer_.set_enabled(config_.tracing);
  net::Network* network = transport_->network();
  tracer_.set_clock([network] { return network->NowMs(); });
  if (!config_.rls_url.empty()) {
    rls_ = std::make_unique<rls::RlsClient>(transport, config_.host,
                                            config_.rls_url);
    rls_->set_cache_enabled(config_.rls_cache);
    rls_->set_retry_policy(config_.retry_policy);
    rls_->set_tracer(&tracer_);
  }
}

// ---------- registration ----------

Status DataAccessService::RegisterDatabase(const UpperXSpecEntry& upper,
                                           const LowerXSpec& lower) {
  GRIDDB_RETURN_IF_ERROR(driver_.AddDatabase(upper, lower));
  std::vector<std::string> tables;
  for (const unity::XSpecTable& table : lower.tables) {
    tables.push_back(ToLower(table.logical_name));
  }
  if (rls_ && !config_.server_url.empty()) {
    Status published = rls_->PublishAll(tables, config_.server_url);
    if (!published.ok()) {
      GRIDDB_LOG(Warn) << "RLS publish failed for '" << upper.database_name
                       << "': " << published.ToString();
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    registered_[upper.database_name] = upper;
    published_[upper.database_name] = std::move(tables);
  }
  // Connect to the database now (§4.10: "the server establishes a
  // connection with the database"). Registered databases are therefore
  // warm: a later non-distributed query pays no connect/auth. A failure
  // here (e.g. credentials) is deferred to query time.
  auto entry = catalog_->Find(upper.url);
  if (entry.ok()) {
    if (ral::IsPoolSupported(entry->database->vendor())) {
      Status warmed = pool_.InitHandle(upper.url, config_.db_user,
                                       config_.db_password, nullptr);
      if (!warmed.ok()) {
        GRIDDB_LOG(Warn) << "POOL handle init failed for '" << upper.url
                         << "': " << warmed.ToString();
      }
    }
    Status warmed = driver_.WarmConnection(upper.url);
    if (!warmed.ok()) {
      GRIDDB_LOG(Warn) << "JDBC warm-up failed for '" << upper.url
                       << "': " << warmed.ToString();
    }
  }
  return Status::Ok();
}

Status DataAccessService::RegisterLiveDatabase(
    const std::string& connection_string, const std::string& driver_name) {
  GRIDDB_ASSIGN_OR_RETURN(ral::DatabaseCatalog::Entry entry,
                          catalog_->Find(connection_string));
  LowerXSpec lower = unity::GenerateXSpec(*entry.database);
  UpperXSpecEntry upper;
  upper.database_name = entry.database->name();
  upper.url = connection_string;
  upper.driver = driver_name.empty()
                     ? std::string(sql::VendorName(entry.database->vendor()))
                     : driver_name;
  upper.lower_spec = upper.database_name + ".xspec";
  return RegisterDatabase(upper, lower);
}

Status DataAccessService::UnregisterDatabase(const std::string& database_name) {
  GRIDDB_RETURN_IF_ERROR(driver_.RemoveDatabase(database_name));
  std::lock_guard<std::mutex> lock(mu_);
  if (rls_ && !config_.server_url.empty()) {
    auto it = published_.find(database_name);
    if (it != published_.end()) {
      for (const std::string& table : it->second) {
        // Tables may still be published by another local database; only
        // unpublish when no other local database exports them.
        if (!driver_.dictionary().HasTable(table)) {
          (void)rls_->Unpublish(table, config_.server_url);
        }
      }
    }
  }
  registered_.erase(database_name);
  published_.erase(database_name);
  return Status::Ok();
}

Status DataAccessService::ReloadDatabase(const UpperXSpecEntry& upper,
                                         const LowerXSpec& lower) {
  GRIDDB_RETURN_IF_ERROR(driver_.ReplaceDatabase(upper, lower));
  std::vector<std::string> tables;
  for (const unity::XSpecTable& table : lower.tables) {
    tables.push_back(ToLower(table.logical_name));
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (rls_ && !config_.server_url.empty()) {
    std::vector<std::string>& old_tables = published_[upper.database_name];
    for (const std::string& old_table : old_tables) {
      bool still_present =
          std::find(tables.begin(), tables.end(), old_table) != tables.end();
      if (!still_present && !driver_.dictionary().HasTable(old_table)) {
        (void)rls_->Unpublish(old_table, config_.server_url);
      }
    }
    (void)rls_->PublishAll(tables, config_.server_url);
  }
  registered_[upper.database_name] = upper;
  published_[upper.database_name] = std::move(tables);
  return Status::Ok();
}

Result<LowerXSpec> DataAccessService::GenerateXSpecFor(
    const std::string& database_name) {
  UpperXSpecEntry upper;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = registered_.find(database_name);
    if (it == registered_.end()) {
      return NotFound("database '" + database_name + "' is not registered");
    }
    upper = it->second;
  }
  GRIDDB_ASSIGN_OR_RETURN(ral::DatabaseCatalog::Entry entry,
                          catalog_->Find(upper.url));
  return unity::GenerateXSpec(*entry.database);
}

Status DataAccessService::RefreshRegisteredDatabase(
    const std::string& database_name) {
  GRIDDB_ASSIGN_OR_RETURN(UpperXSpecEntry upper, UpperEntryFor(database_name));
  GRIDDB_ASSIGN_OR_RETURN(LowerXSpec lower, GenerateXSpecFor(database_name));
  return ReloadDatabase(upper, lower);
}

Result<UpperXSpecEntry> DataAccessService::UpperEntryFor(
    const std::string& database_name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = registered_.find(database_name);
  if (it == registered_.end()) {
    return NotFound("database '" + database_name + "' is not registered");
  }
  return it->second;
}

std::vector<std::string> DataAccessService::RegisteredDatabases() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(registered_.size());
  for (const auto& [name, upper] : registered_) {
    (void)upper;
    out.push_back(name);
  }
  return out;
}

std::vector<std::string> DataAccessService::LocalTables() const {
  return driver_.dictionary().LogicalTables();
}

Result<unity::TableBinding> DataAccessService::DescribeTable(
    const std::string& logical) const {
  std::vector<unity::TableBinding> bindings =
      driver_.dictionary().Locate(logical);
  if (bindings.empty()) {
    return NotFound("table '" + logical + "' is not registered locally");
  }
  return bindings.front();
}

// ---------- anti-entropy integrity ----------

Result<storage::TableDigest> DataAccessService::TableDigest(
    const std::string& logical_table, const std::string& database_name) {
  std::vector<unity::TableBinding> replicas =
      driver_.dictionary().Locate(logical_table);
  if (replicas.empty()) {
    return NotFound("table '" + logical_table +
                    "' is not registered locally");
  }
  for (const unity::TableBinding& binding : replicas) {
    if (!database_name.empty() && binding.database_name != database_name) {
      continue;
    }
    GRIDDB_ASSIGN_OR_RETURN(ral::DatabaseCatalog::Entry entry,
                            catalog_->Find(binding.connection));
    return entry.database->ContentDigest(binding.physical);
  }
  return NotFound("table '" + logical_table + "' has no replica in '" +
                  database_name + "'");
}

Status DataAccessService::QuarantineDatabase(const std::string& database_name,
                                             const std::string& reason) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!registered_.count(database_name)) {
      return NotFound("database '" + database_name + "' is not registered");
    }
  }
  GRIDDB_LOG(Warn) << "quarantining database '" << database_name
                   << "': " << reason;
  {
    std::lock_guard<std::mutex> lock(quarantine_mu_);
    quarantined_[database_name] = reason;
  }
  // Cached plans may have routed sub-queries to the now-suspect replica,
  // and cached results may hold rows fetched from it: bump the routing
  // generation (evicts plans lazily) and invalidate every cached result
  // over the quarantined database's tables.
  routing_gen_.fetch_add(1, std::memory_order_acq_rel);
  std::vector<std::string> tables;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = published_.find(database_name);
    if (it != published_.end()) tables = it->second;
  }
  for (const std::string& table : tables) cache_.InvalidateTable(table);
  return Status::Ok();
}

Status DataAccessService::ReinstateDatabase(const std::string& database_name) {
  {
    std::lock_guard<std::mutex> lock(quarantine_mu_);
    if (quarantined_.erase(database_name) == 0) {
      return NotFound("database '" + database_name + "' is not quarantined");
    }
  }
  // Replica eligibility changed again; cached plans must re-route.
  routing_gen_.fetch_add(1, std::memory_order_acq_rel);
  return Status::Ok();
}

bool DataAccessService::IsQuarantined(const std::string& database_name) const {
  std::lock_guard<std::mutex> lock(quarantine_mu_);
  return quarantined_.count(database_name) != 0;
}

std::vector<std::string> DataAccessService::QuarantinedDatabases() const {
  std::lock_guard<std::mutex> lock(quarantine_mu_);
  std::vector<std::string> names;
  names.reserve(quarantined_.size());
  for (const auto& [name, reason] : quarantined_) {
    (void)reason;
    names.push_back(name);
  }
  return names;
}

// ---------- cache administration ----------

void DataAccessService::ObserveTableDigest(const std::string& logical_table,
                                           const std::string& md5) {
  cache_.ObserveDigest(ToLower(logical_table), md5);
}

size_t DataAccessService::CacheInvalidate(const std::string& logical_table) {
  if (logical_table.empty()) return cache_.Clear();
  return cache_.InvalidateTable(ToLower(logical_table));
}

// ---------- query processing ----------

std::shared_ptr<const cache::CachedPlan> DataAccessService::PrerenderPlan(
    unity::QueryPlan plan) const {
  auto cached = std::make_shared<cache::CachedPlan>();
  cached->plan = std::move(plan);
  const unity::QueryPlan& p = cached->plan;
  if (p.single_database && p.direct_stmt) {
    auto entry = catalog_->Find(p.connection);
    // A failed catalog lookup is left unrendered; execution re-runs the
    // same lookup and surfaces the identical error.
    if (entry.ok()) {
      const sql::Dialect& dialect = entry->database->dialect();
      if (ral::IsPoolSupported(entry->database->vendor()) &&
          ExpressibleInRal(*p.direct_stmt)) {
        cached->direct_pool_form = true;
        for (const sql::SelectItem& item : p.direct_stmt->items) {
          std::string field = sql::RenderExpr(*item.expr, dialect);
          if (!item.alias.empty()) {
            field += " AS " + dialect.QuoteIdentifier(item.alias);
          }
          cached->direct_fields.push_back(std::move(field));
        }
        for (const sql::TableRef& ref : p.direct_stmt->from) {
          std::string table = dialect.QuoteIdentifier(ref.table);
          if (!ref.alias.empty()) {
            table += " " + dialect.QuoteIdentifier(ref.alias);
          }
          cached->direct_tables.push_back(std::move(table));
        }
        if (p.direct_stmt->where) {
          cached->direct_where =
              sql::RenderExpr(*p.direct_stmt->where, dialect);
        }
      } else {
        cached->direct_sql = sql::RenderSelect(*p.direct_stmt, dialect);
      }
    }
  }
  cached->subquery_renders.resize(p.subqueries.size());
  for (size_t i = 0; i < p.subqueries.size(); ++i) {
    const SubQuery& sub = p.subqueries[i];
    cache::RenderedSubQuery& render = cached->subquery_renders[i];
    auto entry = catalog_->Find(sub.table.connection);
    if (!entry.ok()) continue;  // execution surfaces the same error
    const sql::Dialect& dialect = entry->database->dialect();
    render.pool_form = ral::IsPoolSupported(entry->database->vendor());
    std::string text;
    if (render.pool_form) {
      render.field_strings = sub.FieldStrings(dialect);
      render.quoted_table = dialect.QuoteIdentifier(sub.table.physical);
      render.where_string = sub.WhereString(dialect);
      text = render.quoted_table;
      for (const std::string& field : render.field_strings) {
        text += '\x1f';
        text += field;
      }
      text += '\x1f';
      text += render.where_string;
    } else {
      render.full_sql = sub.RenderSql(dialect);
      text = render.full_sql;
    }
    render.cache_id = Md5Hex(sub.table.connection + '\x1f' + text);
  }
  return cached;
}

Result<ResultSet> DataAccessService::ExecuteSubQueryRouted(
    const SubQuery& sub, const cache::RenderedSubQuery& render, net::Cost* cost,
    QueryStats* stats, const CancelToken* cancel) {
  // The fetch itself is one simulated backend round trip; checking once
  // before it starts is the sub-query-granularity half of cancellation
  // (the merge join re-checks per row batch).
  if (cancel != nullptr) GRIDDB_RETURN_IF_ERROR(cancel->Check());
  GRIDDB_ASSIGN_OR_RETURN(ral::DatabaseCatalog::Entry entry,
                          catalog_->Find(sub.table.connection));
  if (ral::IsPoolSupported(entry.database->vendor())) {
    GRIDDB_RETURN_IF_ERROR(pool_.InitHandle(
        sub.table.connection, config_.db_user, config_.db_password, cost));
    if (render.pool_form) {
      GRIDDB_ASSIGN_OR_RETURN(
          ResultSet rs,
          pool_.Execute(sub.table.connection, render.field_strings,
                        {render.quoted_table}, render.where_string, cost));
      if (stats) ++stats->pool_ral_subqueries;
      return rs;
    }
    // Prerender had no catalog entry yet; render inline (cold path).
    const sql::Dialect& dialect = entry.database->dialect();
    GRIDDB_ASSIGN_OR_RETURN(
        ResultSet rs,
        pool_.Execute(sub.table.connection, sub.FieldStrings(dialect),
                      {dialect.QuoteIdentifier(sub.table.physical)},
                      sub.WhereString(dialect), cost));
    if (stats) ++stats->pool_ral_subqueries;
    return rs;
  }
  Result<ResultSet> rs =
      render.full_sql.empty()
          ? driver_.ExecuteSubQuery(sub, cost)
          : driver_.ExecuteSubQueryRendered(sub, render.full_sql, cost);
  GRIDDB_RETURN_IF_ERROR(rs.status());
  if (stats) ++stats->jdbc_subqueries;
  return std::move(*rs);
}

namespace {
constexpr const char* kStaleEpochPrefix = "stale schema epoch";
}  // namespace

bool IsEpochStale(const Status& status) {
  return status.code() == StatusCode::kFailedPrecondition &&
         status.message().rfind(kStaleEpochPrefix, 0) == 0;
}

Status DataAccessService::CheckPlanEpoch(const unity::QueryPlan& plan) const {
  uint64_t now = driver_.dictionary().epoch();
  if (now == plan.epoch) return Status::Ok();
  return FailedPrecondition(std::string(kStaleEpochPrefix) +
                            ": planned at epoch " +
                            std::to_string(plan.epoch) +
                            ", dictionary now at " + std::to_string(now) +
                            "; replan required");
}

Result<ResultSet> DataAccessService::QueryLocal(const sql::SelectStmt& stmt,
                                                const std::string& fingerprint,
                                                net::Cost* cost,
                                                QueryStats* stats,
                                                const CancelToken* cancel,
                                                const std::string& tenant) {
  const bool use_cache = config_.query_cache && !fingerprint.empty();
  // Routing-generation snapshot BEFORE the plan lookup: if a quarantine
  // lands mid-plan, the entry inserted below is tagged with the older
  // generation and the next lookup evicts it — conservative, never stale.
  const uint64_t routing_gen = routing_gen_.load(std::memory_order_acquire);
  std::shared_ptr<const cache::CachedPlan> cached;
  if (use_cache) {
    cached = cache_.LookupPlan(fingerprint, driver_.dictionary().epoch(),
                               routing_gen);
    if (cached) {
      if (stats) ++stats->plan_cache_hits;
      PlanCacheHitsCounter().Add(1);
    } else {
      PlanCacheMissesCounter().Add(1);
    }
  }
  if (!cached) {
    obs::Span plan_span = tracer_.StartSpan("unity.plan");
    auto planned = driver_.Plan(stmt);
    if (!planned.ok()) {
      if (plan_span.active()) plan_span.SetError(planned.status().ToString());
      return planned.status();
    }
    if (plan_span.active()) {
      plan_span.AddAttr("tables",
                        std::to_string(planned->logical_tables.size()));
      plan_span.AddAttr("subqueries",
                        std::to_string(planned->subqueries.size()));
    }
    plan_span.End();
    cached = PrerenderPlan(std::move(*planned));
    if (use_cache) {
      cache_.InsertPlan(fingerprint, cached->plan.epoch, routing_gen, cached);
    }
  }
  const unity::QueryPlan& plan = cached->plan;
  if (stats) stats->tables = plan.logical_tables.size();
  if (post_plan_hook_) post_plan_hook_();
  // A schema change between planning and execution invalidates the
  // physical names the plan baked in; fail cleanly so Query() replans
  // against the fresh dictionary instead of running a stale plan.
  GRIDDB_RETURN_IF_ERROR(CheckPlanEpoch(plan));
  // Last pre-execution cancellation point: from here on, work costs money.
  if (cancel != nullptr) GRIDDB_RETURN_IF_ERROR(cancel->Check());

  if (plan.single_database) {
    if (stats) stats->databases = 1;
    GRIDDB_ASSIGN_OR_RETURN(ral::DatabaseCatalog::Entry entry,
                            catalog_->Find(plan.connection));
    (void)entry;
    if (cached->direct_pool_form) {
      GRIDDB_RETURN_IF_ERROR(pool_.InitHandle(
          plan.connection, config_.db_user, config_.db_password, cost));
      GRIDDB_ASSIGN_OR_RETURN(
          ResultSet rs,
          pool_.Execute(plan.connection, cached->direct_fields,
                        cached->direct_tables, cached->direct_where, cost));
      if (stats) ++stats->pool_ral_subqueries;
      return rs;
    }
    // JDBC path for unsupported vendors or queries beyond the RAL form.
    net::Cost jdbc_cost;
    Result<ResultSet> rs =
        cached->direct_sql.empty()
            ? driver_.ExecuteDirect(plan, &jdbc_cost)
            : driver_.ExecuteDirectRendered(plan, cached->direct_sql,
                                            &jdbc_cost);
    GRIDDB_RETURN_IF_ERROR(rs.status());
    if (cost) cost->AddSequential(jdbc_cost);
    if (stats) ++stats->jdbc_subqueries;
    return std::move(*rs);
  }

  // Multi-database: route each sub-query, in parallel when enabled.
  std::set<std::string> connections;
  for (const SubQuery& sub : plan.subqueries) {
    connections.insert(sub.table.connection);
  }
  if (stats) {
    stats->databases = connections.size();
    stats->distributed = true;
  }
  if (cost) {
    // Decomposition overhead, then per-database connect/auth. The
    // decomposed path opens fresh connections each time (no pooling in
    // the prototype's driver), and connection setup is serialized by the
    // driver manager even when fetches run in parallel.
    cost->AddMs(transport_->costs().distribution_overhead_ms);
    cost->AddMs(transport_->costs().connect_auth_ms *
                static_cast<double>(connections.size()));
  }

  std::vector<std::pair<std::string, ResultSet>> partials(
      plan.subqueries.size());
  std::vector<net::Cost> branch_costs(plan.subqueries.size());
  std::vector<QueryStats> branch_stats(plan.subqueries.size());
  std::vector<Status> branch_status(plan.subqueries.size(), Status::Ok());

  // One branch body shared by the parallel and serial paths: probe the
  // per-sub-query result cache (so the unchanged side of a cross-database
  // join is served from memory even when the other side misses), execute
  // on a miss, insert on success. Cache entries are immutable shared rows;
  // the partial gets a copy because the merge mutates its input.
  auto run_branch = [&](size_t i) -> Status {
    const SubQuery& sub = plan.subqueries[i];
    const cache::RenderedSubQuery& render = cached->subquery_renders[i];
    // Every branch shares the query's token: the first sibling to observe
    // a deadline expiry (or client abort) latches it, and the rest fail
    // here before touching their backend.
    if (cancel != nullptr) {
      Status live = cancel->Check();
      if (!live.ok()) {
        ++branch_stats[i].cancelled_subqueries;
        CancelledSubqueriesCounter().Add(1);
        return live;
      }
    }
    std::string sub_key;
    if (use_cache && !render.cache_id.empty()) {
      sub_key = cache_.ResultKey(render.cache_id, plan.epoch,
                                 {ToLower(sub.table.logical)});
      if (cache::CachedResult hit = cache_.LookupResult(sub_key)) {
        ++branch_stats[i].subquery_cache_hits;
        SubqueryCacheHitsCounter().Add(1);
        partials[i] = {sub.effective_name, ResultSet(*hit.result)};
        return Status::Ok();
      }
      SubqueryCacheMissesCounter().Add(1);
    }
    auto rs = ExecuteSubQueryRouted(sub, render, &branch_costs[i],
                                    &branch_stats[i], cancel);
    SubqueryMsHistogram().Observe(branch_costs[i].total_ms());
    if (!rs.ok()) {
      if (rs.status().code() == StatusCode::kDeadlineExceeded) {
        ++branch_stats[i].cancelled_subqueries;
        CancelledSubqueriesCounter().Add(1);
      }
      return rs.status();
    }
    if (!sub_key.empty()) {
      // A fetch that raced a cancellation may be incomplete upstream;
      // tag it so the cache refuses it (satellite of the same rule that
      // keeps truncated whole-query results out).
      cache::ResultMeta sub_meta;
      sub_meta.non_cacheable = cancel != nullptr && cancel->cancelled();
      cache_.InsertResult(sub_key, render.cache_id, plan.epoch,
                          {ToLower(sub.table.logical)},
                          std::make_shared<ResultSet>(*rs), sub_meta);
    }
    partials[i] = {sub.effective_name, std::move(*rs)};
    return Status::Ok();
  };

  // Pool workers have no TLS span linkage to this thread, so the parent
  // context is captured here and each branch opens its span under it
  // explicitly — the same mechanism a remote server uses, minus the wire.
  const obs::SpanContext fanout_parent = tracer_.CurrentContext();
  if (config_.enhanced_driver && config_.parallel_subqueries &&
      plan.subqueries.size() > 1) {
    std::vector<std::future<Status>> futures;
    futures.reserve(plan.subqueries.size());
    for (size_t i = 0; i < plan.subqueries.size(); ++i) {
      futures.push_back(
          workers_.Submit([this, &plan, &run_branch, fanout_parent,
                           i]() -> Status {
            obs::Span sub_span =
                tracer_.StartSpanUnder("dataaccess.subquery", fanout_parent);
            sub_span.AddAttr("table", plan.subqueries[i].effective_name);
            Status branch = run_branch(i);
            if (!branch.ok() && sub_span.active()) {
              sub_span.SetError(branch.ToString());
            }
            return branch;
          }));
    }
    for (size_t i = 0; i < futures.size(); ++i) {
      try {
        branch_status[i] = futures[i].get();
      } catch (const std::future_error&) {
        // Bounded worker queue rejected the task (broken promise): the
        // branch never ran. Shed it the same way admission sheds a whole
        // query, hint included, so RetryPolicy treats it as retryable.
        branch_status[i] = ResourceExhausted(
            "sub-query rejected: worker queue full; retry_after_ms=" +
            std::to_string(static_cast<long long>(
                config_.admission.retry_after_ms)));
      }
    }
    if (cost) cost->AddParallel(branch_costs);
  } else {
    for (size_t i = 0; i < plan.subqueries.size(); ++i) {
      obs::Span sub_span = tracer_.StartSpan("dataaccess.subquery");
      sub_span.AddAttr("table", plan.subqueries[i].effective_name);
      Status branch = run_branch(i);
      if (!branch.ok() && sub_span.active()) {
        sub_span.SetError(branch.ToString());
      }
      sub_span.End();
      if (!branch.ok()) {
        // Fail-fast (seed behaviour) unless a partial mode may substitute
        // for this failure; the resolution loop below decides which.
        const bool was_cancelled =
            branch.code() == StatusCode::kDeadlineExceeded;
        if (was_cancelled ? !config_.partial_on_deadline
                          : !config_.partial_results) {
          return branch;
        }
        branch_status[i] = branch;
      }
      if (cost) cost->AddSequential(branch_costs[i]);
    }
  }
  // Resolve failed branches: whole-query failure by default, or an empty
  // substitute partial (schema from the planned field aliases) plus an
  // error-report line in partial-results mode.
  for (size_t i = 0; i < branch_status.size(); ++i) {
    if (branch_status[i].ok()) continue;
    // A stale-epoch branch must fail the whole query so it gets
    // replanned — substituting an empty partial would silently return
    // rows computed against two different schema versions.
    if (IsEpochStale(branch_status[i])) return branch_status[i];
    // A cancelled branch fails the whole query with kDeadlineExceeded
    // unless the operator opted into deadline-truncated partials; other
    // failures follow the ordinary partial-results switch.
    const bool was_cancelled =
        branch_status[i].code() == StatusCode::kDeadlineExceeded;
    if (was_cancelled ? !config_.partial_on_deadline
                      : !config_.partial_results) {
      return branch_status[i];
    }
    const SubQuery& sub = plan.subqueries[i];
    std::vector<std::string> columns;
    columns.reserve(sub.fields.size());
    for (const auto& [physical, logical] : sub.fields) {
      (void)physical;
      columns.push_back(ToLower(logical));
    }
    partials[i] = {sub.effective_name, EmptyPartial(std::move(columns))};
    if (stats) {
      ++stats->subqueries_failed;
      stats->subquery_errors.push_back(sub.effective_name + ": " +
                                       branch_status[i].ToString());
    }
  }
  if (stats) {
    for (const QueryStats& branch : branch_stats) {
      stats->pool_ral_subqueries += branch.pool_ral_subqueries;
      stats->jdbc_subqueries += branch.jdbc_subqueries;
      stats->subquery_cache_hits += branch.subquery_cache_hits;
      stats->cancelled_subqueries += branch.cancelled_subqueries;
    }
  }

  // The merge materializes every partial in middleware memory; reserve
  // that footprint against the byte budget so concurrent cross-database
  // joins cannot grow the heap without bound. Shed (kResourceExhausted)
  // beats an OOM-killed server. The vectorized merge executor (DESIGN.md
  // §15) columnarizes the partials into batch buffers that coexist with
  // the source rows, so the peak is ~2x the wire footprint.
  size_t merge_bytes = 0;
  for (const auto& partial : partials) merge_bytes += partial.second.WireSize();
  merge_bytes *= 2;
  GRIDDB_ASSIGN_OR_RETURN(AdmissionController::MemoryLease merge_lease,
                          admission_.ReserveMergeMemory(merge_bytes, tenant));

  obs::Span merge_span = tracer_.StartSpan("dataaccess.merge");
  auto merged =
      unity::MergePartials(*plan.merge_stmt, std::move(partials), cancel);
  if (!merged.ok()) {
    if (merge_span.active()) merge_span.SetError(merged.status().ToString());
    return merged.status();
  }
  if (merge_span.active()) {
    merge_span.AddAttr("rows", std::to_string(merged->num_rows()));
  }
  merge_span.End();
  if (cost) {
    cost->AddMs(transport_->costs().integrate_per_row_ms *
                static_cast<double>(merged->num_rows()));
  }
  return std::move(*merged);
}

rpc::RpcClient* DataAccessService::ClientFor(const std::string& server_url) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = remote_clients_.find(server_url);
  if (it != remote_clients_.end()) return it->second.get();
  auto client = std::make_unique<rpc::RpcClient>(transport_, config_.host,
                                                 server_url);
  // Distributed queries charge the JClarens connect/auth explicitly per
  // query (fresh-connection semantics); suppress the client's one-time
  // charge so it is not double-counted.
  client->set_connect_cost_ms(0.0);
  client->set_retry_policy(config_.retry_policy);
  client->set_tracer(&tracer_);
  // Wire-codec preference: "" inherits the client's GRIDDB_WIRE default,
  // "binary" asks for the full capability set, "xmlrpc" pins text.
  if (config_.wire_protocol == "binary") {
    client->set_wire_preference(rpc::wire::kAllCaps);
  } else if (config_.wire_protocol == "xmlrpc") {
    client->set_wire_preference(0);
  }
  client->set_stream_window(config_.stream_window);
  auto [inserted, unused] =
      remote_clients_.emplace(server_url, std::move(client));
  (void)unused;
  return inserted->second.get();
}

Result<ResultSet> DataAccessService::RemoteQuery(
    const std::string& server_url, const std::string& sql_text,
    net::Cost* cost, QueryStats* stats, int forward_depth,
    const std::string& forward_path, const CancelToken* cancel,
    const std::string& tenant) {
  ForwardsCounter().Add(1);
  obs::Span span = tracer_.StartSpan("dataaccess.forward");
  span.AddAttr("url", server_url);
  rpc::RpcClient* client = ClientFor(server_url);
  rpc::XmlRpcArray params;
  params.emplace_back(sql_text);
  // Record ourselves on the forwarding path so a loop names every hop.
  const std::string path = forward_path.empty()
                               ? config_.server_url
                               : forward_path + " -> " + config_.server_url;
  rpc::CallStats call_stats;
  // When the connection negotiated streaming, hand the client a sink so
  // the merge-integration of each chunk overlaps the transfer of the
  // next (and memory is leased per flow-control window, not per result).
  WindowLeaseSink sink(&admission_, tenant, config_.stream_window,
                       transport_->costs().integrate_per_row_ms);
  rpc::wire::StreamSink* sink_ptr =
      (client->wire_preference() & rpc::wire::kCapStream) ? &sink : nullptr;
  // The client stamps the token's remaining budget onto the request
  // (sparse <deadlineMs>) at send time, so the remote server inherits a
  // budget already shrunk by every hop and retry before it.
  // The tenant rides per call (not via set_tenant) because ClientFor
  // shares one cached client per remote URL across all tenants.
  Result<rpc::XmlRpcValue> response =
      client->Call("dataaccess.query", std::move(params), cost,
                   forward_depth + 1, path, &call_stats, cancel, tenant,
                   sink_ptr);
  if (stats) stats->retries += static_cast<size_t>(call_stats.retries);
  if (call_stats.first_chunk_ms >= 0) {
    StreamFirstChunkMs().Observe(call_stats.first_chunk_ms);
  }
  if (!response.ok() && span.active()) {
    span.SetError(response.status().ToString());
  }
  GRIDDB_RETURN_IF_ERROR(response.status());
  // Remote child spans ride back in the (sparse) "spans" member; they are
  // already parented under our wire context, so importing stitches them
  // into this trace.
  if (tracer_.enabled()) {
    auto remote_spans = response->Member("spans");
    if (remote_spans.ok()) {
      for (obs::SpanRecord& record : SpansFromRpc(**remote_spans)) {
        tracer_.Import(std::move(record));
      }
    }
  }
  GRIDDB_ASSIGN_OR_RETURN(const rpc::XmlRpcValue* result,
                          response->Member("result"));
  GRIDDB_ASSIGN_OR_RETURN(ResultSet rs, rpc::RpcToResultSet(*result));
  if (sink.used()) {
    // The streamed member of the envelope carries only the schema; the
    // rows were consumed chunk-by-chunk (integration already charged via
    // the window credit inside the response pipeline).
    rs.rows = sink.TakeRows();
  }
  if (stats) {
    auto remote_stats = response->Member("stats");
    if (remote_stats.ok()) {
      QueryStats remote = StatsFromRpc(**remote_stats);
      stats->pool_ral_subqueries += remote.pool_ral_subqueries;
      stats->jdbc_subqueries += remote.jdbc_subqueries;
      stats->databases += remote.databases;
      stats->retries += remote.retries;
      stats->failovers += remote.failovers;
      stats->subqueries_failed += remote.subqueries_failed;
      stats->breaker_skips += remote.breaker_skips;
      stats->replans += remote.replans;
      stats->plan_cache_hits += remote.plan_cache_hits;
      stats->result_cache_hits += remote.result_cache_hits;
      stats->subquery_cache_hits += remote.subquery_cache_hits;
      stats->cancelled_subqueries += remote.cancelled_subqueries;
      stats->stale = stats->stale || remote.stale;
      for (std::string& line : remote.subquery_errors) {
        stats->subquery_errors.push_back(std::move(line));
      }
    }
  }
  return rs;
}

bool DataAccessService::BreakerAllows(const std::string& server_url) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = breakers_.find(server_url);
  if (it == breakers_.end()) return true;
  const BreakerState& state = it->second;
  if (state.consecutive_failures < config_.breaker_failure_threshold) {
    return true;
  }
  // Open breaker. Once the virtual-clock cooldown has elapsed, go
  // half-open: let one probe through; RecordPeerOutcome re-opens it (with
  // a fresh cooldown) if the probe fails.
  return transport_->network()->NowMs() >= state.open_until_ms;
}

void DataAccessService::RecordPeerOutcome(const std::string& server_url,
                                          bool success) {
  std::lock_guard<std::mutex> lock(mu_);
  BreakerState& state = breakers_[server_url];
  if (success) {
    state.consecutive_failures = 0;
    state.open_until_ms = -1;
    return;
  }
  ++state.consecutive_failures;
  if (state.consecutive_failures >= config_.breaker_failure_threshold) {
    state.open_until_ms =
        transport_->network()->NowMs() + config_.breaker_cooldown_ms;
  }
}

Result<ResultSet> DataAccessService::RemoteQueryFailover(
    const std::vector<std::string>& candidates, const std::string& table,
    const std::string& sql_text, net::Cost* cost, QueryStats* stats,
    int forward_depth, const std::string& forward_path,
    const CancelToken* cancel, const std::string& tenant) {
  // kNotFound is failover-worthy: it usually means a stale RLS row (the
  // replica dropped the table, or never had it) and another replica may
  // still answer. kCorruption likewise — a replica serving corrupt data
  // (or a corrupted reply) should not sink the query while healthy
  // replicas remain. kResourceExhausted too: a shed by one overloaded
  // replica says nothing about its siblings. kDeadlineExceeded is NOT —
  // the budget is shared, so another replica cannot do better with less
  // time. Everything else non-transient is permanent.
  auto failover_worthy = [](StatusCode code) {
    return code == StatusCode::kUnavailable || code == StatusCode::kTimeout ||
           code == StatusCode::kNotFound || code == StatusCode::kCorruption ||
           code == StatusCode::kResourceExhausted;
  };
  Status last_error = Unavailable("no reachable JClarens replica for table '" +
                                  table + "'");
  bool previous_failed = false;
  for (const std::string& url : candidates) {
    // A cancelled query stops walking the replica list: every further
    // attempt would spend wall time the caller already gave up on.
    if (cancel != nullptr) GRIDDB_RETURN_IF_ERROR(cancel->Check());
    if (!BreakerAllows(url)) {
      if (stats) ++stats->breaker_skips;
      BreakerSkipsCounter().Add(1);
      continue;
    }
    if (previous_failed) {
      if (stats) ++stats->failovers;
      FailoversCounter().Add(1);
    }
    Result<ResultSet> rs = RemoteQuery(url, sql_text, cost, stats,
                                       forward_depth, forward_path, cancel,
                                       tenant);
    if (rs.ok()) {
      RecordPeerOutcome(url, true);
      return rs;
    }
    last_error = rs.status();
    RecordPeerOutcome(url, false);
    // The mapping that sent us here is suspect; make the next query
    // re-consult the live RLS catalog instead of the cache.
    if (rls_) rls_->InvalidateCache(ToLower(table));
    if (!failover_worthy(last_error.code())) return last_error;
    previous_failed = true;
  }
  return last_error;
}

Result<ResultSet> DataAccessService::QueryWithRemote(
    const sql::SelectStmt& stmt,
    const std::vector<const sql::TableRef*>& missing, net::Cost* cost,
    QueryStats* stats, int forward_depth, const std::string& forward_path,
    const CancelToken* cancel, const std::string& tenant) {
  if (!rls_) {
    return NotFound("table '" + missing.front()->table +
                    "' is not registered locally and no RLS is configured");
  }
  if (stats) stats->used_rls = true;

  // Locate every missing table through the RLS. The returned replicas
  // become an ordered failover list: servers that are reachable right now
  // first (RLS entries can be stale: a server may have died after
  // publishing), the stale ones last — a dead server may come back, and
  // failing over to it beats dropping it silently. Lookup costs are
  // attributed to the remote branch they resolve to (lookups for server X
  // overlap with fetches from other machines).
  std::map<std::string, std::vector<std::string>> table_candidates;
  std::map<std::string, std::string> table_to_server;  // logical -> 1st url
  std::set<std::string> remote_servers;
  std::map<std::string, double> lookup_ms_by_server;
  double total_lookup_ms = 0;
  for (const sql::TableRef* ref : missing) {
    net::Cost lookup_cost;
    GRIDDB_ASSIGN_OR_RETURN(
        std::vector<std::string> urls,
        rls_->Lookup(ToLower(ref->table), &lookup_cost, cancel));
    // Never forward to ourselves (stale RLS entries).
    urls.erase(std::remove(urls.begin(), urls.end(), config_.server_url),
               urls.end());
    std::vector<std::string> candidates;
    std::vector<std::string> stale;
    for (const std::string& url : urls) {
      (transport_->Resolve(url).ok() ? candidates : stale).push_back(url);
    }
    candidates.insert(candidates.end(), stale.begin(), stale.end());
    if (candidates.empty()) {
      if (cost) cost->AddMs(lookup_cost.total_ms());
      return NotFound("table '" + ref->table +
                      "' is not registered with any JClarens server");
    }
    const std::string& chosen = candidates.front();
    table_to_server[ToLower(ref->table)] = chosen;
    remote_servers.insert(chosen);
    lookup_ms_by_server[chosen] += lookup_cost.total_ms();
    total_lookup_ms += lookup_cost.total_ms();
    table_candidates[ToLower(ref->table)] = std::move(candidates);
  }
  if (stats) stats->servers_contacted = 1 + remote_servers.size();

  std::vector<const sql::TableRef*> all_tables = stmt.AllTables();
  bool any_local = false;
  for (const sql::TableRef* ref : all_tables) {
    if (driver_.dictionary().HasTable(ref->table)) any_local = true;
  }

  // Whole-query forwarding: every table lives on one remote server.
  if (!any_local && remote_servers.size() == 1) {
    if (stats) {
      stats->tables = all_tables.size();
      stats->distributed = true;
    }
    if (cost) {
      cost->AddMs(total_lookup_ms);
      cost->AddMs(transport_->costs().connect_auth_ms);
    }
    // A failover target must host every missing table: intersect the
    // per-table lists, keeping the first table's order (the preferred
    // server is in all of them by construction).
    std::vector<std::string> candidates =
        table_candidates[ToLower(missing.front()->table)];
    for (const sql::TableRef* ref : missing) {
      const std::vector<std::string>& other =
          table_candidates[ToLower(ref->table)];
      candidates.erase(
          std::remove_if(candidates.begin(), candidates.end(),
                         [&](const std::string& url) {
                           return std::find(other.begin(), other.end(), url) ==
                                  other.end();
                         }),
          candidates.end());
    }
    std::string text = sql::RenderSelect(stmt, ClientDialect());
    return RemoteQueryFailover(candidates, missing.front()->table, text, cost,
                               stats, forward_depth, forward_path, cancel,
                               tenant);
  }

  // Mixed: fetch a partial per table reference (local tables through the
  // local driver, remote ones from their hosting server), merge here.
  if (stats) {
    stats->tables = all_tables.size();
    stats->distributed = true;
  }

  // Tables on the nullable side of a LEFT JOIN must be fetched whole
  // (see unity/planner.cc: pushdown there changes NULL-padding at merge).
  std::set<std::string> nullable_sides;
  for (const sql::Join& join : stmt.joins) {
    if (join.type == sql::JoinType::kLeft) {
      nullable_sides.insert(ToLower(join.table.EffectiveName()));
    }
  }

  // Pushable conjuncts: qualified entirely with one effective name.
  auto pushed_for = [&](const std::string& effective) -> sql::ExprPtr {
    if (nullable_sides.count(ToLower(effective))) return nullptr;
    std::vector<sql::ExprPtr> kept;
    for (const sql::Expr* conjunct : sql::SplitConjuncts(stmt.where.get())) {
      std::vector<const sql::ColumnRef*> refs;
      sql::CollectColumnRefs(*conjunct, refs);
      if (refs.empty()) continue;
      bool all_this_table = true;
      for (const sql::ColumnRef* ref : refs) {
        if (ref->table.empty() || !EqualsIgnoreCase(ref->table, effective)) {
          all_this_table = false;
          break;
        }
      }
      if (!all_this_table) continue;
      sql::ExprPtr copy = conjunct->Clone();
      // Strip the qualifier: the partial fetch addresses a single table.
      std::function<void(sql::Expr&)> strip = [&](sql::Expr& e) {
        if (e.kind == sql::Expr::Kind::kColumn) e.column_ref.table.clear();
        for (sql::ExprPtr& child : e.children) strip(*child);
      };
      strip(*copy);
      kept.push_back(std::move(copy));
    }
    return sql::ConjunctionOf(std::move(kept));
  };

  // One fetch per table reference, grouped by where it executes: the
  // local group plus one group per remote server. Groups run as parallel
  // branches (they hit different machines); within a group the fetches
  // are serial, and each group pays the fresh connect/auth of the
  // distributed path once per database/server.
  struct Fetch {
    std::string effective;
    std::string table;  // lower-case logical name
    std::string sql;
    bool local = false;
    std::string url;  // remote server when !local
  };
  std::vector<Fetch> local_group;
  std::map<std::string, std::vector<Fetch>> remote_groups;  // by server url
  std::set<std::string> local_connections;
  for (const sql::TableRef* ref : all_tables) {
    Fetch fetch;
    fetch.effective = ref->EffectiveName();
    fetch.table = ToLower(ref->table);
    sql::ExprPtr pushed = stmt.where ? pushed_for(fetch.effective) : nullptr;
    fetch.sql = "SELECT * FROM " + ToLower(ref->table);
    if (pushed) {
      fetch.sql += " WHERE " + sql::RenderExpr(*pushed, ClientDialect());
    }
    if (driver_.dictionary().HasTable(ref->table)) {
      fetch.local = true;
      for (const unity::TableBinding& b :
           driver_.dictionary().Locate(ref->table)) {
        local_connections.insert(b.connection);
        break;  // fresh connect charged for the replica actually used
      }
      local_group.push_back(std::move(fetch));
    } else {
      fetch.url = table_to_server[fetch.table];
      remote_groups[fetch.url].push_back(std::move(fetch));
    }
  }
  if (cost) cost->AddMs(transport_->costs().distribution_overhead_ms);

  std::vector<std::pair<std::string, ResultSet>> partials;
  std::vector<net::Cost> branch_costs;

  // Partial-results substitution for a failed fetch: an empty set with a
  // best-effort schema so the merge still binds (dictionary for local
  // tables, referenced columns otherwise).
  auto record_failed_fetch = [&](const Fetch& fetch, const Status& error,
                                 std::vector<std::pair<std::string, ResultSet>>*
                                     out) {
    std::vector<std::string> columns;
    if (fetch.local) {
      for (const unity::TableBinding& b :
           driver_.dictionary().Locate(fetch.table)) {
        for (const unity::ColumnBinding& col : b.columns) {
          columns.push_back(ToLower(col.logical));
        }
        break;
      }
    } else {
      columns = ReferencedColumns(stmt, fetch.effective);
    }
    if (stats) {
      ++stats->subqueries_failed;
      stats->subquery_errors.push_back(fetch.effective + ": " +
                                       error.ToString());
    }
    out->emplace_back(fetch.effective, EmptyPartial(std::move(columns)));
  };

  // Failed-fetch policy shared by the local and remote groups: cancelled
  // fetches follow partial_on_deadline, everything else partial_results
  // (same split as QueryLocal's branch resolution).
  auto substitutable = [&](const Status& error) {
    return error.code() == StatusCode::kDeadlineExceeded
               ? config_.partial_on_deadline
               : config_.partial_results;
  };

  if (!local_group.empty()) {
    net::Cost branch;
    branch.AddMs(transport_->costs().connect_auth_ms *
                 static_cast<double>(local_connections.size()));
    for (const Fetch& fetch : local_group) {
      if (cancel != nullptr) {
        Status live = cancel->Check();
        if (!live.ok() && !substitutable(live)) return live;
      }
      Result<ResultSet> partial = driver_.Query(fetch.sql, &branch, cancel);
      if (!partial.ok()) {
        if (!substitutable(partial.status())) return partial.status();
        record_failed_fetch(fetch, partial.status(), &partials);
        continue;
      }
      partials.emplace_back(fetch.effective, std::move(*partial));
    }
    branch_costs.push_back(branch);
  }
  for (const auto& [url, fetches] : remote_groups) {
    net::Cost branch;
    branch.AddMs(lookup_ms_by_server[url]);
    branch.AddMs(transport_->costs().connect_auth_ms);
    for (const Fetch& fetch : fetches) {
      Result<ResultSet> partial =
          RemoteQueryFailover(table_candidates[fetch.table], fetch.table,
                              fetch.sql, &branch, stats, forward_depth,
                              forward_path, cancel, tenant);
      if (!partial.ok()) {
        if (!substitutable(partial.status())) return partial.status();
        record_failed_fetch(fetch, partial.status(), &partials);
        continue;
      }
      partials.emplace_back(fetch.effective, std::move(*partial));
    }
    branch_costs.push_back(branch);
  }
  if (cost) cost->AddParallel(branch_costs);

  // Merge statement: original with table refs renamed to effective names.
  std::unique_ptr<sql::SelectStmt> merge_stmt = stmt.Clone();
  for (sql::TableRef& ref : merge_stmt->from) {
    ref.table = ref.EffectiveName();
    ref.alias.clear();
  }
  for (sql::Join& join : merge_stmt->joins) {
    join.table.table = join.table.EffectiveName();
    join.table.alias.clear();
  }
  // Same merge-memory bound as QueryLocal: the integrate step holds every
  // partial (local rows and remote transfers alike) in middleware memory,
  // plus the vectorized executor's columnar copy (~2x, see DESIGN.md §15).
  size_t merge_bytes = 0;
  for (const auto& partial : partials) merge_bytes += partial.second.WireSize();
  merge_bytes *= 2;
  GRIDDB_ASSIGN_OR_RETURN(AdmissionController::MemoryLease merge_lease,
                          admission_.ReserveMergeMemory(merge_bytes, tenant));
  GRIDDB_ASSIGN_OR_RETURN(
      ResultSet merged,
      unity::MergePartials(*merge_stmt, std::move(partials), cancel));
  if (cost) {
    cost->AddMs(transport_->costs().integrate_per_row_ms *
                static_cast<double>(merged.num_rows()));
  }
  return merged;
}

Status DataAccessService::CheckTenantGrants(
    const std::string& tenant, const std::vector<std::string>& tables) const {
  if (!config_.rbac) return Status::Ok();
  // Mart grants resolve through the dictionary: a grant on mart M covers
  // every logical table M hosts locally. Tables not registered here (RLS
  // fallback) resolve to no marts and need a table or wildcard grant.
  return config_.rbac->CheckSelect(
      tenant, tables, [this](const std::string& table) {
        std::vector<std::string> marts;
        for (const unity::TableBinding& binding :
             driver_.dictionary().Locate(table)) {
          marts.push_back(binding.database_name);
        }
        return marts;
      });
}

Result<ResultSet> DataAccessService::Query(const std::string& sql_text,
                                           QueryStats* stats,
                                           int forward_depth,
                                           const std::string& forward_path,
                                           QueryContext ctx) {
  QueriesCounter().Add(1);
  // Entry deadline: the tightest of the budget the caller shipped on the
  // wire (already in ctx.cancel, minted by the RPC handler) and this
  // server's own per-query cap.
  if (config_.default_deadline_ms > 0) {
    net::Network* network = transport_->network();
    if (!ctx.cancel.active()) ctx.cancel = CancelToken::Cancellable();
    ctx.cancel.TightenBudget([network] { return network->NowMs(); },
                             config_.default_deadline_ms);
  }
  const CancelToken* cancel = ctx.cancel.active() ? &ctx.cancel : nullptr;
  // Admission before any parse or planning work: a shed query costs O(1)
  // and carries a retry_after_ms hint, which is what keeps rejects orders
  // of magnitude cheaper than served queries under overload.
  Result<AdmissionController::Ticket> ticket =
      admission_.Admit(ctx.priority, cancel, ctx.tenant);
  if (!ticket.ok()) {
    QueryErrorsCounter().Add(1);
    return ticket.status();
  }
  obs::Span span = tracer_.StartSpan("dataaccess.query");
  span.AddAttr("sql", sql_text);
  net::Cost cost;
  cost.AddMs(transport_->costs().query_parse_ms);
  auto finish = [&](Result<ResultSet> result) -> Result<ResultSet> {
    QueryMsHistogram().Observe(cost.total_ms());
    if (!result.ok()) {
      QueryErrorsCounter().Add(1);
      if (result.status().code() == StatusCode::kDeadlineExceeded) {
        DeadlineExceededCounter().Add(1);
      }
      if (span.active()) span.SetError(result.status().ToString());
    } else if (span.active()) {
      span.AddAttr("rows", std::to_string(result->num_rows()));
      span.AddAttr("cost_ms", std::to_string(cost.total_ms()));
    }
    const uint64_t trace_id = span.context().trace_id;
    span.End();
    // Slow-query log: once the root span has ended the whole tree is in
    // the finished buffer, so the dump shows every stage of this query.
    if (config_.slow_query_ms > 0 &&
        cost.total_ms() >= config_.slow_query_ms) {
      SlowQueriesCounter().Add(1);
      GRIDDB_LOG(Warn) << "slow query (" << cost.total_ms() << " ms >= "
                       << config_.slow_query_ms << " ms) on '"
                       << config_.server_name << "': " << sql_text
                       << (tracer_.enabled()
                               ? "\n" + tracer_.FormatTrace(trace_id)
                               : std::string());
    }
    return result;
  };

  // Stats are always collected when the cache is on (the result tier
  // needs response-shape metadata to replay on a hit).
  QueryStats local_stats;
  QueryStats* st = stats ? stats : &local_stats;

  const bool use_cache = config_.query_cache;
  std::string fingerprint;
  std::vector<std::string> ref_tables;
  std::string result_key;
  uint64_t key_epoch = 0;

  // Whole-query result-cache probe: key = fingerprint + schema epoch +
  // the current content version of every referenced table. A hit replays
  // the recorded response shape and skips planning and execution
  // entirely; a miss leaves `result_key` set for the post-execution
  // insert.
  auto try_result_cache = [&]() -> std::optional<Result<ResultSet>> {
    key_epoch = driver_.dictionary().epoch();
    result_key = cache_.ResultKey(fingerprint, key_epoch, ref_tables);
    obs::Span cache_span = tracer_.StartSpan("cache.result.lookup");
    cache::CachedResult hit = cache_.LookupResult(result_key);
    if (cache_span.active()) {
      cache_span.AddAttr("outcome", hit ? "hit" : "miss");
    }
    cache_span.End();
    if (!hit) {
      ResultCacheMissesCounter().Add(1);
      return std::nullopt;
    }
    ResultCacheHitsCounter().Add(1);
    ++st->result_cache_hits;
    st->distributed = hit.meta.distributed;
    st->databases = hit.meta.databases;
    st->tables = hit.meta.tables;
    st->rows = hit.result->num_rows();
    st->simulated_ms = cost.total_ms();
    return Result<ResultSet>(ResultSet(*hit.result));
  };

  if (use_cache) {
    // Text memo: a byte-identical repeat query resolves its fingerprint
    // without touching the lexer or parser.
    if (auto memo = cache_.LookupText(sql_text)) {
      fingerprint = std::move(memo->fingerprint);
      ref_tables = std::move(memo->tables);
      // Grants gate every cache serve: a result cached under tenant A's
      // request is never replayed to a tenant whose CURRENT grants do not
      // cover the referenced tables, and a revocation takes effect on the
      // next request because the check reads the live snapshot.
      if (Status grants = CheckTenantGrants(ctx.tenant, ref_tables);
          !grants.ok()) {
        return finish(grants);
      }
      if (auto hit = try_result_cache()) return finish(std::move(*hit));
    }
  }

  auto parsed = sql::ParseSelect(sql_text, ClientDialect());
  if (!parsed.ok()) return finish(parsed.status());
  std::unique_ptr<sql::SelectStmt> stmt = std::move(*parsed);
  if (cancel != nullptr) {
    Status live = cancel->Check();
    if (!live.ok()) return finish(live);
  }

  // Plan-time grant enforcement: every referenced table must be covered
  // by the requesting tenant's grants before any result-cache serve, any
  // plan is built, or any sub-query RPC fans out. A denial is permanent
  // (kPermissionDenied, never retried) and costs no execution work.
  if (config_.rbac) {
    std::vector<std::string> grant_tables;
    for (const sql::TableRef* ref : stmt->AllTables()) {
      grant_tables.push_back(ToLower(ref->table));
    }
    if (Status grants = CheckTenantGrants(ctx.tenant, grant_tables);
        !grants.ok()) {
      return finish(grants);
    }
  }

  if (use_cache && fingerprint.empty()) {
    fingerprint = sql::FingerprintSelect(*stmt);
    for (const sql::TableRef* ref : stmt->AllTables()) {
      ref_tables.push_back(ToLower(ref->table));
    }
    std::sort(ref_tables.begin(), ref_tables.end());
    ref_tables.erase(std::unique(ref_tables.begin(), ref_tables.end()),
                     ref_tables.end());
    cache_.InsertText(sql_text, {fingerprint, ref_tables});
    if (auto hit = try_result_cache()) return finish(std::move(*hit));
  }

  std::vector<const sql::TableRef*> missing;
  for (const sql::TableRef* ref : stmt->AllTables()) {
    if (!driver_.dictionary().HasTable(ref->table)) missing.push_back(ref);
  }

  Result<ResultSet> result =
      missing.empty()
          ? QueryLocal(*stmt, fingerprint, &cost, st, cancel, ctx.tenant)
          : QueryWithRemote(*stmt, missing, &cost, st, forward_depth,
                            forward_path, cancel, ctx.tenant);
  // A plan invalidated by a concurrent schema change is rebuilt against
  // the fresh dictionary, a bounded number of times (a schema churning
  // faster than we can plan is a real failure, not a retry candidate).
  for (int replan = 0;
       replan < 2 && !result.ok() && IsEpochStale(result.status());
       ++replan) {
    ++st->replans;
    ReplansCounter().Add(1);
    result = missing.empty()
                 ? QueryLocal(*stmt, fingerprint, &cost, st, cancel,
                              ctx.tenant)
                 : QueryWithRemote(*stmt, missing, &cost, st, forward_depth,
                                   forward_path, cancel, ctx.tenant);
  }
  if (!result.ok()) {
    // Stale-while-revalidate: with every replica down (or quarantined, or
    // behind an open breaker) an opted-in deployment serves the last
    // known good result of this fingerprint — tagged stale=true so the
    // client can tell — instead of an error. Never spans a schema change.
    if (use_cache && config_.serve_stale_results &&
        IsStaleServable(result.status().code())) {
      if (cache::CachedResult stale =
              cache_.LastKnownGood(fingerprint, key_epoch)) {
        GRIDDB_LOG(Warn) << "serving stale cached result for query on '"
                         << config_.server_name
                         << "' after: " << result.status().ToString();
        st->stale = true;
        st->distributed = stale.meta.distributed;
        st->databases = stale.meta.databases;
        st->tables = stale.meta.tables;
        st->rows = stale.result->num_rows();
        st->simulated_ms = cost.total_ms();
        return finish(Result<ResultSet>(ResultSet(*stale.result)));
      }
    }
    return finish(result.status());
  }
  // Insert under the pre-execution key: if an epoch bump or digest change
  // landed mid-flight the entry is simply never hit again. Responses
  // assembled from failed branches (partial results) or truncated by a
  // cancellation / deadline expiry are not cacheable — replaying them
  // would turn a one-off degradation into a sticky wrong answer.
  const bool clean_execution = st->subqueries_failed == 0 &&
                               st->cancelled_subqueries == 0 &&
                               !ctx.cancel.cancelled();
  if (use_cache && !result_key.empty()) {
    cache::ResultMeta meta;
    meta.distributed = st->distributed;
    meta.databases = st->databases;
    meta.tables = st->tables;
    // InsertResult refuses tagged entries, so an unclean execution never
    // reaches the LRU — not even as a last-known-good candidate.
    meta.non_cacheable = !clean_execution;
    cache_.InsertResult(result_key, fingerprint, key_epoch, ref_tables,
                        std::make_shared<ResultSet>(*result), meta);
  }
  st->rows = result->num_rows();
  st->simulated_ms = cost.total_ms();
  return finish(std::move(result));
}

// ---------- stats <-> RPC ----------

rpc::XmlRpcValue StatsToRpc(const QueryStats& stats) {
  rpc::XmlRpcStruct out;
  out["simulated_ms"] = stats.simulated_ms;
  out["distributed"] = stats.distributed;
  out["used_rls"] = stats.used_rls;
  out["servers_contacted"] = static_cast<int64_t>(stats.servers_contacted);
  out["databases"] = static_cast<int64_t>(stats.databases);
  out["tables"] = static_cast<int64_t>(stats.tables);
  out["rows"] = static_cast<int64_t>(stats.rows);
  out["pool_ral_subqueries"] = static_cast<int64_t>(stats.pool_ral_subqueries);
  out["jdbc_subqueries"] = static_cast<int64_t>(stats.jdbc_subqueries);
  // Recovery counters are encoded sparsely: a healthy query serializes
  // exactly as it did before fault tolerance existed, so the simulated
  // transfer cost of a fault-free response is unchanged (StatsFromRpc
  // treats missing members as zero).
  if (stats.retries) out["retries"] = static_cast<int64_t>(stats.retries);
  if (stats.failovers) {
    out["failovers"] = static_cast<int64_t>(stats.failovers);
  }
  if (stats.subqueries_failed) {
    out["subqueries_failed"] = static_cast<int64_t>(stats.subqueries_failed);
  }
  if (stats.breaker_skips) {
    out["breaker_skips"] = static_cast<int64_t>(stats.breaker_skips);
  }
  if (stats.replans) out["replans"] = static_cast<int64_t>(stats.replans);
  if (stats.cancelled_subqueries) {
    out["cancelled_subqueries"] =
        static_cast<int64_t>(stats.cancelled_subqueries);
  }
  // Cache counters follow the same sparse rule: a cache-cold (or
  // cache-disabled) response serializes byte-identically to the seed.
  if (stats.plan_cache_hits) {
    out["plan_cache_hits"] = static_cast<int64_t>(stats.plan_cache_hits);
  }
  if (stats.result_cache_hits) {
    out["result_cache_hits"] = static_cast<int64_t>(stats.result_cache_hits);
  }
  if (stats.subquery_cache_hits) {
    out["subquery_cache_hits"] =
        static_cast<int64_t>(stats.subquery_cache_hits);
  }
  if (stats.stale) out["stale"] = true;
  if (!stats.subquery_errors.empty()) {
    rpc::XmlRpcArray errors;
    for (const std::string& line : stats.subquery_errors) {
      errors.emplace_back(line);
    }
    out["subquery_errors"] = std::move(errors);
  }
  return out;
}

QueryStats StatsFromRpc(const rpc::XmlRpcValue& value) {
  QueryStats stats;
  auto get_int = [&](const char* key, size_t* out) {
    auto member = value.Member(key);
    if (member.ok()) {
      auto v = (*member)->AsInt();
      if (v.ok()) *out = static_cast<size_t>(*v);
    }
  };
  auto member = value.Member("simulated_ms");
  if (member.ok()) {
    auto v = (*member)->AsDouble();
    if (v.ok()) stats.simulated_ms = *v;
  }
  auto distributed = value.Member("distributed");
  if (distributed.ok()) {
    auto v = (*distributed)->AsBool();
    if (v.ok()) stats.distributed = *v;
  }
  auto used_rls = value.Member("used_rls");
  if (used_rls.ok()) {
    auto v = (*used_rls)->AsBool();
    if (v.ok()) stats.used_rls = *v;
  }
  get_int("servers_contacted", &stats.servers_contacted);
  get_int("databases", &stats.databases);
  get_int("tables", &stats.tables);
  get_int("rows", &stats.rows);
  get_int("pool_ral_subqueries", &stats.pool_ral_subqueries);
  get_int("jdbc_subqueries", &stats.jdbc_subqueries);
  get_int("retries", &stats.retries);
  get_int("failovers", &stats.failovers);
  get_int("subqueries_failed", &stats.subqueries_failed);
  get_int("breaker_skips", &stats.breaker_skips);
  get_int("replans", &stats.replans);
  get_int("cancelled_subqueries", &stats.cancelled_subqueries);
  get_int("plan_cache_hits", &stats.plan_cache_hits);
  get_int("result_cache_hits", &stats.result_cache_hits);
  get_int("subquery_cache_hits", &stats.subquery_cache_hits);
  auto stale = value.Member("stale");
  if (stale.ok()) {
    auto v = (*stale)->AsBool();
    if (v.ok()) stats.stale = *v;
  }
  auto errors = value.Member("subquery_errors");
  if (errors.ok()) {
    auto list = (*errors)->AsArray();
    if (list.ok()) {
      for (const rpc::XmlRpcValue& line : **list) {
        auto s = line.AsString();
        if (s.ok()) stats.subquery_errors.push_back(*s);
      }
    }
  }
  return stats;
}

// ---------- spans <-> RPC ----------

rpc::XmlRpcValue SpansToRpc(const std::vector<obs::SpanRecord>& spans) {
  rpc::XmlRpcArray out;
  out.reserve(spans.size());
  for (const obs::SpanRecord& span : spans) {
    rpc::XmlRpcStruct record;
    record["trace"] = SpanHexU64(span.trace_id);
    record["span"] = SpanHexU64(span.span_id);
    record["parent"] = SpanHexU64(span.parent_span_id);
    record["name"] = span.name;
    record["host"] = span.host;
    record["start_ms"] = span.start_ms;
    record["dur_ms"] = span.duration_ms;
    if (span.error) record["error"] = span.note;
    out.emplace_back(std::move(record));
  }
  return out;
}

std::vector<obs::SpanRecord> SpansFromRpc(const rpc::XmlRpcValue& value) {
  std::vector<obs::SpanRecord> spans;
  auto list = value.AsArray();
  if (!list.ok()) return spans;
  auto get_string = [](const rpc::XmlRpcValue& v, const char* key) {
    auto member = v.Member(key);
    if (!member.ok()) return std::string();
    auto s = (*member)->AsString();
    return s.ok() ? *s : std::string();
  };
  auto get_double = [](const rpc::XmlRpcValue& v, const char* key) {
    auto member = v.Member(key);
    if (!member.ok()) return 0.0;
    auto d = (*member)->AsDouble();
    return d.ok() ? *d : 0.0;
  };
  for (const rpc::XmlRpcValue& entry : **list) {
    obs::SpanRecord span;
    span.trace_id = SpanParseHexU64(get_string(entry, "trace"));
    span.span_id = SpanParseHexU64(get_string(entry, "span"));
    span.parent_span_id = SpanParseHexU64(get_string(entry, "parent"));
    span.name = get_string(entry, "name");
    span.host = get_string(entry, "host");
    span.start_ms = get_double(entry, "start_ms");
    span.duration_ms = get_double(entry, "dur_ms");
    auto error = entry.Member("error");
    if (error.ok()) {
      span.error = true;
      auto note = (*error)->AsString();
      if (note.ok()) span.note = *note;
    }
    if (span.trace_id == 0 || span.span_id == 0) continue;  // malformed
    spans.push_back(std::move(span));
  }
  return spans;
}

}  // namespace griddb::core
