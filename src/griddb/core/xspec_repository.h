// XSpec file repository (supports the plug-in database feature, §4.10).
//
// "The server is provided the URL of the databases' XSpec file ... The
// server then downloads the file, parses it, and retrieves the metadata."
// In the prototype those URLs point at a web server; here the repository
// serves registered in-memory documents for http(s):// URLs — simulating
// that web server — and reads the local filesystem for file:// URLs.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "griddb/util/status.h"

namespace griddb::core {

class XSpecRepository {
 public:
  /// Publishes a document at an http(s) URL (tooling side). Each Put
  /// stamps the repository's monotonically increasing epoch on the
  /// document and returns it, so consumers can order schema versions.
  uint64_t Put(const std::string& url, std::string content);
  bool Has(const std::string& url) const;

  /// "Downloads" a URL: registered content for http(s)://, filesystem
  /// reads for file:///path.
  Result<std::string> Fetch(const std::string& url) const;

  /// Epoch of the most recent Put; 0 when nothing was ever published.
  uint64_t epoch() const;
  /// Epoch stamped on the document at `url` when it was last Put.
  Result<uint64_t> EpochOf(const std::string& url) const;

 private:
  mutable std::mutex mu_;
  uint64_t epoch_ = 0;
  struct Document {
    std::string content;
    uint64_t epoch = 0;
  };
  std::map<std::string, Document> documents_;
};

}  // namespace griddb::core
