// Anti-entropy replica verification (robustness layer over §4.3's
// warehouse -> mart materialization).
//
// Materialized mart replicas drift: a partial load, bit rot, or a writer
// bypassing the ETL path leaves a mart answering queries with rows that
// no longer match the warehouse. The monitor sweeps registered replicas,
// comparing each mart copy's order-insensitive content digest
// (storage/digest.h) against the warehouse-side reference. A divergent
// replica is quarantined in the DataAccessService — the planner's
// replica filter stops routing queries to it, so reads fail over to
// healthy replicas — then repaired (re-materialized), re-verified and
// reinstated.
//
// The monitor reaches the warehouse through callbacks rather than
// holding warehouse types itself, so the core layer stays independent of
// the warehouse module; tests and servers wire the callbacks to
// warehouse::ViewContentDigest / warehouse::RefreshView.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "griddb/core/data_access_service.h"
#include "griddb/storage/digest.h"
#include "griddb/util/status.h"

namespace griddb::core {

/// Sweep counters, surfaced like QueryStats (sparse RPC encoding: only
/// non-zero counters serialize, so an all-healthy sweep's report is
/// byte-identical to one from before the monitor existed).
struct IntegrityStats {
  size_t sweeps = 0;
  size_t replicas_checked = 0;
  size_t divergences = 0;       ///< Digest mismatches found.
  size_t quarantines = 0;       ///< Replicas pulled out of routing.
  size_t repairs = 0;           ///< Successful re-materializations.
  size_t repair_failures = 0;   ///< Repairs that failed or still diverge.
  size_t reinstated = 0;        ///< Replicas put back into routing.
};

class IntegrityMonitor {
 public:
  /// Produces the authoritative (warehouse-side) digest of a replica's
  /// source relation.
  using DigestFn = std::function<Result<storage::TableDigest>()>;
  /// Repairs a divergent replica (re-materialization).
  using RepairFn = std::function<Status()>;

  struct ReplicaSpec {
    std::string logical_table;   ///< Logical name in the data dictionary.
    std::string database_name;   ///< Mart database holding the replica.
    DigestFn reference_digest;
    RepairFn repair;             ///< Optional; divergence without a repair
                                 ///< leaves the replica quarantined.
  };

  explicit IntegrityMonitor(DataAccessService* service) : service_(service) {}

  void RegisterReplica(ReplicaSpec spec);

  /// Verifies one replica; on divergence runs the quarantine -> repair ->
  /// re-verify -> reinstate cycle. A replica found quarantined but now
  /// matching its reference is reinstated (an operator may have repaired
  /// it out of band).
  Status CheckReplica(const ReplicaSpec& spec);

  /// Verifies every registered replica. Divergences do not stop the
  /// sweep; the first non-OK outcome is returned after all replicas ran.
  Status SweepOnce();

  const IntegrityStats& stats() const { return stats_; }
  size_t replica_count() const { return specs_.size(); }

 private:
  DataAccessService* service_;
  std::vector<ReplicaSpec> specs_;
  IntegrityStats stats_;
};

/// Sparse RPC encoding of IntegrityStats (QueryStats-style: zero-valued
/// counters are omitted).
rpc::XmlRpcValue IntegrityStatsToRpc(const IntegrityStats& stats);
IntegrityStats IntegrityStatsFromRpc(const rpc::XmlRpcValue& value);

}  // namespace griddb::core
