// Multi-tenant RBAC catalog: users, roles, SELECT grants.
//
// The paper's JClarens endpoint serves many physics user communities
// through one federation entry point; this catalog decides which logical
// tables each community (tenant) may read. Grants follow the classic
// grantee model: a grant names a *grantee* — a user or a role — and a
// user's effective privileges are the union of its own grants and those
// of every role reachable through role membership (roles may be granted
// to roles, giving inheritance chains like analyst -> cms -> public).
//
// Two grant shapes exist, both SELECT-only (the data access layer is a
// read path):
//   - a table grant on one logical table ("*" = every table);
//   - a mart grant on a database (mart) name, covering every logical
//     table that mart hosts. Mart resolution is supplied by the caller
//     at check time (the Unity dictionary knows which marts host a
//     table; this catalog deliberately does not).
//
// Concurrency model — copy-on-write snapshots under a two-level
// (hierarchical) read-write locking scheme, so concurrent grant DDL
// never blocks the query path:
//   - DDL is serialized by `ddl_mu_` (the upper, exclusive level). Each
//     mutation edits the builder state, resolves every user's effective
//     privilege set into a fresh immutable Snapshot, and publishes it.
//   - Publication swaps a shared_ptr under `snap_mu_` (the lower
//     read-write level). The query path takes a shared lock only long
//     enough to copy the pointer — a handful of instructions — then
//     evaluates grants against immutable data with no lock held at all.
// Resolving the transitive role closure at publish time (not per check)
// keeps CheckSelect O(log n) per table on the hot path.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <vector>

#include "griddb/util/status.h"

namespace griddb::core {

class RbacCatalog {
 public:
  /// The tenant identity of requests that carry no <tenant> wire header.
  /// Operators grant it like any other user ("CreateUser(kAnonymousTenant)"
  /// + grants) to keep legacy anonymous traffic working under RBAC.
  static constexpr const char* kAnonymousTenant = "anonymous";

  /// Wildcard table grant: SELECT on every logical table.
  static constexpr const char* kAllTables = "*";

  RbacCatalog() = default;
  RbacCatalog(const RbacCatalog&) = delete;
  RbacCatalog& operator=(const RbacCatalog&) = delete;

  // ---- grant DDL (serialized; never blocks CheckSelect) ----

  Status CreateUser(const std::string& user);
  Status CreateRole(const std::string& role);
  Status DropUser(const std::string& user);
  Status DropRole(const std::string& role);

  /// Makes `grantee` (a user or a role) a member of `role`: the grantee
  /// inherits every privilege the role (transitively) holds. Rejects
  /// membership cycles with kInvalidArgument.
  Status AssignRole(const std::string& grantee, const std::string& role);
  Status RevokeRole(const std::string& grantee, const std::string& role);

  /// SELECT on one logical table (case-insensitive; kAllTables = all).
  Status GrantTable(const std::string& grantee,
                    const std::string& logical_table);
  Status RevokeTable(const std::string& grantee,
                     const std::string& logical_table);

  /// SELECT on every table hosted by the named mart (database).
  Status GrantMart(const std::string& grantee,
                   const std::string& database_name);
  Status RevokeMart(const std::string& grantee,
                    const std::string& database_name);

  // ---- query path (lock-free after a pointer copy) ----

  /// Resolves a logical table to the mart (database) names hosting it;
  /// empty for tables not registered locally.
  using MartsOf = std::function<std::vector<std::string>(const std::string&)>;

  /// kPermissionDenied naming the first uncovered table unless `tenant`
  /// (empty = kAnonymousTenant) holds SELECT — directly or through role
  /// inheritance, by table grant, wildcard, or a mart grant covering a
  /// mart `marts_of` reports for the table — on every entry of `tables`
  /// (lower-case logical names). An unknown tenant is denied outright.
  Status CheckSelect(const std::string& tenant,
                     const std::vector<std::string>& tables,
                     const MartsOf& marts_of) const;

  /// True when `tenant` (empty = kAnonymousTenant) is a known user in the
  /// current snapshot. Same lock-free read path as CheckSelect. The
  /// admission controller uses this to gate dedicated-lane creation, so
  /// attacker-minted tenant names cannot grow permanent per-tenant state.
  bool KnownTenant(const std::string& tenant) const;

  /// Bumped on every successful DDL mutation (snapshot republish).
  uint64_t generation() const;

 private:
  /// A user's fully resolved privileges, computed at publish time.
  struct Effective {
    bool all_tables = false;
    std::set<std::string> tables;  // lower-case logical names
    std::set<std::string> marts;   // database names
  };
  struct Snapshot {
    std::map<std::string, Effective> users;
    uint64_t generation = 0;
  };

  /// True when `target` is reachable from `from` via role membership
  /// (builder state; caller holds ddl_mu_).
  bool ReachesLocked(const std::string& from, const std::string& target) const;
  Status RequireGranteeLocked(const std::string& grantee) const;
  /// Resolves the builder state into a fresh snapshot and publishes it.
  void PublishLocked();

  mutable std::mutex ddl_mu_;  // upper level: serializes grant DDL
  // Builder state (guarded by ddl_mu_).
  std::set<std::string> users_;
  std::set<std::string> roles_;
  std::map<std::string, std::set<std::string>> member_of_;
  std::map<std::string, std::set<std::string>> table_grants_;
  std::map<std::string, std::set<std::string>> mart_grants_;
  uint64_t generation_ = 0;

  mutable std::shared_mutex snap_mu_;  // lower level: snapshot publication
  std::shared_ptr<const Snapshot> snap_;
};

}  // namespace griddb::core
