// Crash-safe asynchronous batch-query service (CasJobs-style).
//
// The interactive mart/warehouse pipeline cannot serve the long
// ntuple-scan workload grid analysis generates: under admission control
// those queries either shed or monopolize interactive slots. This module
// gives them their own lane. A client submits a query and gets a job id
// back immediately (dataaccess.batchSubmit); a BatchJobManager executes
// the job in the background at QueryPriority::kBatch — strictly out of
// the admission controller's idle capacity — and materializes the result
// into the tenant's scratch mart ("MyDB"), where it is fetchable in
// pages (dataaccess.batchFetch) and usable as a source table for
// follow-up queries.
//
// Robustness contract (the reason this module exists):
//  - Every state transition is written ahead to an append-only job
//    journal (util/journal.h: framed, digest-verified, fsync'd records)
//    BEFORE it takes effect, so a coordinator crash at any instant
//    loses at most the work since the last durable checkpoint.
//  - Scans are checkpointed per row-chunk: a pageable query runs as a
//    sequence of LIMIT/OFFSET sub-queries (the embedded engines are
//    deterministic, so a resume sees the same rows in the same order —
//    the same premise the resumable ETL pipeline rests on), each
//    completed chunk is appended to a digest-verified stage file
//    (storage/stage_file v2 frames) and then journaled. Non-pageable
//    queries (aggregates, DISTINCT, GROUP BY, ORDER BY, explicit
//    LIMIT/OFFSET) execute single-shot and are chunked at
//    materialization time instead.
//  - Recover() replays the journal on restart: terminal jobs (done /
//    failed / cancelled) stay terminal and done jobs get their scratch
//    tables rebuilt from the stage files; interrupted jobs are
//    re-enqueued and resume at the first missing chunk — zero sub-query
//    work after the last durable checkpoint is repeated. A torn journal
//    tail (crash mid-append) is dropped AND the file is truncated back
//    to the intact prefix before anything appends again — appends are
//    O_APPEND, so records written after an unrepaired tear would be
//    invisible to every later replay. Replay is idempotent.
//  - Transient sub-query failures retry under rpc::RetryPolicy;
//    admission sheds (kResourceExhausted: the cluster has no idle
//    capacity right now) are scheduling waits, not failures — the job
//    backs off (honouring the shed's retry-after hint) and tries again
//    until capacity frees up or it is cancelled.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "griddb/core/data_access_service.h"
#include "griddb/engine/database.h"
#include "griddb/rpc/server.h"
#include "griddb/util/cancellation.h"
#include "griddb/util/journal.h"
#include "griddb/util/status.h"

namespace griddb::core {

struct BatchConfig {
  /// Directory holding the job journal and per-job stage files. Empty =
  /// batch service disabled (the seed behaviour: submit RPCs fail with
  /// kUnavailable and no threads or files are created).
  std::string journal_dir;
  /// Rows per checkpointed chunk: the unit of durable progress. Smaller
  /// chunks lose less work to a crash but journal more often.
  size_t chunk_rows = 512;
  /// Max rows one dataaccess.batchFetch page returns.
  size_t fetch_page_rows = 1024;
  /// Background worker threads (= jobs making progress concurrently).
  size_t workers = 2;
  /// Retry behaviour for transient sub-query failures (kUnavailable,
  /// kTimeout, kCorruption). Admission sheds are waited out separately
  /// and do not consume these attempts.
  rpc::RetryPolicy retry = rpc::RetryPolicy::Default();
  /// Real-time backoff (ms) between admission-shed reattempts when the
  /// shed carries no retry-after hint. Batch workers are real threads
  /// below the virtual clock, so these waits are wall-clock.
  double shed_backoff_ms = 2.0;
  /// Real-time backoff (ms) before a job paused by a storage failure
  /// (kIoError: ENOSPC, torn write, unwritable journal) is requeued.
  /// Storage faults park jobs instead of failing them — disks fill and
  /// come back; the work already checkpointed must not be thrown away.
  double io_retry_backoff_ms = 5.0;
  /// Start workers inside the JClarensServer constructor (the production
  /// behaviour: recovered jobs resume with no client traffic). Tests and
  /// embedders that must register source databases first set this false
  /// and call BatchJobManager::Start() once the world is wired.
  bool autostart = true;

  bool enabled() const { return !journal_dir.empty(); }
};

enum class BatchJobState { kQueued, kRunning, kDone, kFailed, kCancelled };

const char* BatchJobStateName(BatchJobState state) noexcept;
bool IsTerminal(BatchJobState state) noexcept;

/// Snapshot of one job, as served by dataaccess.batchPoll.
struct BatchJobInfo {
  uint64_t id = 0;
  std::string tenant;
  std::string sql;
  BatchJobState state = BatchJobState::kQueued;
  size_t chunks_done = 0;
  /// Total chunk count; 0 while unknown (scan still running).
  size_t total_chunks = 0;
  bool total_known = false;
  size_t rows = 0;           ///< Rows durably checkpointed so far.
  std::string error;         ///< Failure reason (kFailed).
  std::string scratch_mart;  ///< Tenant scratch database name.
  std::string result_table;  ///< Logical result table ("batch_<id>").
  bool recovered = false;    ///< Resumed by Recover() after a restart.
  /// Times the job was parked back to queued by a storage failure
  /// (kIoError) instead of being failed. Never causes kFailed: storage
  /// faults are ridden out, not surfaced to the submitter.
  size_t io_pauses = 0;
};

class BatchJobManager {
 public:
  /// `service` executes sub-queries and hosts scratch-mart registration;
  /// `catalog` is the grid-wide connection-string catalog the scratch
  /// databases are added to. Neither is owned. Call Recover() (replays
  /// the journal) then Start() (spawns workers) after construction.
  BatchJobManager(DataAccessService* service, ral::DatabaseCatalog* catalog,
                  BatchConfig config);
  ~BatchJobManager();

  BatchJobManager(const BatchJobManager&) = delete;
  BatchJobManager& operator=(const BatchJobManager&) = delete;

  /// Replays the job journal: rebuilds job state, restores done jobs'
  /// scratch tables from their digest-verified stage files, re-enqueues
  /// interrupted jobs at their last durable checkpoint. Idempotent —
  /// replaying an already-recovered journal changes nothing. A torn
  /// tail record (crash mid-append) is dropped, not an error.
  Status Recover();

  /// Spawns the worker threads. No-op when already started or disabled.
  void Start();

  /// Stops workers (joins them) promptly: a running scan finishes its
  /// current chunk (or abandons its current shed/retry wait) and the
  /// job returns to queued state — no terminal record is written, so a
  /// later Start() or a restart resumes it from its last durable
  /// checkpoint.
  void Stop();

  // ---- the RPC surface (tenant = the authenticated caller) ----

  /// Journals and enqueues a job; returns its id. The returned id is
  /// durable: once Submit returns, a crash cannot lose the job.
  Result<uint64_t> Submit(const std::string& tenant, const std::string& sql);

  /// Job status. Jobs are visible only to their submitting tenant.
  Result<BatchJobInfo> Poll(const std::string& tenant, uint64_t id) const;

  /// Cancels a queued or running job (durable: journaled before it takes
  /// effect). Terminal states are stable: cancelling a done/failed job
  /// fails with kFailedPrecondition and changes nothing.
  Status Cancel(const std::string& tenant, uint64_t id);

  /// One page of a done job's materialized result (page is 0-based;
  /// config.fetch_page_rows rows per page). The page past the end
  /// returns an empty row set.
  Result<storage::ResultSet> Fetch(const std::string& tenant, uint64_t id,
                                   size_t page);

  /// Blocks until `id` reaches a terminal state (test/bench helper);
  /// false on timeout.
  bool WaitForTerminal(uint64_t id, double timeout_sec);

  const BatchConfig& config() const { return config_; }
  size_t queue_depth() const;

  // ---- crash-injection seam (tests and the CI crash sweep) ----
  //
  // Called at named points of the checkpoint protocol:
  //   "staged"      — chunk appended to the stage file, not yet journaled
  //   "checkpoint"  — checkpoint record journaled
  //   "total"       — total record journaled (scan finished)
  //   "terminal"    — terminal state record journaled
  // A hook that calls SimulateCrash() freezes the manager exactly as a
  // process kill would: no further journal or stage writes happen, and
  // workers abandon their jobs. The on-disk state is then whatever the
  // crash left — the input Recover() must handle.
  using CrashHook = std::function<void(const char* point, uint64_t job_id,
                                       size_t chunk)>;
  void set_crash_hook(CrashHook hook);
  /// Every crash-point name CrashPoint() can fire, sorted. The single
  /// registry chaos schedules, the GRIDDB_CRASH_POINT sweep and the
  /// dataaccess.crashPoints debug RPC enumerate — so schedules and docs
  /// cannot drift from the code (CrashPoint asserts membership).
  static const std::vector<std::string>& CrashPointNames();
  void SimulateCrash() { crashed_.store(true, std::memory_order_release); }
  bool crashed() const { return crashed_.load(std::memory_order_acquire); }

 private:
  struct Job {
    BatchJobInfo info;
    size_t chunk_rows = 0;         ///< Chunk size journaled at submit.
    CancelToken cancel = CancelToken::Cancellable();
    /// Checkpoint digests by chunk id (journal truth; stage frames are
    /// verified against these on resume).
    std::map<size_t, std::string> chunk_md5;
    std::map<size_t, size_t> chunk_row_counts;
  };

  // Journal append helpers (all no-ops returning kUnavailable once
  // SimulateCrash() fired, so a "dead" manager cannot touch disk).
  Status JournalAppend(const std::string& payload);
  Status JournalSubmit(const Job& job);
  Status JournalCheckpoint(uint64_t id, size_t chunk, size_t rows,
                           const std::string& md5);
  Status JournalTotal(uint64_t id, size_t chunks, size_t rows);
  Status JournalTerminal(uint64_t id, BatchJobState state,
                         const std::string& error);

  void WorkerLoop();
  /// Runs (or resumes) one job end to end; owns its state transitions.
  void RunJob(uint64_t id);
  /// The checkpointed scan: pages for pageable statements, single-shot +
  /// chunked materialization otherwise. Returns the terminal status.
  Status RunScan(Job& job);
  /// One sub-query through the service at batch priority, waiting out
  /// admission sheds and retrying transient failures per config.retry.
  Result<storage::ResultSet> RunSubQuery(Job& job, const std::string& sql);
  /// Wall-clock wait of `ms` used by RunSubQuery's backoff loops,
  /// interruptible by Stop(), SimulateCrash() and job cancellation so
  /// shutdown never sits out a full backoff (or a perpetual shed loop).
  void InterruptibleWait(Job& job, double ms);
  /// Non-blocking stop probe for scan/wait loops.
  bool stop_requested() const {
    return stopping_.load(std::memory_order_acquire);
  }

  /// Ensures the tenant's scratch database exists, is in the catalog and
  /// is registered with the service (+ RBAC mart grant when configured).
  Result<engine::Database*> EnsureScratchMart(const std::string& tenant);
  /// Loads every journaled chunk of `job`'s stage file into its scratch
  /// result table, verifying frame digests against the journal. Returns
  /// the first chunk id NOT restored (= where the scan resumes).
  Result<size_t> MaterializeCheckpointed(Job& job, engine::Database* db);
  /// Publishes the finished result table into the service dictionary.
  Status PublishResultTable(Job& job);

  std::string StagePath(uint64_t id) const;
  std::string ScratchMartName(const std::string& tenant) const;

  void CrashPoint(const char* point, uint64_t job_id, size_t chunk);

  DataAccessService* service_;
  ral::DatabaseCatalog* catalog_;
  const BatchConfig config_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;      ///< Wakes workers (queue/stop).
  mutable std::condition_variable done_cv_;  ///< Wakes WaitForTerminal.
  std::map<uint64_t, Job> jobs_;
  std::deque<uint64_t> queue_;
  uint64_t next_id_ = 1;
  bool started_ = false;
  /// Atomic so scan loops probe it between chunks without taking mu_;
  /// writes still happen under mu_ (it gates the worker cv predicate).
  std::atomic<bool> stopping_{false};
  /// Serializes journal appends (JournalWriter is not internally
  /// synchronized; checkpoint appends run outside mu_). Lock order is
  /// always mu_ → journal_mu_, never the reverse.
  std::mutex journal_mu_;
  util::JournalWriter journal_;
  /// Scratch databases by mart name (owned; catalog/service hold raw
  /// pointers, so these live as long as the manager).
  std::map<std::string, std::unique_ptr<engine::Database>> scratch_;

  std::vector<std::thread> workers_;
  std::atomic<bool> crashed_{false};
  CrashHook crash_hook_;  // written before Start(); read by workers
};

}  // namespace griddb::core
