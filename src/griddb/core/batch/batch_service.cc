#include "griddb/core/batch/batch_service.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <sstream>

#include "griddb/obs/metrics.h"
#include "griddb/sql/parser.h"
#include "griddb/sql/render.h"
#include "griddb/storage/stage_file.h"
#include "griddb/util/fs.h"
#include "griddb/util/logging.h"
#include "griddb/util/md5.h"
#include "griddb/util/strings.h"

namespace griddb::core {

using storage::ResultSet;

namespace {

const sql::Dialect& ClientDialect() {
  return sql::Dialect::For(sql::Vendor::kSqlite);
}

obs::Counter& SubmittedCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "griddb.batch.jobs_submitted");
  return *c;
}
obs::Counter& CompletedCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "griddb.batch.jobs_completed");
  return *c;
}
obs::Counter& FailedCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("griddb.batch.jobs_failed");
  return *c;
}
obs::Counter& CancelledCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "griddb.batch.jobs_cancelled");
  return *c;
}
obs::Counter& RecoveredCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "griddb.batch.jobs_recovered");
  return *c;
}
obs::Counter& CheckpointsCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "griddb.batch.chunks_checkpointed");
  return *c;
}
obs::Counter& ChunksRecoveredCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "griddb.batch.chunks_recovered");
  return *c;
}
obs::Counter& RetriesCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "griddb.batch.subquery_retries");
  return *c;
}
obs::Counter& ShedWaitsCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "griddb.batch.subquery_sheds");
  return *c;
}
obs::Counter& FetchPagesCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("griddb.batch.fetch_pages");
  return *c;
}
obs::Counter& JournalTruncatedCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "griddb.batch.journal_truncated");
  return *c;
}
obs::Counter& IoPausesCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("griddb.batch.io_pauses");
  return *c;
}
obs::Counter& StageRepairsCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "griddb.batch.stage_repairs");
  return *c;
}
obs::Gauge& QueueDepthGauge() {
  static obs::Gauge* g =
      obs::MetricsRegistry::Default().GetGauge("griddb.batch.queue_depth");
  return *g;
}
obs::Gauge& RunningGauge() {
  static obs::Gauge* g =
      obs::MetricsRegistry::Default().GetGauge("griddb.batch.running");
  return *g;
}

/// Gauges are set-only; the running count backing griddb.batch.running.
std::atomic<int>& RunningCount() {
  static std::atomic<int> n{0};
  return n;
}

/// True when the expression tree contains any function call (aggregates
/// included) — paging such a statement would change its semantics.
bool HasFunction(const sql::Expr& expr) {
  if (expr.kind == sql::Expr::Kind::kFunction) return true;
  for (const sql::ExprPtr& child : expr.children) {
    if (child && HasFunction(*child)) return true;
  }
  return false;
}

/// A statement is pageable when appending LIMIT/OFFSET yields the same
/// rows in deterministic slices: no aggregation, grouping, DISTINCT,
/// ordering or explicit LIMIT/OFFSET of its own. (Row order without
/// ORDER BY is engine order, which is deterministic for the embedded
/// engines — the same premise EtlPipeline::RunResumable documents.)
bool IsPageable(const sql::SelectStmt& stmt) {
  if (stmt.distinct || !stmt.group_by.empty() || stmt.having ||
      !stmt.order_by.empty() || stmt.limit || stmt.offset) {
    return false;
  }
  for (const sql::SelectItem& item : stmt.items) {
    if (item.expr && HasFunction(*item.expr)) return false;
  }
  return true;
}

/// Infers a table schema for materializing `rs`: column types from the
/// first non-null value per column, kString for all-null columns.
storage::TableSchema SchemaFor(const std::string& table, const ResultSet& rs) {
  std::vector<storage::ColumnDef> columns;
  columns.reserve(rs.columns.size());
  for (size_t c = 0; c < rs.columns.size(); ++c) {
    storage::ColumnDef def;
    def.name = rs.columns[c];
    def.type = storage::DataType::kString;
    for (const storage::Row& row : rs.rows) {
      if (c < row.size() && !row[c].is_null()) {
        def.type = row[c].type();
        break;
      }
    }
    columns.push_back(std::move(def));
  }
  return storage::TableSchema(table, std::move(columns));
}

/// Parses "key value" lines of a journal payload; the `sql` and `error`
/// keys (always last) consume the remainder of the payload verbatim so
/// arbitrary statement text round-trips.
struct RecordFields {
  std::map<std::string, std::string> fields;
  std::string kind;

  static RecordFields Parse(const std::string& payload) {
    RecordFields out;
    size_t pos = 0;
    bool first = true;
    while (pos < payload.size()) {
      size_t eol = payload.find('\n', pos);
      std::string line = payload.substr(
          pos, eol == std::string::npos ? std::string::npos : eol - pos);
      if (first) {
        out.kind = line;
        first = false;
      } else {
        size_t sp = line.find(' ');
        std::string key = line.substr(0, sp);
        if (key == "sql" || key == "error") {
          // Rest-of-payload field: everything past "key ".
          size_t start = pos + key.size() + 1;
          out.fields[key] =
              start <= payload.size() ? payload.substr(start) : "";
          break;
        }
        out.fields[key] =
            sp == std::string::npos ? std::string() : line.substr(sp + 1);
      }
      if (eol == std::string::npos) break;
      pos = eol + 1;
    }
    return out;
  }

  uint64_t U64(const std::string& key) const {
    auto it = fields.find(key);
    if (it == fields.end()) return 0;
    return static_cast<uint64_t>(strtoull(it->second.c_str(), nullptr, 10));
  }
  std::string Str(const std::string& key) const {
    auto it = fields.find(key);
    return it == fields.end() ? std::string() : it->second;
  }
};

}  // namespace

const char* BatchJobStateName(BatchJobState state) noexcept {
  switch (state) {
    case BatchJobState::kQueued: return "queued";
    case BatchJobState::kRunning: return "running";
    case BatchJobState::kDone: return "done";
    case BatchJobState::kFailed: return "failed";
    case BatchJobState::kCancelled: return "cancelled";
  }
  return "?";
}

bool IsTerminal(BatchJobState state) noexcept {
  return state == BatchJobState::kDone || state == BatchJobState::kFailed ||
         state == BatchJobState::kCancelled;
}

BatchJobManager::BatchJobManager(DataAccessService* service,
                                 ral::DatabaseCatalog* catalog,
                                 BatchConfig config)
    : service_(service),
      catalog_(catalog),
      config_(std::move(config)),
      journal_((config_.journal_dir.empty() ? std::string(".")
                                            : config_.journal_dir) +
               "/batch_jobs.journal") {
  if (config_.enabled()) {
    std::error_code ec;
    std::filesystem::create_directories(config_.journal_dir, ec);
  }
}

BatchJobManager::~BatchJobManager() { Stop(); }

void BatchJobManager::set_crash_hook(CrashHook hook) {
  std::lock_guard<std::mutex> lock(mu_);
  crash_hook_ = std::move(hook);
}

const std::vector<std::string>& BatchJobManager::CrashPointNames() {
  static const std::vector<std::string> names = {"checkpoint", "staged",
                                                 "terminal", "total"};
  return names;
}

void BatchJobManager::CrashPoint(const char* point, uint64_t job_id,
                                 size_t chunk) {
  assert(std::find(CrashPointNames().begin(), CrashPointNames().end(),
                   point) != CrashPointNames().end() &&
         "crash point fired without being registered in CrashPointNames()");
  CrashHook hook;
  {
    std::lock_guard<std::mutex> lock(mu_);
    hook = crash_hook_;
  }
  if (hook) hook(point, job_id, chunk);
}

std::string BatchJobManager::StagePath(uint64_t id) const {
  return config_.journal_dir + "/job_" + std::to_string(id) + ".stage";
}

std::string BatchJobManager::ScratchMartName(const std::string& tenant) const {
  // Tenant identities come from the RBAC catalog; sanitize into an
  // identifier so arbitrary characters cannot escape into SQL/paths.
  std::string base = tenant.empty() ? "anonymous" : ToLower(tenant);
  std::string safe;
  safe.reserve(base.size());
  for (char c : base) {
    safe += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
  }
  return "scratch_" + safe;
}

// ---------- journal encoding ----------

Status BatchJobManager::JournalAppend(const std::string& payload) {
  if (crashed()) return Unavailable("batch manager crashed (simulated)");
  // JournalWriter is not internally synchronized; checkpoint appends run
  // outside mu_ (they sit on the hot scan path), so all appends funnel
  // through this dedicated mutex. Lock order is always mu_ → journal_mu_.
  std::lock_guard<std::mutex> lock(journal_mu_);
  if (crashed()) return Unavailable("batch manager crashed (simulated)");
  return journal_.Append(payload);
}

Status BatchJobManager::JournalSubmit(const Job& job) {
  std::ostringstream out;
  out << "submit\nid " << job.info.id << "\nchunk_rows " << job.chunk_rows
      << "\ntenant " << job.info.tenant << "\nsql " << job.info.sql;
  return JournalAppend(out.str());
}

Status BatchJobManager::JournalCheckpoint(uint64_t id, size_t chunk,
                                          size_t rows,
                                          const std::string& md5) {
  std::ostringstream out;
  out << "checkpoint\nid " << id << "\nchunk " << chunk << "\nrows " << rows
      << "\nmd5 " << md5;
  return JournalAppend(out.str());
}

Status BatchJobManager::JournalTotal(uint64_t id, size_t chunks,
                                     size_t rows) {
  std::ostringstream out;
  out << "total\nid " << id << "\nchunks " << chunks << "\nrows " << rows;
  return JournalAppend(out.str());
}

Status BatchJobManager::JournalTerminal(uint64_t id, BatchJobState state,
                                        const std::string& error) {
  std::ostringstream out;
  out << "state\nid " << id << "\nto " << BatchJobStateName(state);
  if (!error.empty()) out << "\nerror " << error;
  return JournalAppend(out.str());
}

// ---------- recovery ----------

Status BatchJobManager::Recover() {
  if (!config_.enabled()) return Status::Ok();
  GRIDDB_ASSIGN_OR_RETURN(util::JournalReplay replay,
                          util::ReadJournal(journal_.path()));
  if (replay.truncated) {
    JournalTruncatedCounter().Add(1);
    // Repair the tear before anything can append: Append is O_APPEND,
    // so new records would otherwise land after the torn bytes, where
    // the next replay — which stops at the tear — can never see them.
    // Acknowledged submits and terminal states written after an
    // unrepaired tear would silently vanish on the following restart.
    std::lock_guard<std::mutex> journal_lock(journal_mu_);
    GRIDDB_RETURN_IF_ERROR(journal_.TruncateTo(replay.intact_bytes));
  }

  std::unique_lock<std::mutex> lock(mu_);
  // Idempotence: replaying over already-recovered state would double
  // every job; recovery is a construction-time event.
  if (!jobs_.empty() || started_) {
    return FailedPrecondition("Recover() must run once, before Start()");
  }
  for (const std::string& payload : replay.records) {
    RecordFields rec = RecordFields::Parse(payload);
    const uint64_t id = rec.U64("id");
    if (rec.kind == "submit") {
      Job job;
      job.info.id = id;
      job.info.tenant = rec.Str("tenant");
      job.info.sql = rec.Str("sql");
      job.info.scratch_mart = ScratchMartName(job.info.tenant);
      job.info.result_table = "batch_" + std::to_string(id);
      job.chunk_rows = static_cast<size_t>(rec.U64("chunk_rows"));
      if (job.chunk_rows == 0) job.chunk_rows = config_.chunk_rows;
      jobs_.emplace(id, std::move(job));
      next_id_ = std::max(next_id_, id + 1);
    } else if (rec.kind == "checkpoint") {
      auto it = jobs_.find(id);
      if (it == jobs_.end()) continue;  // tolerate orphaned records
      const size_t chunk = static_cast<size_t>(rec.U64("chunk"));
      const size_t rows = static_cast<size_t>(rec.U64("rows"));
      // Re-checkpointed chunks (a resume re-ran a page whose journal
      // record survived but whose stage frame did not) overwrite: last
      // record wins, mirroring last-frame-wins in the stage file.
      auto [md5_it, fresh] = it->second.chunk_md5.insert_or_assign(
          chunk, rec.Str("md5"));
      (void)md5_it;
      if (!fresh) {
        it->second.info.rows -= it->second.chunk_row_counts[chunk];
      }
      it->second.chunk_row_counts[chunk] = rows;
      it->second.info.rows += rows;
      it->second.info.chunks_done = it->second.chunk_md5.size();
    } else if (rec.kind == "total") {
      auto it = jobs_.find(id);
      if (it == jobs_.end()) continue;
      it->second.info.total_chunks = static_cast<size_t>(rec.U64("chunks"));
      it->second.info.total_known = true;
    } else if (rec.kind == "state") {
      auto it = jobs_.find(id);
      if (it == jobs_.end()) continue;
      const std::string to = rec.Str("to");
      if (to == "done") {
        it->second.info.state = BatchJobState::kDone;
      } else if (to == "failed") {
        it->second.info.state = BatchJobState::kFailed;
      } else if (to == "cancelled") {
        it->second.info.state = BatchJobState::kCancelled;
        it->second.cancel.Cancel(Unavailable("batch job cancelled"));
      }
      it->second.info.error = rec.Str("error");
    }
    // Unknown kinds are skipped: a journal written by a newer build
    // replays what this build understands instead of failing recovery.
  }

  // Rebuild scratch state and requeue interrupted work.
  for (auto& [id, job] : jobs_) {
    if (job.info.state == BatchJobState::kDone) {
      // The scratch mart is an in-memory cache over the durable stage
      // file; rebuild it so fetches and follow-up queries work after the
      // restart.
      lock.unlock();
      Status rebuilt = [&]() -> Status {
        GRIDDB_ASSIGN_OR_RETURN(engine::Database * db,
                                EnsureScratchMart(job.info.tenant));
        GRIDDB_ASSIGN_OR_RETURN(size_t resume, MaterializeCheckpointed(job, db));
        if (job.info.total_known && resume < job.info.total_chunks) {
          return Corruption("stage file of done job " + std::to_string(id) +
                            " is missing chunks past " +
                            std::to_string(resume));
        }
        return PublishResultTable(job);
      }();
      lock.lock();
      if (!rebuilt.ok()) {
        // The stage file lost chunks the journal says were durable — an
        // fsync that lied before a power cut, or media rot past the
        // digest-quarantine repair. Serving the truncated result as
        // "done" would be silent data loss; the SQL and per-chunk
        // digests are journaled, so demote the job and re-execute from
        // its last intact checkpoint instead.
        job.info.error = "scratch rebuild failed: " + rebuilt.ToString();
        GRIDDB_LOG(Warn) << "batch job " << id << ": " << job.info.error
                         << " (requeued from last intact checkpoint)";
        job.info.state = BatchJobState::kQueued;
        job.info.recovered = true;
        queue_.push_back(id);
        RecoveredCounter().Add(1);
      }
      continue;
    }
    if (IsTerminal(job.info.state)) continue;
    job.info.recovered = true;
    job.info.state = BatchJobState::kQueued;
    queue_.push_back(id);
    RecoveredCounter().Add(1);
  }
  QueueDepthGauge().Set(static_cast<double>(queue_.size()));
  return Status::Ok();
}

// ---------- lifecycle ----------

void BatchJobManager::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!config_.enabled() || started_) return;
  started_ = true;
  stopping_ = false;
  const size_t n = std::max<size_t>(config_.workers, 1);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void BatchJobManager::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return;
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  std::lock_guard<std::mutex> lock(mu_);
  workers_.clear();
  started_ = false;
  journal_.Close();
}

size_t BatchJobManager::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

// ---------- RPC surface ----------

Result<uint64_t> BatchJobManager::Submit(const std::string& tenant,
                                         const std::string& sql) {
  if (!config_.enabled()) {
    return Unavailable("batch service not configured on this server");
  }
  // Validate before journaling: a statement that cannot parse must not
  // occupy a durable journal record only to fail at run time. Nor may a
  // tenant containing control bytes: the submit record carries it on a
  // newline-delimited field line, and an embedded newline would shift
  // the record's framing on replay (mis-scoping the job, swallowing the
  // sql field).
  for (char c : tenant) {
    if (static_cast<unsigned char>(c) < 0x20 || c == 0x7f) {
      return InvalidArgument("tenant identity contains control characters");
    }
  }
  auto parsed = sql::ParseSelect(sql, ClientDialect());
  if (!parsed.ok()) return parsed.status();

  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_) return Unavailable("batch service shutting down");
  Job job;
  job.info.id = next_id_;
  job.info.tenant = tenant;
  job.info.sql = sql;
  job.info.scratch_mart = ScratchMartName(tenant);
  job.info.result_table = "batch_" + std::to_string(job.info.id);
  job.chunk_rows = std::max<size_t>(config_.chunk_rows, 1);
  // Write-ahead: the submit record is durable before the id is handed
  // out, so an acknowledged job survives any later crash.
  GRIDDB_RETURN_IF_ERROR(JournalSubmit(job));
  const uint64_t id = job.info.id;
  next_id_ = id + 1;
  jobs_.emplace(id, std::move(job));
  queue_.push_back(id);
  SubmittedCounter().Add(1);
  QueueDepthGauge().Set(static_cast<double>(queue_.size()));
  work_cv_.notify_one();
  return id;
}

Result<BatchJobInfo> BatchJobManager::Poll(const std::string& tenant,
                                           uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return NotFound("no batch job " + std::to_string(id));
  }
  if (it->second.info.tenant != tenant) {
    // Per-tenant visibility: another tenant's job id behaves as absent.
    return NotFound("no batch job " + std::to_string(id));
  }
  return it->second.info;
}

Status BatchJobManager::Cancel(const std::string& tenant, uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end() || it->second.info.tenant != tenant) {
    return NotFound("no batch job " + std::to_string(id));
  }
  Job& job = it->second;
  if (IsTerminal(job.info.state)) {
    return FailedPrecondition("batch job " + std::to_string(id) +
                              " already " +
                              BatchJobStateName(job.info.state));
  }
  // Durable-before-effective: journal the cancellation, then latch the
  // token. A crash after this record recovers the job as cancelled; the
  // running scan observes the token at its next chunk boundary (or
  // mid-chunk through the executor's cooperative checks) and stops
  // without writing a second terminal record.
  GRIDDB_RETURN_IF_ERROR(
      JournalTerminal(id, BatchJobState::kCancelled, ""));
  job.info.state = BatchJobState::kCancelled;
  job.cancel.Cancel(Unavailable("batch job cancelled"));
  queue_.erase(std::remove(queue_.begin(), queue_.end(), id), queue_.end());
  QueueDepthGauge().Set(static_cast<double>(queue_.size()));
  CancelledCounter().Add(1);
  done_cv_.notify_all();
  work_cv_.notify_all();  // interrupt the job's shed/retry backoff wait
  return Status::Ok();
}

Result<ResultSet> BatchJobManager::Fetch(const std::string& tenant,
                                         uint64_t id, size_t page) {
  std::string mart;
  std::string table;
  size_t total_rows = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = jobs_.find(id);
    if (it == jobs_.end() || it->second.info.tenant != tenant) {
      return NotFound("no batch job " + std::to_string(id));
    }
    const Job& job = it->second;
    if (job.info.state != BatchJobState::kDone) {
      return FailedPrecondition("batch job " + std::to_string(id) + " is " +
                                BatchJobStateName(job.info.state) +
                                ", results are fetchable once done");
    }
    mart = job.info.scratch_mart;
    table = job.info.result_table;
    total_rows = job.info.rows;
  }
  engine::Database* db = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = scratch_.find(mart);
    if (it != scratch_.end()) db = it->second.get();
  }
  if (db == nullptr || !db->HasTable(table)) {
    return Unavailable("scratch table '" + table + "' is not materialized");
  }
  const size_t rows = std::max<size_t>(config_.fetch_page_rows, 1);
  // page * rows can wrap size_t for a hostile client-supplied page and
  // alias a real offset; any page past the last row IS "past the end",
  // so clamp to the row count instead of multiplying (page <= max_page
  // implies page * rows <= total_rows, which cannot overflow).
  const size_t max_page = total_rows / rows;
  const size_t offset = page > max_page ? total_rows : page * rows;
  std::string page_sql = "SELECT * FROM " + table + " LIMIT " +
                         std::to_string(rows) + " OFFSET " +
                         std::to_string(offset);
  FetchPagesCounter().Add(1);
  return db->Execute(page_sql);
}

bool BatchJobManager::WaitForTerminal(uint64_t id, double timeout_sec) {
  std::unique_lock<std::mutex> lock(mu_);
  return done_cv_.wait_for(
      lock, std::chrono::duration<double>(timeout_sec), [&] {
        auto it = jobs_.find(id);
        return it != jobs_.end() && IsTerminal(it->second.info.state);
      });
}

// ---------- execution ----------

void BatchJobManager::WorkerLoop() {
  for (;;) {
    uint64_t id = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stopping_ || crashed() || !queue_.empty();
      });
      if (stopping_ || crashed()) return;
      id = queue_.front();
      queue_.pop_front();
      QueueDepthGauge().Set(static_cast<double>(queue_.size()));
    }
    RunJob(id);
  }
}

void BatchJobManager::RunJob(uint64_t id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = jobs_.find(id);
    if (it == jobs_.end() || IsTerminal(it->second.info.state)) return;
    it->second.info.state = BatchJobState::kRunning;
  }
  RunningGauge().Set(RunningCount().fetch_add(1) + 1);
  obs::Span span = service_->tracer().StartSpan("batch.job");
  if (span.active()) span.AddAttr("job", std::to_string(id));

  // The scan runs outside mu_ (it performs queries); it re-locks for
  // each state mutation. The Job reference is stable: jobs_ is a map and
  // entries are never erased.
  Job* job = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    job = &jobs_.at(id);
  }
  Status result = RunScan(*job);

  size_t chunks_done = 0;
  bool io_pause = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    RunningGauge().Set(RunningCount().fetch_sub(1) - 1);
    if (crashed()) {
      // A simulated crash freezes state where the "kill" happened; the
      // journal on disk — not this in-memory state — is what recovery of
      // the next incarnation replays.
      if (span.active()) span.End();
      return;
    }
    if (job->info.state == BatchJobState::kCancelled) {
      // Terminal record was already written by Cancel(); just stop.
      if (span.active()) span.End();
      done_cv_.notify_all();
      return;
    }
    if (!result.ok() && stop_requested()) {
      // Stop() interrupted the scan (chunk boundary or backoff wait):
      // no terminal record — the job returns to queued state and a
      // later Start() or a restart resumes it from its last durable
      // checkpoint. (A genuine failure racing with Stop() requeues
      // too; the re-run deterministically re-fails and records the
      // failure then.)
      job->info.state = BatchJobState::kQueued;
      queue_.push_front(id);
      QueueDepthGauge().Set(static_cast<double>(queue_.size()));
      if (span.active()) span.End();
      return;
    }
    if (result.ok()) {
      if (Status t = JournalTerminal(id, BatchJobState::kDone, ""); t.ok()) {
        job->info.state = BatchJobState::kDone;
        CompletedCounter().Add(1);
      } else {
        // The work is all durably checkpointed; only the terminal record
        // could not be written. Failing the job here would throw a
        // finished result away because a disk hiccuped — park it instead
        // and retry once storage recovers (the retry re-runs nothing: it
        // restores every chunk and re-attempts only this append).
        io_pause = true;
      }
    } else if (result.code() == StatusCode::kIoError) {
      // Storage failure (ENOSPC window, torn write, unwritable journal):
      // graceful degradation is pause-and-retry, never job failure. The
      // checkpointed prefix stays durable; the retry resumes after it.
      io_pause = true;
    } else {
      job->info.error = result.ToString();
      if (JournalTerminal(id, BatchJobState::kFailed, job->info.error).ok()) {
        job->info.state = BatchJobState::kFailed;
        FailedCounter().Add(1);
      } else {
        // Can't even record the failure: park and re-derive it later.
        job->info.error.clear();
        io_pause = true;
      }
    }
    if (io_pause) {
      job->info.state = BatchJobState::kQueued;
      ++job->info.io_pauses;
      IoPausesCounter().Add(1);
    }
    if (span.active()) {
      if (!result.ok()) span.SetError(result.ToString());
      span.End();
    }
    chunks_done = job->info.chunks_done;
  }
  if (io_pause) {
    // Back off before requeueing so a persistent ENOSPC window does not
    // spin the worker pool; the wait aborts early on stop/crash/cancel.
    InterruptibleWait(*job, config_.io_retry_backoff_ms);
    std::lock_guard<std::mutex> lock(mu_);
    // Requeue even when the wait was cut short by Stop(): the queue
    // survives Stop()/Start(), and a job parked outside it would be
    // invisible to the next incarnation's workers. Cancellation flips
    // the state away from queued, which skips the requeue.
    if (job->info.state == BatchJobState::kQueued && !crashed()) {
      queue_.push_back(id);
      QueueDepthGauge().Set(static_cast<double>(queue_.size()));
      work_cv_.notify_one();
    }
    return;
  }
  // Outside mu_: CrashPoint re-locks it to read the hook.
  CrashPoint("terminal", id, chunks_done);
  done_cv_.notify_all();
}

void BatchJobManager::InterruptibleWait(Job& job, double ms) {
  std::unique_lock<std::mutex> lock(mu_);
  work_cv_.wait_for(lock, std::chrono::duration<double, std::milli>(ms),
                    [&] {
                      return stop_requested() || crashed() ||
                             !job.cancel.Check().ok();
                    });
}

Result<ResultSet> BatchJobManager::RunSubQuery(Job& job,
                                               const std::string& sql) {
  const rpc::RetryPolicy& policy = config_.retry;
  double backoff_ms = policy.initial_backoff_ms;
  int attempts = 0;
  for (;;) {
    if (crashed()) return Unavailable("batch manager crashed (simulated)");
    if (stop_requested()) return Unavailable("batch service stopping");
    GRIDDB_RETURN_IF_ERROR(job.cancel.Check());
    QueryContext ctx;
    ctx.priority = QueryPriority::kBatch;
    ctx.tenant = job.info.tenant;
    ctx.cancel = job.cancel;
    QueryStats stats;
    auto rs = service_->Query(sql, &stats, 0, "", std::move(ctx));
    if (rs.ok()) return rs;
    const Status& st = rs.status();
    if (st.code() == StatusCode::kResourceExhausted) {
      // An admission shed is back-pressure, not failure: the cluster has
      // no idle capacity for batch work right now. Wait it out (honouring
      // the shed's retry-after hint as a floor) without consuming the
      // transient-failure retry budget. Workers are real threads below
      // the virtual clock, so the wait is wall-clock — and interruptible:
      // under sustained foreground demand this loop can spin for the rest
      // of the job's life, and Stop() must not wait behind it.
      ShedWaitsCounter().Add(1);
      double wait_ms = std::max(config_.shed_backoff_ms,
                                rpc::RetryAfterHintMs(st.message()));
      InterruptibleWait(job, wait_ms);
      continue;
    }
    if (!rpc::IsRetryable(st.code())) return st;
    if (++attempts >= policy.max_attempts) return st;
    RetriesCounter().Add(1);
    InterruptibleWait(job, backoff_ms);
    backoff_ms = std::min(backoff_ms * policy.backoff_multiplier,
                          policy.max_backoff_ms);
  }
}

Result<engine::Database*> BatchJobManager::EnsureScratchMart(
    const std::string& tenant) {
  // Creation + catalog add + service registration run as one critical
  // section so a second worker for the same tenant never observes a
  // half-registered mart. The service never calls back into this
  // manager, so holding mu_ across the registration cannot deadlock.
  const std::string mart = ScratchMartName(tenant);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = scratch_.find(mart);
  if (it != scratch_.end()) return it->second.get();

  auto db = std::make_unique<engine::Database>(mart, sql::Vendor::kSqlite);
  engine::Database* raw = db.get();
  const std::string conn =
      "sqlite://" + service_->config().host + "/" + mart;
  ral::DatabaseCatalog::Entry entry;
  entry.connection_string = conn;
  entry.database = raw;
  entry.host = service_->config().host;
  Status added = catalog_->Add(entry);
  if (added.code() == StatusCode::kAlreadyExists) {
    // Restart path: the catalog still maps this connection string to the
    // previous incarnation's (destroyed) scratch database. Point it at
    // the rebuilt one.
    GRIDDB_RETURN_IF_ERROR(catalog_->Remove(conn));
    added = catalog_->Add(std::move(entry));
  }
  GRIDDB_RETURN_IF_ERROR(added);
  // From here the catalog holds a raw pointer into `db`; every error
  // return must take it back out, or `db` dies with this frame and any
  // later resolution of the connection string is a use-after-free.
  auto fail = [&](Status st) {
    (void)catalog_->Remove(conn);
    return st;
  };
  Status registered = service_->RegisterLiveDatabase(conn, "");
  if (registered.code() == StatusCode::kAlreadyExists) {
    // The service outlived the previous manager (embedders rebuild the
    // manager in-process; a real restart rebuilds both), so its
    // dictionary still describes the destroyed incarnation. The catalog
    // now points at the rebuilt database; a refresh re-derives the
    // dictionary from it.
    registered = service_->RefreshRegisteredDatabase(mart);
  }
  if (!registered.ok()) return fail(std::move(registered));
  // The scratch mart belongs to its tenant: a mart grant makes every
  // result table it will ever host readable by follow-up queries without
  // per-table grant churn. Other tenants get nothing.
  if (std::shared_ptr<RbacCatalog> rbac = service_->config().rbac) {
    const std::string user =
        tenant.empty() ? RbacCatalog::kAnonymousTenant : tenant;
    (void)rbac->CreateUser(user);  // kAlreadyExists is fine
    Status granted = rbac->GrantMart(user, mart);
    if (!granted.ok() && granted.code() != StatusCode::kAlreadyExists) {
      return fail(std::move(granted));
    }
  }
  scratch_.emplace(mart, std::move(db));
  return raw;
}

Result<size_t> BatchJobManager::MaterializeCheckpointed(
    Job& job, engine::Database* db) {
  // The journal's checkpoint records are the truth; stage frames must
  // match them digest-for-digest to count. Returns the first chunk id
  // the scan must (re-)run.
  (void)db->DropTable(job.info.result_table, /*if_exists=*/true);
  std::map<size_t, std::string> journaled;
  {
    std::lock_guard<std::mutex> lock(mu_);
    journaled = job.chunk_md5;
  }
  if (journaled.empty()) return size_t{0};

  const std::string stage_path = StagePath(job.info.id);
  std::vector<size_t> corrupt;
  storage::StageDamage damage;
  auto staged =
      storage::ReadChunkedStageFileTolerant(stage_path, &corrupt, &damage);
  if (!staged.ok()) {
    // Missing or unreadably damaged stage file: nothing restorable — the
    // scan re-runs from chunk 0. Damaged (as opposed to missing) files
    // must be removed first: stage appends land at the physical end of
    // file, so frames written after unreadable bytes would be invisible
    // to every later read and the job could never converge.
    if (staged.status().code() != StatusCode::kNotFound) {
      (void)util::Fs().Unlink(stage_path);
      StageRepairsCounter().Add(1);
    }
    return size_t{0};
  }
  if (damage.torn) {
    // A tail torn by a crash, a torn write, or a lying fsync whose bytes
    // a crash dropped. Cut the file back to its intact frames before any
    // append, for the same reason Recover() truncates a torn journal.
    GRIDDB_RETURN_IF_ERROR(
        util::Fs().Truncate(stage_path, damage.intact_bytes));
    GRIDDB_RETURN_IF_ERROR(util::Fs().Fsync(stage_path));
    StageRepairsCounter().Add(1);
  }
  // Restore the dense prefix of chunks whose stage frame digest matches
  // the journaled checkpoint; stop at the first hole — LIMIT/OFFSET
  // paging needs a contiguous prefix to resume from.
  std::map<size_t, size_t> frame_index;
  for (size_t i = 0; i < staged->chunks.size(); ++i) {
    frame_index[staged->chunks[i].id] = i;
  }
  size_t resume = 0;
  bool created = false;
  while (true) {
    auto want = journaled.find(resume);
    if (want == journaled.end()) break;
    auto have = frame_index.find(resume);
    if (have == frame_index.end() ||
        staged->chunks[have->second].md5 != want->second) {
      break;
    }
    if (!created) {
      storage::TableSchema schema(job.info.result_table,
                                  staged->schema.columns());
      GRIDDB_RETURN_IF_ERROR(db->CreateTable(schema));
      created = true;
    }
    GRIDDB_RETURN_IF_ERROR(db->InsertRows(job.info.result_table,
                                          staged->rows[have->second]));
    ChunksRecoveredCounter().Add(1);
    ++resume;
  }
  return resume;
}

Status BatchJobManager::PublishResultTable(Job& job) {
  // Republishing the scratch database puts the new logical table into
  // the Unity dictionary, so follow-up interactive queries can use it as
  // a source table.
  return service_->RefreshRegisteredDatabase(job.info.scratch_mart);
}

Status BatchJobManager::RunScan(Job& job) {
  const uint64_t id = job.info.id;
  GRIDDB_ASSIGN_OR_RETURN(engine::Database * db,
                          EnsureScratchMart(job.info.tenant));
  GRIDDB_ASSIGN_OR_RETURN(size_t resume, MaterializeCheckpointed(job, db));
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Forget journaled checkpoints past the restored prefix: those
    // chunks re-run and re-checkpoint (last record wins on replay).
    for (auto it = job.chunk_md5.begin(); it != job.chunk_md5.end();) {
      if (it->first >= resume) {
        job.info.rows -= job.chunk_row_counts[it->first];
        job.chunk_row_counts.erase(it->first);
        it = job.chunk_md5.erase(it);
      } else {
        ++it;
      }
    }
    job.info.chunks_done = resume;
  }

  auto parsed = sql::ParseSelect(job.info.sql, ClientDialect());
  if (!parsed.ok()) return parsed.status();
  std::unique_ptr<sql::SelectStmt> stmt = std::move(*parsed);
  // Paging is per-chunk LIMIT/OFFSET, so every replica of every
  // referenced table must provably live behind a dialect that can
  // express the offset. TOP (MS-SQL) and ROWNUM (Oracle) renderings
  // drop it, handing back the first chunk on every page — an
  // unterminating scan. A table with no local binding executes on a
  // peer server whose vendor this coordinator cannot see, so it gets
  // the same conservative treatment: degrade to the single-shot path.
  bool offset_ok = true;
  for (const sql::TableRef* ref : stmt->AllTables()) {
    auto bindings = service_->driver().dictionary().Locate(ref->table);
    if (bindings.empty()) offset_ok = false;
    for (const unity::TableBinding& binding : bindings) {
      const size_t scheme = binding.connection.find("://");
      auto vendor = sql::VendorFromName(
          std::string_view(binding.connection)
              .substr(0, scheme == std::string::npos ? 0 : scheme));
      if (!vendor.ok() || sql::Dialect::For(*vendor).limit_style() !=
                              sql::LimitStyle::kLimitOffset) {
        offset_ok = false;
      }
    }
  }
  const bool pageable = IsPageable(*stmt) && offset_ok;
  const size_t chunk_rows = std::max<size_t>(job.chunk_rows, 1);

  // Materializes one chunk durably: stage frame first (fsync'd), then
  // the journal checkpoint — so a journaled checkpoint always has its
  // data on disk, and a crash between the two merely re-runs one chunk
  // whose re-staged frame is byte-identical (last frame per id wins).
  auto checkpoint_chunk = [&](size_t chunk_id,
                              const ResultSet& rs) -> Status {
    if (crashed()) return Unavailable("batch manager crashed (simulated)");
    storage::TableSchema schema = SchemaFor(job.info.result_table, rs);
    storage::StageChunk chunk;
    chunk.id = chunk_id;
    chunk.rows = rs.rows.size();
    std::string encoded = storage::EncodeRowBlock(rs.rows);
    chunk.md5 = Md5Hex(encoded);
    GRIDDB_RETURN_IF_ERROR(storage::AppendStageChunk(
        StagePath(id), schema, chunk, encoded));
    GRIDDB_RETURN_IF_ERROR(util::FsyncFile(StagePath(id)));
    CrashPoint("staged", id, chunk_id);
    if (crashed()) return Unavailable("batch manager crashed (simulated)");
    GRIDDB_RETURN_IF_ERROR(
        JournalCheckpoint(id, chunk_id, rs.rows.size(), chunk.md5));
    CheckpointsCounter().Add(1);
    CrashPoint("checkpoint", id, chunk_id);
    // In-memory materialization follows durability.
    if (!db->HasTable(job.info.result_table)) {
      GRIDDB_RETURN_IF_ERROR(db->CreateTable(schema));
    }
    GRIDDB_RETURN_IF_ERROR(
        db->InsertRows(job.info.result_table, rs.rows));
    std::lock_guard<std::mutex> lock(mu_);
    job.chunk_md5[chunk_id] = chunk.md5;
    job.chunk_row_counts[chunk_id] = rs.rows.size();
    job.info.chunks_done = job.chunk_md5.size();
    job.info.rows += rs.rows.size();
    return Status::Ok();
  };

  size_t total_chunks = 0;
  size_t total_rows = 0;
  if (pageable) {
    // Checkpointed scan: each chunk is its own LIMIT/OFFSET sub-query,
    // so a resume repeats no sub-query work before `resume`.
    size_t k = resume;
    for (;;) {
      // Chunk boundary: Stop() waits at most one chunk, not the whole
      // scan. RunJob sees stop_requested() and requeues without a
      // terminal record.
      if (stop_requested()) return Unavailable("batch service stopping");
      GRIDDB_RETURN_IF_ERROR(job.cancel.Check());
      std::unique_ptr<sql::SelectStmt> page = stmt->Clone();
      page->limit = static_cast<int64_t>(chunk_rows);
      page->offset = static_cast<int64_t>(k * chunk_rows);
      GRIDDB_ASSIGN_OR_RETURN(
          ResultSet rs,
          RunSubQuery(job, sql::RenderSelect(*page, ClientDialect())));
      const size_t got = rs.rows.size();
      if (got > 0 || k == 0) {
        // Chunk 0 is staged even when empty: the stage header carries
        // the schema a zero-row result table still needs.
        GRIDDB_RETURN_IF_ERROR(checkpoint_chunk(k, rs));
        ++k;
      }
      if (got < chunk_rows) break;
    }
    total_chunks = k;
  } else {
    // Non-pageable statements run single-shot; only materialization is
    // chunked. A crash mid-materialization re-runs the whole query on
    // resume (deterministic engines: same result) and re-stages from the
    // first missing chunk.
    GRIDDB_RETURN_IF_ERROR(job.cancel.Check());
    GRIDDB_ASSIGN_OR_RETURN(ResultSet rs, RunSubQuery(job, job.info.sql));
    size_t k = 0;
    size_t offset = 0;
    for (;;) {
      if (stop_requested()) return Unavailable("batch service stopping");
      const size_t take = std::min(chunk_rows, rs.rows.size() - offset);
      ResultSet slice;
      slice.columns = rs.columns;
      slice.rows.assign(rs.rows.begin() + static_cast<ptrdiff_t>(offset),
                        rs.rows.begin() + static_cast<ptrdiff_t>(offset + take));
      if (k >= resume && (take > 0 || k == 0)) {
        GRIDDB_RETURN_IF_ERROR(checkpoint_chunk(k, slice));
      }
      offset += take;
      if (take > 0 || k == 0) ++k;
      if (offset >= rs.rows.size()) break;
    }
    total_chunks = k;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    total_rows = job.info.rows;
  }
  if (crashed()) return Unavailable("batch manager crashed (simulated)");
  GRIDDB_RETURN_IF_ERROR(JournalTotal(id, total_chunks, total_rows));
  {
    std::lock_guard<std::mutex> lock(mu_);
    job.info.total_chunks = total_chunks;
    job.info.total_known = true;
  }
  CrashPoint("total", id, total_chunks);
  if (crashed()) return Unavailable("batch manager crashed (simulated)");
  return PublishResultTable(job);
}

}  // namespace griddb::core
