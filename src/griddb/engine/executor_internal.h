// Helpers shared by the reference row executor (select_executor.cc) and
// the vectorized executor (vector_executor.cc). Everything here is
// semantics the two paths must agree on exactly: star expansion, output
// naming, equi-join detection, DISTINCT dedupe, OFFSET/LIMIT slicing and
// ORDER BY comparison. Internal to the engine — not part of its API.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "griddb/engine/eval.h"
#include "griddb/engine/select_executor.h"
#include "griddb/sql/ast.h"
#include "griddb/storage/value.h"
#include "griddb/util/status.h"

namespace griddb::engine::internal {

/// "a.x = b.y" where exactly one side references the table being joined
/// in and the other resolves in the existing scope.
struct EquiJoinKey {
  size_t left_index;  // column index in the existing working row
  size_t new_index;   // column index in the new table's row
};

std::optional<EquiJoinKey> DetectEquiJoin(const sql::Expr* on,
                                          const Scope& existing,
                                          const Scope& incoming);

/// Output column name for a select item.
std::string OutputName(const sql::SelectItem& item);

/// Expands SELECT * / t.* into concrete per-column items.
Status ExpandStars(const sql::SelectStmt& stmt, const Scope& scope,
                   std::vector<sql::SelectItem>& items,
                   std::vector<std::string>& names);

/// Rejects duplicate effective table names (t join t without aliases).
Status CheckDuplicateTables(const sql::SelectStmt& stmt);

/// True when the statement needs grouped evaluation (GROUP BY present, or
/// aggregates in the items/HAVING).
bool StatementHasAggregate(const sql::SelectStmt& stmt,
                           const std::vector<sql::SelectItem>& items);

/// DISTINCT: keeps the first occurrence of each row, preserving order.
void DedupeRows(std::vector<storage::Row>& rows);

/// Applies OFFSET then LIMIT in place.
void ApplyOffsetLimit(const sql::SelectStmt& stmt,
                      std::vector<storage::Row>& rows);

/// Stable-sorts `rows` by `order_keys` following stmt.order_by
/// directions. When `top_k` is set, only the first top_k rows of the
/// sorted order are produced (and `rows` is truncated to top_k); ties
/// break by original index, so the prefix is exactly the stable-sort
/// prefix. Used by the vectorized path for ORDER BY + LIMIT.
void SortRowsByKeys(const sql::SelectStmt& stmt,
                    const std::vector<std::vector<storage::Value>>& order_keys,
                    std::vector<storage::Row>& rows,
                    std::optional<size_t> top_k);

/// The vectorized executor (vector_executor.cc). Sets `unsupported` and
/// returns an empty result when the source yields rows the columnar form
/// cannot represent (narrower than the scope) — the caller then reruns
/// the reference path, whose semantics are authoritative there.
Result<storage::ResultSet> ExecuteSelectVectorized(const sql::SelectStmt& stmt,
                                                   const TableSource& source,
                                                   const ExecOptions& opts,
                                                   bool& unsupported);

}  // namespace griddb::engine::internal
