// SELECT execution over an abstract table source.
//
// The executor is deliberately decoupled from Database so that the same
// code runs in three places: inside each vendor engine, inside the Unity
// driver's middleware-side join of per-mart partial results, and inside
// warehouse view materialization.
#pragma once

#include <string>

#include "griddb/sql/ast.h"
#include "griddb/storage/result_set.h"
#include "griddb/util/cancellation.h"
#include "griddb/util/status.h"

namespace griddb::engine {

/// Provides the rows of a named table (or view) to the executor.
class TableSource {
 public:
  virtual ~TableSource() = default;
  virtual Result<storage::ResultSet> GetTable(const std::string& name) const = 0;
  /// Borrowing variant: a source holding materialized tables returns a
  /// pointer (stable for the duration of the ExecuteSelect call) so the
  /// executor can read rows in place instead of copying the whole
  /// ResultSet. Default: not available, the executor falls back to
  /// GetTable.
  virtual const storage::ResultSet* FindTable(const std::string& name) const {
    (void)name;
    return nullptr;
  }
};

/// Simple TableSource over pre-materialized result sets keyed by name
/// (case-insensitive). Used by the federated merge step.
class MapTableSource : public TableSource {
 public:
  void Add(std::string name, storage::ResultSet rs);
  Result<storage::ResultSet> GetTable(const std::string& name) const override;
  const storage::ResultSet* FindTable(const std::string& name) const override;

 private:
  std::vector<std::pair<std::string, storage::ResultSet>> tables_;
};

/// Executes a SELECT against `source`. Joins, WHERE, GROUP BY/HAVING,
/// aggregates, DISTINCT, ORDER BY and LIMIT/OFFSET are all evaluated here.
///
/// `cancel`, when given, is checked at row-batch granularity inside the
/// join/filter/group/projection loops: a cancelled token (deadline expiry
/// or client abort) aborts execution within one batch instead of letting
/// a runaway join run to completion. Null keeps the loops check-free.
Result<storage::ResultSet> ExecuteSelect(const sql::SelectStmt& stmt,
                                         const TableSource& source,
                                         const CancelToken* cancel = nullptr);

}  // namespace griddb::engine
