// SELECT execution over an abstract table source.
//
// The executor is deliberately decoupled from Database so that the same
// code runs in three places: inside each vendor engine, inside the Unity
// driver's middleware-side join of per-mart partial results, and inside
// warehouse view materialization.
//
// Two implementations share one contract (DESIGN.md §15): the default
// vectorized executor processes columnar batches of ExecOptions::
// batch_rows rows (typed ColumnVector payloads, hash join and hash
// aggregation by gather, top-K ORDER BY under LIMIT), while
// ExecuteSelectReferenceRows retains the row-at-a-time path as the
// byte-identical reference for the parity suite, the speedup baseline
// for bench_ext_vectorized, and the fallback for inputs the columnar
// form cannot represent (ragged rows). ResultSet stays the wire-facing
// boundary: fault-free outputs are byte-identical across both.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "griddb/sql/ast.h"
#include "griddb/storage/result_set.h"
#include "griddb/util/cancellation.h"
#include "griddb/util/status.h"

namespace griddb::engine {

/// Borrowed view of a materialized table: column names plus a pointer to
/// its rows, valid for the duration of the ExecuteSelect call. Lets the
/// vectorized scan read rows in place instead of copying the whole table.
struct TableView {
  std::vector<std::string> columns;
  const std::vector<storage::Row>* rows;
};

/// Provides the rows of a named table (or view) to the executor.
class TableSource {
 public:
  virtual ~TableSource() = default;
  virtual Result<storage::ResultSet> GetTable(const std::string& name) const = 0;
  /// Borrowing variant: a source holding materialized tables returns a
  /// pointer (stable for the duration of the ExecuteSelect call) so the
  /// executor can read rows in place instead of copying the whole
  /// ResultSet. Default: not available, the executor falls back to
  /// GetTable.
  virtual const storage::ResultSet* FindTable(const std::string& name) const {
    (void)name;
    return nullptr;
  }
  /// Borrowing variant for sources whose tables are materialized but not
  /// shaped as ResultSet (Database's storage tables). Defaults to
  /// adapting FindTable.
  virtual std::optional<TableView> BorrowTable(const std::string& name) const {
    if (const storage::ResultSet* rs = FindTable(name)) {
      return TableView{rs->columns, &rs->rows};
    }
    return std::nullopt;
  }
};

/// Simple TableSource over pre-materialized result sets keyed by name
/// (case-insensitive). Used by the federated merge step.
class MapTableSource : public TableSource {
 public:
  void Add(std::string name, storage::ResultSet rs);
  Result<storage::ResultSet> GetTable(const std::string& name) const override;
  const storage::ResultSet* FindTable(const std::string& name) const override;

 private:
  std::vector<std::pair<std::string, storage::ResultSet>> tables_;
};

/// Execution knobs.
struct ExecOptions {
  /// Checked once per batch inside scan/join/filter/group/projection
  /// loops (the reference path checks every batch_rows-th row — same
  /// cadence). Null keeps the loops check-free.
  const CancelToken* cancel = nullptr;
  /// Rows per columnar batch; also the cancellation-check cadence.
  size_t batch_rows = 1024;
  /// When false, runs the retained row-at-a-time reference path.
  bool use_vectorized = true;
};

/// Executes a SELECT against `source`. Joins, WHERE, GROUP BY/HAVING,
/// aggregates, DISTINCT, ORDER BY and LIMIT/OFFSET are all evaluated here.
Result<storage::ResultSet> ExecuteSelect(const sql::SelectStmt& stmt,
                                         const TableSource& source,
                                         const ExecOptions& opts = {});

/// Convenience overload preserved from the row-executor era: cancellation
/// only, default batching.
Result<storage::ResultSet> ExecuteSelect(const sql::SelectStmt& stmt,
                                         const TableSource& source,
                                         const CancelToken* cancel);

/// The retained row-at-a-time executor. Kept as the parity reference and
/// bench baseline; also the fallback when a source yields rows the
/// columnar form cannot represent. Semantics are identical to the
/// vectorized path on every fault-free input.
Result<storage::ResultSet> ExecuteSelectReferenceRows(
    const sql::SelectStmt& stmt, const TableSource& source,
    const CancelToken* cancel = nullptr);

}  // namespace griddb::engine
