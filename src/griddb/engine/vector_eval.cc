#include "griddb/engine/vector_eval.h"

namespace griddb::engine {

using storage::DataType;
using storage::Value;

namespace {

/// One operand of a numeric kernel: a typed vector (int64/double rep), an
/// all-NULL vector, or an int64/double/NULL literal. `valid` is false for
/// every other shape (strings, bools, boxed columns), which routes the
/// node to the elementwise fallback.
struct NumSide {
  bool valid = false;
  bool is_lit = false;
  bool all_null = false;
  bool is_int = false;  // element type, uniform across the side
  const ColumnVector* v = nullptr;
  int64_t li = 0;
  double ld = 0;

  bool IsNull(size_t i) const {
    return all_null || (!is_lit && v->IsNull(i));
  }
  int64_t I(size_t i) const { return is_lit ? li : v->ints()[i]; }
  double D(size_t i) const {
    if (is_lit) return ld;
    return is_int ? static_cast<double>(v->ints()[i]) : v->doubles()[i];
  }
};

NumSide AsNum(const VectorRef& r) {
  NumSide s;
  if (r.is_literal()) {
    const Value& l = r.literal();
    s.is_lit = true;
    if (l.is_null()) {
      s.valid = true;
      s.all_null = true;
    } else if (l.type() == DataType::kInt64) {
      s.valid = true;
      s.is_int = true;
      s.li = l.AsInt64Strict();
      s.ld = static_cast<double>(s.li);
    } else if (l.type() == DataType::kDouble) {
      s.valid = true;
      s.ld = l.AsDoubleStrict();
    }
    return s;
  }
  switch (r.vec().rep()) {
    case ColumnVector::Rep::kNone:
      s.valid = true;
      s.all_null = true;
      break;
    case ColumnVector::Rep::kInt64:
      s.valid = true;
      s.is_int = true;
      s.v = &r.vec();
      break;
    case ColumnVector::Rep::kDouble:
      s.valid = true;
      s.v = &r.vec();
      break;
    default:
      break;
  }
  return s;
}

/// Boolean operand for the AND/OR/NOT kernels.
struct BoolSide {
  bool valid = false;
  bool is_lit = false;
  bool all_null = false;
  const ColumnVector* v = nullptr;
  bool lb = false;

  // Truth in three-valued logic: 0 false, 1 true, 2 null.
  int Truth(size_t i) const {
    if (all_null || (!is_lit && v->IsNull(i))) return 2;
    return (is_lit ? lb : v->bools()[i] != 0) ? 1 : 0;
  }
};

BoolSide AsBoolSide(const VectorRef& r) {
  BoolSide s;
  if (r.is_literal()) {
    const Value& l = r.literal();
    s.is_lit = true;
    if (l.is_null()) {
      s.valid = true;
      s.all_null = true;
    } else if (l.type() == DataType::kBool) {
      s.valid = true;
      s.lb = l.AsBoolStrict();
    }
    return s;
  }
  switch (r.vec().rep()) {
    case ColumnVector::Rep::kNone:
      s.valid = true;
      s.all_null = true;
      break;
    case ColumnVector::Rep::kBool:
      s.valid = true;
      s.v = &r.vec();
      break;
    default:
      break;
  }
  return s;
}

bool IsComparison(sql::BinaryOp op) {
  using sql::BinaryOp;
  return op == BinaryOp::kEq || op == BinaryOp::kNe || op == BinaryOp::kLt ||
         op == BinaryOp::kLe || op == BinaryOp::kGt || op == BinaryOp::kGe;
}

/// Numeric comparison kernel, mirroring Value::Compare for numeric pairs:
/// int64/int64 compares as integers, any double involved compares as
/// double with (x<y)?-1:(x>y?1:0) — including its NaN-compares-equal
/// behaviour. NULL on either side yields NULL.
VectorRef CompareKernel(sql::BinaryOp op, const NumSide& a, const NumSide& b,
                        size_t n) {
  using sql::BinaryOp;
  ColumnVector out;
  out.Reserve(n);
  const bool both_int = a.is_int && b.is_int;
  for (size_t i = 0; i < n; ++i) {
    if (a.IsNull(i) || b.IsNull(i)) {
      out.AppendNull();
      continue;
    }
    int cmp;
    if (both_int) {
      int64_t x = a.I(i), y = b.I(i);
      cmp = (x < y) ? -1 : (x > y ? 1 : 0);
    } else {
      double x = a.D(i), y = b.D(i);
      cmp = (x < y) ? -1 : (x > y ? 1 : 0);
    }
    bool res = false;
    switch (op) {
      case BinaryOp::kEq: res = cmp == 0; break;
      case BinaryOp::kNe: res = cmp != 0; break;
      case BinaryOp::kLt: res = cmp < 0; break;
      case BinaryOp::kLe: res = cmp <= 0; break;
      case BinaryOp::kGt: res = cmp > 0; break;
      default: res = cmp >= 0; break;  // kGe
    }
    out.AppendBool(res);
  }
  return VectorRef::FromOwned(std::move(out));
}

/// Numeric +,-,*,/ kernel with the scalar path's type rules: both-int
/// stays int64 (division only when evenly divisible), anything else is
/// double; division by zero and NULL operands yield NULL.
VectorRef ArithKernel(sql::BinaryOp op, const NumSide& a, const NumSide& b,
                      size_t n) {
  using sql::BinaryOp;
  ColumnVector out;
  out.Reserve(n);
  const bool both_int = a.is_int && b.is_int;
  for (size_t i = 0; i < n; ++i) {
    if (a.IsNull(i) || b.IsNull(i)) {
      out.AppendNull();
      continue;
    }
    if (op == BinaryOp::kDiv) {
      double x = a.D(i), y = b.D(i);
      if (y == 0.0) {
        out.AppendNull();
      } else if (both_int && a.I(i) % b.I(i) == 0) {
        out.AppendInt64(a.I(i) / b.I(i));
      } else {
        out.AppendDouble(x / y);
      }
      continue;
    }
    if (both_int) {
      int64_t x = a.I(i), y = b.I(i);
      switch (op) {
        case BinaryOp::kAdd: out.AppendInt64(x + y); break;
        case BinaryOp::kSub: out.AppendInt64(x - y); break;
        default: out.AppendInt64(x * y); break;  // kMul
      }
    } else {
      double x = a.D(i), y = b.D(i);
      switch (op) {
        case BinaryOp::kAdd: out.AppendDouble(x + y); break;
        case BinaryOp::kSub: out.AppendDouble(x - y); break;
        default: out.AppendDouble(x * y); break;
      }
    }
  }
  return VectorRef::FromOwned(std::move(out));
}

/// Three-valued AND/OR over boolean operands.
VectorRef LogicKernel(sql::BinaryOp op, const BoolSide& a, const BoolSide& b,
                      size_t n) {
  ColumnVector out;
  out.Reserve(n);
  const bool is_and = op == sql::BinaryOp::kAnd;
  for (size_t i = 0; i < n; ++i) {
    int x = a.Truth(i), y = b.Truth(i);
    if (is_and) {
      if (x == 0 || y == 0) {
        out.AppendBool(false);
      } else if (x == 2 || y == 2) {
        out.AppendNull();
      } else {
        out.AppendBool(true);
      }
    } else {
      if (x == 1 || y == 1) {
        out.AppendBool(true);
      } else if (x == 2 || y == 2) {
        out.AppendNull();
      } else {
        out.AppendBool(false);
      }
    }
  }
  return VectorRef::FromOwned(std::move(out));
}

/// Combines one eager node elementwise from already-vectorized children
/// via the shared CombineScalarNode — exact scalar semantics, used when no
/// typed kernel applies (strings, scalar functions, boxed columns, ...).
Result<VectorRef> ElementwiseCombine(const sql::Expr& expr,
                                     const std::vector<VectorRef>& kids,
                                     size_t n) {
  ColumnVector out;
  out.Reserve(n);
  std::vector<Value> vals(kids.size());
  for (size_t i = 0; i < n; ++i) {
    for (size_t k = 0; k < kids.size(); ++k) vals[k] = kids[k].At(i);
    GRIDDB_ASSIGN_OR_RETURN(Value v, CombineScalarNode(expr, vals));
    out.Append(std::move(v));
  }
  return VectorRef::FromOwned(std::move(out));
}

/// Whole-node elementwise fallback through the shared scalar interpreter.
/// Used for the lazy node kinds (CASE, IN) whose children must not be
/// evaluated eagerly.
Result<VectorRef> ElementwiseEval(const sql::Expr& expr, const Scope& scope,
                                  const RowBatch& batch) {
  ColumnVector out;
  out.Reserve(batch.rows);
  for (size_t i = 0; i < batch.rows; ++i) {
    GRIDDB_ASSIGN_OR_RETURN(Value v, Eval(expr, scope, batch, i));
    out.Append(std::move(v));
  }
  return VectorRef::FromOwned(std::move(out));
}

}  // namespace

Result<VectorRef> EvalVector(const sql::Expr& expr, const Scope& scope,
                             const RowBatch& batch) {
  const size_t n = batch.rows;
  switch (expr.kind) {
    case sql::Expr::Kind::kLiteral:
      return VectorRef::Literal(expr.literal, n);
    case sql::Expr::Kind::kColumn: {
      GRIDDB_ASSIGN_OR_RETURN(size_t idx, scope.Resolve(expr.column_ref));
      if (idx >= batch.cols.size()) return Internal("row narrower than scope");
      return VectorRef::Borrowed(&batch.cols[idx], n);
    }
    case sql::Expr::Kind::kStar:
      return InvalidArgument("'*' is only valid in SELECT lists and COUNT(*)");
    case sql::Expr::Kind::kUnary: {
      GRIDDB_ASSIGN_OR_RETURN(VectorRef c,
                              EvalVector(*expr.children[0], scope, batch));
      if (expr.unary_op == sql::UnaryOp::kNot) {
        BoolSide s = AsBoolSide(c);
        if (s.valid) {
          ColumnVector out;
          out.Reserve(n);
          for (size_t i = 0; i < n; ++i) {
            int t = s.Truth(i);
            if (t == 2) {
              out.AppendNull();
            } else {
              out.AppendBool(t == 0);
            }
          }
          return VectorRef::FromOwned(std::move(out));
        }
      } else {
        NumSide s = AsNum(c);
        if (s.valid) {
          ColumnVector out;
          out.Reserve(n);
          for (size_t i = 0; i < n; ++i) {
            if (s.IsNull(i)) {
              out.AppendNull();
            } else if (s.is_int) {
              out.AppendInt64(-s.I(i));
            } else {
              out.AppendDouble(-s.D(i));
            }
          }
          return VectorRef::FromOwned(std::move(out));
        }
      }
      return ElementwiseCombine(expr, {std::move(c)}, n);
    }
    case sql::Expr::Kind::kBinary: {
      GRIDDB_ASSIGN_OR_RETURN(VectorRef l,
                              EvalVector(*expr.children[0], scope, batch));
      GRIDDB_ASSIGN_OR_RETURN(VectorRef r,
                              EvalVector(*expr.children[1], scope, batch));
      using sql::BinaryOp;
      BinaryOp op = expr.binary_op;
      if (op == BinaryOp::kAnd || op == BinaryOp::kOr) {
        BoolSide a = AsBoolSide(l), b = AsBoolSide(r);
        if (a.valid && b.valid) return LogicKernel(op, a, b, n);
      } else if (IsComparison(op)) {
        NumSide a = AsNum(l), b = AsNum(r);
        if (a.valid && b.valid) return CompareKernel(op, a, b, n);
      } else if (op == BinaryOp::kAdd || op == BinaryOp::kSub ||
                 op == BinaryOp::kMul || op == BinaryOp::kDiv) {
        NumSide a = AsNum(l), b = AsNum(r);
        if (a.valid && b.valid) return ArithKernel(op, a, b, n);
      }
      std::vector<VectorRef> kids;
      kids.push_back(std::move(l));
      kids.push_back(std::move(r));
      return ElementwiseCombine(expr, kids, n);
    }
    case sql::Expr::Kind::kFunction: {
      if (IsAggregateFunction(expr.function_name)) {
        return InvalidArgument("aggregate " + expr.function_name +
                               " not allowed in this context");
      }
      std::vector<VectorRef> kids;
      kids.reserve(expr.children.size());
      for (const sql::ExprPtr& child : expr.children) {
        GRIDDB_ASSIGN_OR_RETURN(VectorRef c, EvalVector(*child, scope, batch));
        kids.push_back(std::move(c));
      }
      return ElementwiseCombine(expr, kids, n);
    }
    case sql::Expr::Kind::kBetween:
    case sql::Expr::Kind::kLike: {
      std::vector<VectorRef> kids;
      kids.reserve(expr.children.size());
      for (const sql::ExprPtr& child : expr.children) {
        GRIDDB_ASSIGN_OR_RETURN(VectorRef c, EvalVector(*child, scope, batch));
        kids.push_back(std::move(c));
      }
      return ElementwiseCombine(expr, kids, n);
    }
    case sql::Expr::Kind::kIsNull: {
      GRIDDB_ASSIGN_OR_RETURN(VectorRef c,
                              EvalVector(*expr.children[0], scope, batch));
      ColumnVector out;
      out.Reserve(n);
      for (size_t i = 0; i < n; ++i) {
        bool is_null = c.IsNull(i);
        out.AppendBool(expr.negated ? !is_null : is_null);
      }
      return VectorRef::FromOwned(std::move(out));
    }
    case sql::Expr::Kind::kIn:
    case sql::Expr::Kind::kCase:
      // Lazy node kinds: CASE stops at the first taken WHEN and IN
      // short-circuits on match (and skips the list entirely for a NULL
      // needle). Eager child evaluation could raise errors the row path
      // never reaches, so these always take the scalar fallback.
      return ElementwiseEval(expr, scope, batch);
  }
  return Internal("unreachable expression kind");
}

Status SelectTruthy(const VectorRef& v, std::vector<uint32_t>& out) {
  const size_t n = v.rows();
  if (n == 0) return Status::Ok();
  if (v.is_literal()) {
    const Value& l = v.literal();
    if (l.is_null()) return Status::Ok();
    GRIDDB_ASSIGN_OR_RETURN(bool b, l.AsBool());
    if (b) {
      for (size_t i = 0; i < n; ++i) out.push_back(static_cast<uint32_t>(i));
    }
    return Status::Ok();
  }
  const ColumnVector& c = v.vec();
  switch (c.rep()) {
    case ColumnVector::Rep::kNone:
      return Status::Ok();  // all NULL: WHERE drops the row
    case ColumnVector::Rep::kBool:
      for (size_t i = 0; i < n; ++i) {
        if (!c.IsNull(i) && c.bools()[i]) out.push_back(static_cast<uint32_t>(i));
      }
      return Status::Ok();
    case ColumnVector::Rep::kInt64:
      for (size_t i = 0; i < n; ++i) {
        if (!c.IsNull(i) && c.ints()[i] != 0) {
          out.push_back(static_cast<uint32_t>(i));
        }
      }
      return Status::Ok();
    case ColumnVector::Rep::kDouble:
      for (size_t i = 0; i < n; ++i) {
        if (!c.IsNull(i) && c.doubles()[i] != 0.0) {
          out.push_back(static_cast<uint32_t>(i));
        }
      }
      return Status::Ok();
    default:
      // Strings and boxed values: go through AsBool per element so a
      // non-boolean predicate value raises the same type error, at the
      // same first offending row, as the row path.
      for (size_t i = 0; i < n; ++i) {
        if (c.IsNull(i)) continue;
        GRIDDB_ASSIGN_OR_RETURN(bool b, c.Get(i).AsBool());
        if (b) out.push_back(static_cast<uint32_t>(i));
      }
      return Status::Ok();
  }
}

}  // namespace griddb::engine
