// Typed column vectors and row batches: the unit of work of the
// vectorized executor (DESIGN.md §15).
//
// A ColumnVector holds one column of a batch in a typed payload array
// (int64/double/bool/string) plus a packed null bitmap, so the hot
// kernels in vector_eval.cc run over contiguous primitive arrays instead
// of per-cell std::variant dispatch. Columns whose cells mix types — the
// engine's Value model is dynamically typed per cell, so `x / 2` can
// legally yield INT64 for even rows and DOUBLE for odd ones — degrade to
// a boxed `std::vector<Value>` payload (Rep::kValue); kernels then fall
// back to the exact scalar semantics elementwise, which is what keeps
// vectorized output byte-identical to the reference row executor.
//
// A RowBatch is a set of equally-sized ColumnVectors; the executor
// streams batches of ExecOptions::batch_rows (default 1024) rows between
// operators and checks cancellation once per batch.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "griddb/storage/result_set.h"
#include "griddb/storage/value.h"
#include "griddb/util/status.h"

namespace griddb::engine {

class ColumnVector {
 public:
  /// Physical representation of the payload. kNone = no non-null cell
  /// appended yet (an all-null column stays kNone and reads as NULL).
  enum class Rep : uint8_t { kNone, kInt64, kDouble, kBool, kString, kValue };

  /// Gather index meaning "emit NULL" (left-join padding).
  static constexpr uint32_t kNullIndex = UINT32_MAX;

  ColumnVector() = default;

  size_t size() const { return size_; }
  Rep rep() const { return rep_; }
  bool has_nulls() const { return null_count_ > 0; }
  size_t null_count() const { return null_count_; }

  bool IsNull(size_t i) const {
    // The bitmap grows lazily to the word holding the highest null bit;
    // rows past it are non-null by construction.
    size_t word = i >> 6;
    return word < nulls_.size() && (nulls_[word] >> (i & 63)) & 1;
  }

  /// Boxes cell `i` back into a Value. Type and bit pattern round-trip
  /// exactly (doubles are never re-parsed or re-formatted).
  storage::Value Get(size_t i) const;

  void Reserve(size_t n);

  void AppendNull();
  void Append(const storage::Value& v);
  void Append(storage::Value&& v);
  void AppendInt64(int64_t v);
  void AppendDouble(double v);
  void AppendBool(bool v);
  void AppendString(std::string v);

  /// Appends src[start, start+len). Same-rep payloads bulk-copy.
  void AppendSlice(const ColumnVector& src, size_t start, size_t len);

  /// Appends src[idx[k]] for k in [0, n); idx[k] == kNullIndex appends
  /// NULL. This is the join/filter gather primitive.
  void AppendGather(const ColumnVector& src, const uint32_t* idx, size_t n);

  /// Approximate resident bytes of payload + bitmap (for the admission
  /// merge-memory accounting and the batch_bytes_peak gauge).
  size_t ByteSize() const;

  // Typed payload access; valid only while rep() matches. Null cells hold
  // unspecified placeholder payloads — consult IsNull first.
  const int64_t* ints() const { return i64_.data(); }
  const double* doubles() const { return f64_.data(); }
  const uint8_t* bools() const { return b8_.data(); }
  const std::string* strings() const { return str_.data(); }
  const storage::Value* values() const { return boxed_.data(); }

 private:
  void SetNullBit(size_t i);
  /// Locks in a payload representation, back-filling placeholders for any
  /// leading NULLs appended while the rep was still kNone.
  void Decide(Rep r);
  /// Converts a typed payload to boxed Values (first mixed-type append).
  void BoxAll();

  Rep rep_ = Rep::kNone;
  size_t size_ = 0;
  size_t null_count_ = 0;
  std::vector<uint64_t> nulls_;  // bit set => NULL; sized lazily
  std::vector<int64_t> i64_;
  std::vector<double> f64_;
  std::vector<uint8_t> b8_;
  std::vector<std::string> str_;
  std::vector<storage::Value> boxed_;
};

/// A batch of rows in columnar form. Every column has exactly `rows`
/// entries.
struct RowBatch {
  std::vector<ColumnVector> cols;
  size_t rows = 0;

  size_t num_columns() const { return cols.size(); }
  void Clear() {
    cols.clear();
    rows = 0;
  }
  size_t ByteSize() const;
};

/// Columnarizes rows[start, start+len) into `out` (appending). Every row
/// must have exactly `out.cols.size()` cells; `out.rows` grows by `len`.
Status AppendRowsToBatch(const std::vector<storage::Row>& rows, size_t start,
                         size_t len, RowBatch& out);

/// Boxes the whole batch back into wire-facing rows (appending to `out`).
void MaterializeRows(const RowBatch& batch, std::vector<storage::Row>& out);

/// Gathers whole rows: out.cols[c][k] = src.cols[c][idx[k]], with
/// kNullIndex producing NULL cells.
RowBatch GatherBatch(const RowBatch& src, const uint32_t* idx, size_t n);

}  // namespace griddb::engine
