#include "griddb/engine/eval.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "griddb/util/strings.h"

namespace griddb::engine {

using storage::DataType;
using storage::Row;
using storage::Value;

void Scope::AddResultSet(const std::string& qualifier,
                         const storage::ResultSet& rs) {
  for (const std::string& col : rs.columns) Add(qualifier, col);
}

void Scope::AddColumns(const std::string& qualifier,
                       const std::vector<std::string>& columns) {
  for (const std::string& col : columns) Add(qualifier, col);
}

Result<size_t> Scope::Resolve(const sql::ColumnRef& ref) const {
  size_t found = entries_.size();
  size_t matches = 0;
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (!EqualsIgnoreCase(entries_[i].column, ref.column)) continue;
    if (!ref.table.empty() && !EqualsIgnoreCase(entries_[i].qualifier, ref.table)) {
      continue;
    }
    found = i;
    ++matches;
  }
  if (matches == 0) {
    return NotFound("unknown column '" + ref.ToString() + "'");
  }
  if (matches > 1 && ref.table.empty()) {
    return InvalidArgument("ambiguous column '" + ref.column + "'");
  }
  // With a qualifier, duplicates can only come from the same table being
  // scoped twice, which the executor prevents; first match wins.
  return found;
}

std::vector<size_t> Scope::ColumnsOf(const std::string& qualifier) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (EqualsIgnoreCase(entries_[i].qualifier, qualifier)) out.push_back(i);
  }
  return out;
}

bool IsAggregateFunction(const std::string& upper_name) {
  return upper_name == "COUNT" || upper_name == "SUM" || upper_name == "AVG" ||
         upper_name == "MIN" || upper_name == "MAX";
}

bool ContainsAggregate(const sql::Expr& expr) {
  if (expr.kind == sql::Expr::Kind::kFunction &&
      IsAggregateFunction(expr.function_name)) {
    return true;
  }
  for (const sql::ExprPtr& child : expr.children) {
    if (ContainsAggregate(*child)) return true;
  }
  return false;
}

bool LikeMatch(std::string_view text, std::string_view pattern) {
  // Iterative glob matcher with backtracking on the last '%'.
  size_t t = 0, p = 0;
  size_t star_p = std::string_view::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

namespace {

Result<Value> EvalBinary(const sql::Expr& expr, const Value& lhs,
                         const Value& rhs) {
  using sql::BinaryOp;
  BinaryOp op = expr.binary_op;

  // Logical operators implement SQL-ish three-valued logic.
  if (op == BinaryOp::kAnd || op == BinaryOp::kOr) {
    // NULL treated as "unknown": AND with false is false, OR with true is
    // true, otherwise NULL.
    auto truth = [](const Value& v) -> Result<int> {  // 0 false, 1 true, 2 null
      if (v.is_null()) return 2;
      GRIDDB_ASSIGN_OR_RETURN(bool b, v.AsBool());
      return b ? 1 : 0;
    };
    GRIDDB_ASSIGN_OR_RETURN(int a, truth(lhs));
    GRIDDB_ASSIGN_OR_RETURN(int b, truth(rhs));
    if (op == BinaryOp::kAnd) {
      if (a == 0 || b == 0) return Value(false);
      if (a == 2 || b == 2) return Value::Null();
      return Value(true);
    }
    if (a == 1 || b == 1) return Value(true);
    if (a == 2 || b == 2) return Value::Null();
    return Value(false);
  }

  if (lhs.is_null() || rhs.is_null()) return Value::Null();

  switch (op) {
    case BinaryOp::kEq: return Value(lhs.Compare(rhs) == 0);
    case BinaryOp::kNe: return Value(lhs.Compare(rhs) != 0);
    case BinaryOp::kLt: return Value(lhs.Compare(rhs) < 0);
    case BinaryOp::kLe: return Value(lhs.Compare(rhs) <= 0);
    case BinaryOp::kGt: return Value(lhs.Compare(rhs) > 0);
    case BinaryOp::kGe: return Value(lhs.Compare(rhs) >= 0);
    case BinaryOp::kConcat:
      return Value(lhs.ToString() + rhs.ToString());
    default:
      break;
  }

  // Arithmetic. Integer op integer stays integer (with / truncating only
  // when evenly divisible is NOT standard; we follow the common C-like
  // integer division used by MySQL DIV? No: use double division like
  // Oracle/MySQL '/' and keep +,-,*,% integral when both sides are).
  bool both_int = lhs.type() == DataType::kInt64 && rhs.type() == DataType::kInt64;
  switch (op) {
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul: {
      if (both_int) {
        int64_t a = lhs.AsInt64Strict(), b = rhs.AsInt64Strict();
        switch (op) {
          case BinaryOp::kAdd: return Value(a + b);
          case BinaryOp::kSub: return Value(a - b);
          default: return Value(a * b);
        }
      }
      GRIDDB_ASSIGN_OR_RETURN(double a, lhs.AsDouble());
      GRIDDB_ASSIGN_OR_RETURN(double b, rhs.AsDouble());
      switch (op) {
        case BinaryOp::kAdd: return Value(a + b);
        case BinaryOp::kSub: return Value(a - b);
        default: return Value(a * b);
      }
    }
    case BinaryOp::kDiv: {
      GRIDDB_ASSIGN_OR_RETURN(double a, lhs.AsDouble());
      GRIDDB_ASSIGN_OR_RETURN(double b, rhs.AsDouble());
      if (b == 0.0) return Value::Null();  // SQL: division by zero -> NULL
      if (both_int) {
        int64_t ia = lhs.AsInt64Strict(), ib = rhs.AsInt64Strict();
        if (ia % ib == 0) return Value(ia / ib);
      }
      return Value(a / b);
    }
    case BinaryOp::kMod: {
      GRIDDB_ASSIGN_OR_RETURN(int64_t a, lhs.AsInt64());
      GRIDDB_ASSIGN_OR_RETURN(int64_t b, rhs.AsInt64());
      if (b == 0) return Value::Null();
      return Value(a % b);
    }
    default:
      return Internal("unhandled binary operator");
  }
}

Result<Value> EvalScalarFunction(const sql::Expr& expr,
                                 std::vector<Value> args) {
  const std::string& name = expr.function_name;
  auto arity = [&](size_t lo, size_t hi) -> Status {
    if (args.size() < lo || args.size() > hi) {
      return InvalidArgument(name + " expects between " + std::to_string(lo) +
                             " and " + std::to_string(hi) + " arguments");
    }
    return Status::Ok();
  };

  if (name == "COALESCE" || name == "IFNULL" || name == "NVL") {
    for (const Value& v : args) {
      if (!v.is_null()) return v;
    }
    return Value::Null();
  }
  if (name == "NULLIF") {
    GRIDDB_RETURN_IF_ERROR(arity(2, 2));
    if (!args[0].is_null() && !args[1].is_null() &&
        args[0].Compare(args[1]) == 0) {
      return Value::Null();
    }
    return args[0];
  }
  if (name == "CONCAT") {
    std::string out;
    for (const Value& v : args) {
      if (!v.is_null()) out += v.ToString();
    }
    return Value(out);
  }

  // Remaining functions propagate NULL from any argument.
  for (const Value& v : args) {
    if (v.is_null()) return Value::Null();
  }

  if (name == "ABS") {
    GRIDDB_RETURN_IF_ERROR(arity(1, 1));
    if (args[0].type() == DataType::kInt64) {
      return Value(std::abs(args[0].AsInt64Strict()));
    }
    GRIDDB_ASSIGN_OR_RETURN(double v, args[0].AsDouble());
    return Value(std::fabs(v));
  }
  if (name == "LENGTH" || name == "LEN") {
    GRIDDB_RETURN_IF_ERROR(arity(1, 1));
    return Value(static_cast<int64_t>(args[0].ToString().size()));
  }
  if (name == "UPPER") {
    GRIDDB_RETURN_IF_ERROR(arity(1, 1));
    return Value(ToUpper(args[0].ToString()));
  }
  if (name == "LOWER") {
    GRIDDB_RETURN_IF_ERROR(arity(1, 1));
    return Value(ToLower(args[0].ToString()));
  }
  if (name == "SUBSTR" || name == "SUBSTRING") {
    GRIDDB_RETURN_IF_ERROR(arity(2, 3));
    std::string s = args[0].ToString();
    GRIDDB_ASSIGN_OR_RETURN(int64_t start, args[1].AsInt64());
    int64_t from = std::max<int64_t>(1, start) - 1;  // SQL is 1-based
    if (from >= static_cast<int64_t>(s.size())) return Value(std::string());
    size_t len = s.size() - static_cast<size_t>(from);
    if (args.size() == 3) {
      GRIDDB_ASSIGN_OR_RETURN(int64_t n, args[2].AsInt64());
      if (n < 0) n = 0;
      len = std::min<size_t>(len, static_cast<size_t>(n));
    }
    return Value(s.substr(static_cast<size_t>(from), len));
  }
  if (name == "ROUND") {
    GRIDDB_RETURN_IF_ERROR(arity(1, 2));
    GRIDDB_ASSIGN_OR_RETURN(double v, args[0].AsDouble());
    int64_t digits = 0;
    if (args.size() == 2) {
      GRIDDB_ASSIGN_OR_RETURN(digits, args[1].AsInt64());
    }
    double scale = std::pow(10.0, static_cast<double>(digits));
    return Value(std::round(v * scale) / scale);
  }
  if (name == "FLOOR") {
    GRIDDB_RETURN_IF_ERROR(arity(1, 1));
    GRIDDB_ASSIGN_OR_RETURN(double v, args[0].AsDouble());
    return Value(static_cast<int64_t>(std::floor(v)));
  }
  if (name == "CEIL" || name == "CEILING") {
    GRIDDB_RETURN_IF_ERROR(arity(1, 1));
    GRIDDB_ASSIGN_OR_RETURN(double v, args[0].AsDouble());
    return Value(static_cast<int64_t>(std::ceil(v)));
  }
  if (name == "SQRT") {
    GRIDDB_RETURN_IF_ERROR(arity(1, 1));
    GRIDDB_ASSIGN_OR_RETURN(double v, args[0].AsDouble());
    if (v < 0) return Value::Null();
    return Value(std::sqrt(v));
  }
  if (name == "POWER" || name == "POW") {
    GRIDDB_RETURN_IF_ERROR(arity(2, 2));
    GRIDDB_ASSIGN_OR_RETURN(double a, args[0].AsDouble());
    GRIDDB_ASSIGN_OR_RETURN(double b, args[1].AsDouble());
    return Value(std::pow(a, b));
  }
  if (name == "MOD") {
    GRIDDB_RETURN_IF_ERROR(arity(2, 2));
    GRIDDB_ASSIGN_OR_RETURN(int64_t a, args[0].AsInt64());
    GRIDDB_ASSIGN_OR_RETURN(int64_t b, args[1].AsInt64());
    if (b == 0) return Value::Null();
    return Value(a % b);
  }
  if (name == "TRIM" || name == "LTRIM" || name == "RTRIM") {
    GRIDDB_RETURN_IF_ERROR(arity(1, 1));
    std::string s = args[0].ToString();
    size_t begin = 0, end = s.size();
    if (name != "RTRIM") {
      while (begin < end && s[begin] == ' ') ++begin;
    }
    if (name != "LTRIM") {
      while (end > begin && s[end - 1] == ' ') --end;
    }
    return Value(s.substr(begin, end - begin));
  }
  if (name == "REPLACE") {
    GRIDDB_RETURN_IF_ERROR(arity(3, 3));
    return Value(ReplaceAll(args[0].ToString(), args[1].ToString(),
                            args[2].ToString()));
  }
  if (name == "INSTR") {
    // 1-based position of needle in haystack; 0 when absent (SQL style).
    GRIDDB_RETURN_IF_ERROR(arity(2, 2));
    size_t pos = args[0].ToString().find(args[1].ToString());
    return Value(pos == std::string::npos ? int64_t{0}
                                          : static_cast<int64_t>(pos + 1));
  }
  if (name == "SIGN") {
    GRIDDB_RETURN_IF_ERROR(arity(1, 1));
    GRIDDB_ASSIGN_OR_RETURN(double v, args[0].AsDouble());
    return Value(int64_t{v > 0 ? 1 : (v < 0 ? -1 : 0)});
  }
  if (name == "EXP") {
    GRIDDB_RETURN_IF_ERROR(arity(1, 1));
    GRIDDB_ASSIGN_OR_RETURN(double v, args[0].AsDouble());
    return Value(std::exp(v));
  }
  if (name == "LN" || name == "LOG") {
    GRIDDB_RETURN_IF_ERROR(arity(1, 1));
    GRIDDB_ASSIGN_OR_RETURN(double v, args[0].AsDouble());
    if (v <= 0) return Value::Null();
    return Value(std::log(v));
  }
  return Unsupported("unknown function " + name);
}

/// Reads the cells of one batch row through the same interface as
/// storage::Row, so EvalImpl below compiles identically for both.
class BatchRowView {
 public:
  BatchRowView(const RowBatch& batch, size_t row) : batch_(batch), row_(row) {}
  size_t size() const { return batch_.cols.size(); }
  Value operator[](size_t i) const { return batch_.cols[i].Get(row_); }

 private:
  const RowBatch& batch_;
  size_t row_;
};

/// The one scalar interpreter, templated over the row representation.
/// RowT provides size() and operator[](size_t) yielding a Value (by value
/// or const reference).
template <typename RowT>
Result<Value> EvalImpl(const sql::Expr& expr, const Scope& scope,
                       const RowT& row) {
  switch (expr.kind) {
    case sql::Expr::Kind::kLiteral:
      return expr.literal;
    case sql::Expr::Kind::kColumn: {
      GRIDDB_ASSIGN_OR_RETURN(size_t idx, scope.Resolve(expr.column_ref));
      if (idx >= row.size()) return Internal("row narrower than scope");
      return row[idx];
    }
    case sql::Expr::Kind::kStar:
      return InvalidArgument("'*' is only valid in SELECT lists and COUNT(*)");
    case sql::Expr::Kind::kUnary: {
      GRIDDB_ASSIGN_OR_RETURN(Value v, EvalImpl(*expr.children[0], scope, row));
      if (v.is_null()) return Value::Null();
      if (expr.unary_op == sql::UnaryOp::kNot) {
        GRIDDB_ASSIGN_OR_RETURN(bool b, v.AsBool());
        return Value(!b);
      }
      if (v.type() == DataType::kInt64) return Value(-v.AsInt64Strict());
      GRIDDB_ASSIGN_OR_RETURN(double d, v.AsDouble());
      return Value(-d);
    }
    case sql::Expr::Kind::kBinary: {
      GRIDDB_ASSIGN_OR_RETURN(Value lhs, EvalImpl(*expr.children[0], scope, row));
      GRIDDB_ASSIGN_OR_RETURN(Value rhs, EvalImpl(*expr.children[1], scope, row));
      return EvalBinary(expr, lhs, rhs);
    }
    case sql::Expr::Kind::kFunction: {
      if (IsAggregateFunction(expr.function_name)) {
        return InvalidArgument("aggregate " + expr.function_name +
                               " not allowed in this context");
      }
      std::vector<Value> args;
      args.reserve(expr.children.size());
      for (const sql::ExprPtr& child : expr.children) {
        GRIDDB_ASSIGN_OR_RETURN(Value v, EvalImpl(*child, scope, row));
        args.push_back(std::move(v));
      }
      return EvalScalarFunction(expr, std::move(args));
    }
    case sql::Expr::Kind::kIn: {
      GRIDDB_ASSIGN_OR_RETURN(Value needle,
                              EvalImpl(*expr.children[0], scope, row));
      if (needle.is_null()) return Value::Null();
      bool saw_null = false;
      for (size_t i = 1; i < expr.children.size(); ++i) {
        GRIDDB_ASSIGN_OR_RETURN(Value v, EvalImpl(*expr.children[i], scope, row));
        if (v.is_null()) {
          saw_null = true;
          continue;
        }
        if (needle.Compare(v) == 0) return Value(!expr.negated);
      }
      if (saw_null) return Value::Null();
      return Value(expr.negated);
    }
    case sql::Expr::Kind::kBetween: {
      GRIDDB_ASSIGN_OR_RETURN(Value v, EvalImpl(*expr.children[0], scope, row));
      GRIDDB_ASSIGN_OR_RETURN(Value lo, EvalImpl(*expr.children[1], scope, row));
      GRIDDB_ASSIGN_OR_RETURN(Value hi, EvalImpl(*expr.children[2], scope, row));
      if (v.is_null() || lo.is_null() || hi.is_null()) return Value::Null();
      bool in_range = v.Compare(lo) >= 0 && v.Compare(hi) <= 0;
      return Value(expr.negated ? !in_range : in_range);
    }
    case sql::Expr::Kind::kLike: {
      GRIDDB_ASSIGN_OR_RETURN(Value text, EvalImpl(*expr.children[0], scope, row));
      GRIDDB_ASSIGN_OR_RETURN(Value pattern,
                              EvalImpl(*expr.children[1], scope, row));
      if (text.is_null() || pattern.is_null()) return Value::Null();
      bool match = LikeMatch(text.ToString(), pattern.ToString());
      return Value(expr.negated ? !match : match);
    }
    case sql::Expr::Kind::kIsNull: {
      GRIDDB_ASSIGN_OR_RETURN(Value v, EvalImpl(*expr.children[0], scope, row));
      bool is_null = v.is_null();
      return Value(expr.negated ? !is_null : is_null);
    }
    case sql::Expr::Kind::kCase: {
      size_t index = 0;
      Value operand;
      if (expr.case_has_operand) {
        GRIDDB_ASSIGN_OR_RETURN(operand,
                                EvalImpl(*expr.children[index++], scope, row));
      }
      size_t end = expr.children.size() - (expr.case_has_else ? 1 : 0);
      while (index < end) {
        GRIDDB_ASSIGN_OR_RETURN(Value when,
                                EvalImpl(*expr.children[index], scope, row));
        bool taken;
        if (expr.case_has_operand) {
          // Simple CASE: NULL never matches (SQL semantics).
          taken = !operand.is_null() && !when.is_null() &&
                  operand.Compare(when) == 0;
        } else {
          if (when.is_null()) {
            taken = false;
          } else {
            GRIDDB_ASSIGN_OR_RETURN(taken, when.AsBool());
          }
        }
        if (taken) return EvalImpl(*expr.children[index + 1], scope, row);
        index += 2;
      }
      if (expr.case_has_else) {
        return EvalImpl(*expr.children.back(), scope, row);
      }
      return Value::Null();
    }
  }
  return Internal("unreachable expression kind");
}

}  // namespace

Result<Value> Eval(const sql::Expr& expr, const Scope& scope,
                   const Row& row) {
  return EvalImpl(expr, scope, row);
}

Result<Value> Eval(const sql::Expr& expr, const Scope& scope,
                   const RowBatch& batch, size_t row) {
  return EvalImpl(expr, scope, BatchRowView(batch, row));
}

Result<Value> CombineScalarNode(const sql::Expr& expr,
                                std::vector<Value> children) {
  // Rebuild the node with the child values folded to literals and
  // re-evaluate. Literal children cannot fail, so the eager combine is
  // observationally identical to the lazy row evaluator for this node.
  sql::Expr folded;
  folded.kind = expr.kind;
  folded.literal = expr.literal;
  folded.column_ref = expr.column_ref;
  folded.unary_op = expr.unary_op;
  folded.binary_op = expr.binary_op;
  folded.function_name = expr.function_name;
  folded.distinct_arg = expr.distinct_arg;
  folded.negated = expr.negated;
  folded.case_has_operand = expr.case_has_operand;
  folded.case_has_else = expr.case_has_else;
  for (Value& v : children) {
    folded.children.push_back(sql::MakeLiteral(std::move(v)));
  }
  static const Scope kEmptyScope;
  static const Row kEmptyRow;
  return Eval(folded, kEmptyScope, kEmptyRow);
}

Status CheckAggregateShape(const sql::Expr& agg, bool& count_star) {
  const std::string& name = agg.function_name;
  count_star = name == "COUNT" && agg.children.size() == 1 &&
               agg.children[0]->kind == sql::Expr::Kind::kStar;
  if (name == "COUNT" && agg.children.empty()) {
    return InvalidArgument("COUNT requires an argument");
  }
  if (!count_star && agg.children.size() != 1) {
    return InvalidArgument(name + " expects exactly one argument");
  }
  return Status::Ok();
}

Result<Value> AggregateValues(const sql::Expr& agg, std::vector<Value> values) {
  const std::string& name = agg.function_name;

  if (agg.distinct_arg) {
    std::vector<Value> unique;
    for (Value& v : values) {
      bool seen = false;
      for (const Value& u : unique) {
        if (u.Compare(v) == 0) {
          seen = true;
          break;
        }
      }
      if (!seen) unique.push_back(std::move(v));
    }
    values = std::move(unique);
  }

  if (name == "COUNT") return Value(static_cast<int64_t>(values.size()));
  if (values.empty()) return Value::Null();

  if (name == "MIN" || name == "MAX") {
    Value best = values[0];
    for (const Value& v : values) {
      int cmp = v.Compare(best);
      if ((name == "MIN" && cmp < 0) || (name == "MAX" && cmp > 0)) best = v;
    }
    return best;
  }

  // SUM / AVG: integer-preserving when every input is integral.
  bool all_int = true;
  for (const Value& v : values) {
    if (v.type() != DataType::kInt64) {
      all_int = false;
      break;
    }
  }
  if (name == "SUM") {
    if (all_int) {
      int64_t total = 0;
      for (const Value& v : values) total += v.AsInt64Strict();
      return Value(total);
    }
    double total = 0;
    for (const Value& v : values) {
      GRIDDB_ASSIGN_OR_RETURN(double d, v.AsDouble());
      total += d;
    }
    return Value(total);
  }
  if (name == "AVG") {
    double total = 0;
    for (const Value& v : values) {
      GRIDDB_ASSIGN_OR_RETURN(double d, v.AsDouble());
      total += d;
    }
    return Value(total / static_cast<double>(values.size()));
  }
  return Unsupported("unknown aggregate " + name);
}

namespace {

Result<Value> ComputeAggregate(const sql::Expr& agg, const Scope& scope,
                               const std::vector<const Row*>& rows) {
  bool count_star = false;
  GRIDDB_RETURN_IF_ERROR(CheckAggregateShape(agg, count_star));
  if (count_star) {
    return Value(static_cast<int64_t>(rows.size()));
  }

  std::vector<Value> values;
  values.reserve(rows.size());
  for (const Row* row : rows) {
    GRIDDB_ASSIGN_OR_RETURN(Value v, Eval(*agg.children[0], scope, *row));
    if (!v.is_null()) values.push_back(std::move(v));
  }
  return AggregateValues(agg, std::move(values));
}

}  // namespace

Result<Value> EvalGrouped(const sql::Expr& expr, const Scope& scope,
                          const std::vector<const Row*>& group_rows) {
  if (expr.kind == sql::Expr::Kind::kFunction &&
      IsAggregateFunction(expr.function_name)) {
    return ComputeAggregate(expr, scope, group_rows);
  }
  if (expr.children.empty()) {
    if (group_rows.empty()) return Value::Null();
    return Eval(expr, scope, *group_rows.front());
  }
  // Grouped interior nodes are eager: every child (including both CASE
  // branches) folds to a per-group value first, then the node combines.
  std::vector<Value> children;
  children.reserve(expr.children.size());
  for (const sql::ExprPtr& child : expr.children) {
    GRIDDB_ASSIGN_OR_RETURN(Value v, EvalGrouped(*child, scope, group_rows));
    children.push_back(std::move(v));
  }
  return CombineScalarNode(expr, std::move(children));
}

}  // namespace griddb::engine
