// Database: one embedded vendor-flavoured SQL engine instance.
//
// Stands in for an Oracle / MySQL / MS-SQL / SQLite server in the paper's
// testbed. Each instance parses only its own dialect, exposes its own
// system-catalog virtual tables, and is internally synchronized (shared
// reads, exclusive writes) like a real server handling concurrent
// sessions.
#pragma once

#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "griddb/sql/dialect.h"
#include "griddb/sql/parser.h"
#include "griddb/storage/digest.h"
#include "griddb/storage/result_set.h"
#include "griddb/storage/table.h"
#include "griddb/util/status.h"

namespace griddb::engine {

struct ExecStats {
  size_t rows_returned = 0;
  size_t rows_affected = 0;
};

class Database {
 public:
  Database(std::string name, sql::Vendor vendor);

  const std::string& name() const { return name_; }
  sql::Vendor vendor() const { return vendor_; }
  const sql::Dialect& dialect() const { return sql::Dialect::For(vendor_); }

  /// Parses (in this engine's dialect) and executes one statement.
  Result<storage::ResultSet> Execute(std::string_view sql_text);
  Result<storage::ResultSet> Execute(std::string_view sql_text,
                                     ExecStats* stats);

  /// Executes an already-parsed SELECT (bypasses dialect parsing; used by
  /// trusted internal callers such as view materialization).
  Result<storage::ResultSet> ExecuteSelect(const sql::SelectStmt& stmt) const;

  // -- direct (non-SQL) administration used by loaders and tooling --

  Status CreateTable(storage::TableSchema schema);
  Status InsertRows(const std::string& table, std::vector<storage::Row> rows);
  Status CreateView(const std::string& name, const sql::SelectStmt& select);
  Status DropTable(const std::string& name, bool if_exists = false);

  // -- introspection (drives XSpec generation and the POOL-RAL schema API)

  bool HasTable(const std::string& name) const;
  bool HasView(const std::string& name) const;
  std::vector<std::string> TableNames() const;  ///< Base tables only, sorted.
  std::vector<std::string> ViewNames() const;
  Result<storage::TableSchema> GetSchema(const std::string& table) const;
  /// The SELECT a view is defined as (rendered in this dialect).
  Result<std::string> GetViewDefinition(const std::string& view) const;
  size_t TotalRows() const;
  size_t RowCount(const std::string& table) const;
  /// Order-insensitive content digest of a base table (anti-entropy
  /// replica verification; see storage/digest.h).
  Result<storage::TableDigest> ContentDigest(const std::string& table) const;

 private:
  class DatabaseTableSource;

  Result<storage::ResultSet> ExecuteLocked(const sql::Statement& stmt,
                                           ExecStats* stats);
  Result<storage::ResultSet> RunSelect(const sql::SelectStmt& stmt) const;
  Result<storage::ResultSet> CatalogTable(const std::string& upper_name) const;

  std::string name_;
  sql::Vendor vendor_;
  mutable std::shared_mutex mu_;
  // Keyed by lower-cased name; value keeps original-case schema.
  std::map<std::string, std::unique_ptr<storage::Table>> tables_;
  std::map<std::string, std::unique_ptr<sql::SelectStmt>> views_;
  std::map<std::string, std::string> view_original_names_;
};

}  // namespace griddb::engine
