// Batch-at-a-time SELECT execution (DESIGN.md §15).
//
// The working set flows between operators as a list of RowBatch chunks of
// at most ExecOptions::batch_rows rows each. Scan borrows table rows in
// place and columnarizes them chunk by chunk; WHERE evaluates the
// predicate once per chunk (EvalVector) and gathers survivors; joins
// build an insertion-ordered hash table and emit gathered output chunks;
// GROUP BY hashes key vectors to insertion-ordered groups and finalizes
// aggregates through the same AggregateValues the row path uses; ORDER BY
// with LIMIT runs top-K selection instead of a full sort. Cancellation is
// checked once per chunk — the same cadence as the reference executor's
// every-1024th-row probe.
//
// Parity contract: on fault-free inputs the emitted ResultSet is
// byte-identical to ExecuteSelectReferenceRows. Anything the columnar
// form cannot evaluate identically falls back — per expression to the
// shared scalar kernels (vector_eval.cc), or per query to the reference
// executor when a source yields ragged rows.
#include <algorithm>
#include <functional>
#include <list>
#include <optional>
#include <unordered_map>

#include "griddb/engine/eval.h"
#include "griddb/engine/executor_internal.h"
#include "griddb/engine/select_executor.h"
#include "griddb/engine/vector_eval.h"
#include "griddb/obs/metrics.h"
#include "griddb/util/strings.h"

namespace griddb::engine::internal {
namespace {

using storage::ResultSet;
using storage::Row;
using storage::Value;

struct EngineMetrics {
  obs::Counter* vectorized_queries;
  obs::Counter* fallbacks;
  obs::Counter* batches;
  obs::Gauge* batch_bytes_peak;
};

EngineMetrics& Metrics() {
  static EngineMetrics m{
      obs::MetricsRegistry::Default().GetCounter(
          "griddb.engine.vectorized_queries"),
      obs::MetricsRegistry::Default().GetCounter(
          "griddb.engine.reference_fallbacks"),
      obs::MetricsRegistry::Default().GetCounter("griddb.engine.batches"),
      obs::MetricsRegistry::Default().GetGauge(
          "griddb.engine.batch_bytes_peak"),
  };
  return m;
}

Status CheckCancel(const CancelToken* cancel) {
  return cancel ? cancel->Check() : Status::Ok();
}

/// The working set between operators: a scope naming the columns and the
/// rows as a sequence of columnar chunks.
struct VecWorkingSet {
  Scope scope;
  std::vector<RowBatch> chunks;
  size_t total_rows = 0;

  size_t width() const { return scope.size(); }

  void TrackPeak() const {
    size_t bytes = 0;
    for (const RowBatch& b : chunks) bytes += b.ByteSize();
    EngineMetrics& m = Metrics();
    m.batches->Add(chunks.size());
    if (static_cast<double>(bytes) > m.batch_bytes_peak->value()) {
      m.batch_bytes_peak->Set(static_cast<double>(bytes));
    }
  }
};

/// Borrows tables from the source, keeping owned copies alive (in a list,
/// so growth never moves them) when the source cannot lend rows in place.
class TableLender {
 public:
  explicit TableLender(const TableSource& source) : source_(source) {}

  Result<TableView> Borrow(const std::string& name) {
    if (std::optional<TableView> view = source_.BorrowTable(name)) {
      return *view;
    }
    GRIDDB_ASSIGN_OR_RETURN(ResultSet rs, source_.GetTable(name));
    owned_.push_back(std::move(rs));
    return TableView{owned_.back().columns, &owned_.back().rows};
  }

 private:
  const TableSource& source_;
  std::list<ResultSet> owned_;  // list: growth keeps row pointers stable
};

/// Columnarizes `rows` into chunks of at most `batch_rows`. Any row whose
/// width differs from `width` flips `ragged`: the columnar form cannot
/// reproduce the row path's access-dependent semantics there, so the
/// caller aborts to the reference executor.
Status Columnarize(const std::vector<Row>& rows, size_t width,
                   size_t batch_rows, const CancelToken* cancel,
                   std::vector<RowBatch>& out, bool& ragged) {
  for (size_t start = 0; start < rows.size(); start += batch_rows) {
    GRIDDB_RETURN_IF_ERROR(CheckCancel(cancel));
    size_t len = std::min(batch_rows, rows.size() - start);
    RowBatch batch;
    batch.cols.resize(width);
    for (ColumnVector& col : batch.cols) col.Reserve(len);
    for (size_t r = start; r < start + len; ++r) {
      const Row& row = rows[r];
      if (row.size() != width) {
        ragged = true;
        return Status::Ok();
      }
      for (size_t c = 0; c < width; ++c) batch.cols[c].Append(row[c]);
    }
    batch.rows = len;
    out.push_back(std::move(batch));
  }
  return Status::Ok();
}

/// Columnarizes a whole table into ONE batch (the join build side needs a
/// single gather target spanning every build row).
Status ColumnarizeWhole(const TableView& view, const CancelToken* cancel,
                        RowBatch& out, bool& ragged) {
  size_t width = view.columns.size();
  out.cols.resize(width);
  for (ColumnVector& col : out.cols) col.Reserve(view.rows->size());
  for (size_t r = 0; r < view.rows->size(); ++r) {
    if (r % 4096 == 0) GRIDDB_RETURN_IF_ERROR(CheckCancel(cancel));
    const Row& row = (*view.rows)[r];
    if (row.size() != width) {
      ragged = true;
      return Status::Ok();
    }
    for (size_t c = 0; c < width; ++c) out.cols[c].Append(row[c]);
  }
  out.rows = view.rows->size();
  return Status::Ok();
}

/// Hash join / nested-loop join of `right` into `ws`, columnar.
/// Output row order matches the reference executor exactly: probe rows in
/// working-set order, duplicate-key matches in build insertion order,
/// LEFT-join padding immediately after each unmatched probe row.
Status JoinIntoVec(VecWorkingSet& ws, const std::string& qualifier,
                   const TableView& right_view, sql::JoinType type,
                   const sql::Expr* on, const ExecOptions& opts,
                   bool& ragged) {
  Scope incoming_scope;
  incoming_scope.AddColumns(qualifier, right_view.columns);
  Scope combined = ws.scope;
  combined.AddColumns(qualifier, right_view.columns);

  RowBatch right;
  GRIDDB_RETURN_IF_ERROR(
      ColumnarizeWhole(right_view, opts.cancel, right, ragged));
  if (ragged) return Status::Ok();

  size_t left_width = ws.width();
  size_t right_width = right_view.columns.size();
  size_t out_width = left_width + right_width;
  std::vector<RowBatch> out_chunks;
  size_t out_rows = 0;

  std::optional<EquiJoinKey> key;
  if (type != sql::JoinType::kCross) {
    key = DetectEquiJoin(on, ws.scope, incoming_scope);
  }

  if (key) {
    // Build: key -> build-row indices in insertion order (same structure
    // as the reference hash join, so duplicate-key emit order matches).
    // When every key column involved is int64 the table is keyed by the
    // raw integer — no Value boxing or variant hashing per probe. Exact
    // because int64/int64 equality IS Value::Compare for that type pair;
    // any other representation (doubles, mixed/boxed columns) keeps the
    // Value-keyed table, which matches cross-type numeric keys the same
    // way the reference executor's does.
    const ColumnVector& build_col = right.cols[key->new_index];
    auto int_keyed = [](const ColumnVector& col) {
      return col.rep() == ColumnVector::Rep::kInt64 ||
             col.rep() == ColumnVector::Rep::kNone;  // kNone = all NULL
    };
    bool typed_keys = int_keyed(build_col);
    for (const RowBatch& chunk : ws.chunks) {
      if (!int_keyed(chunk.cols[key->left_index])) typed_keys = false;
    }

    std::unordered_map<int64_t, std::vector<uint32_t>> int_hash;
    std::unordered_map<Value, std::vector<uint32_t>, storage::ValueHasher>
        hash;
    if (typed_keys && build_col.rep() == ColumnVector::Rep::kInt64) {
      int_hash.reserve(right.rows);
      const int64_t* keys = build_col.ints();
      for (size_t r = 0; r < right.rows; ++r) {
        if (build_col.IsNull(r)) continue;
        int_hash[keys[r]].push_back(static_cast<uint32_t>(r));
      }
    } else if (!typed_keys) {
      hash.reserve(right.rows);
      for (size_t r = 0; r < right.rows; ++r) {
        if (build_col.IsNull(r)) continue;
        hash[build_col.Get(r)].push_back(static_cast<uint32_t>(r));
      }
    }

    for (const RowBatch& chunk : ws.chunks) {
      GRIDDB_RETURN_IF_ERROR(CheckCancel(opts.cancel));
      const ColumnVector& probe_col = chunk.cols[key->left_index];
      const int64_t* probe_ints =
          probe_col.rep() == ColumnVector::Rep::kInt64 ? probe_col.ints()
                                                       : nullptr;
      std::vector<uint32_t> lidx, ridx;
      auto flush = [&]() {
        if (lidx.empty()) return;
        RowBatch out;
        out.cols.reserve(out_width);
        for (size_t c = 0; c < left_width; ++c) {
          ColumnVector cv;
          cv.AppendGather(chunk.cols[c], lidx.data(), lidx.size());
          out.cols.push_back(std::move(cv));
        }
        for (size_t c = 0; c < right_width; ++c) {
          ColumnVector cv;
          cv.AppendGather(right.cols[c], ridx.data(), ridx.size());
          out.cols.push_back(std::move(cv));
        }
        out.rows = lidx.size();
        out_rows += out.rows;
        out_chunks.push_back(std::move(out));
        lidx.clear();
        ridx.clear();
      };
      for (size_t i = 0; i < chunk.rows; ++i) {
        bool matched = false;
        if (!probe_col.IsNull(i)) {
          const std::vector<uint32_t>* rows_for_key = nullptr;
          if (typed_keys) {
            if (probe_ints != nullptr) {
              auto it = int_hash.find(probe_ints[i]);
              if (it != int_hash.end()) rows_for_key = &it->second;
            }
          } else {
            auto it = hash.find(probe_col.Get(i));
            if (it != hash.end()) rows_for_key = &it->second;
          }
          if (rows_for_key != nullptr) {
            for (uint32_t r : *rows_for_key) {
              lidx.push_back(static_cast<uint32_t>(i));
              ridx.push_back(r);
            }
            matched = true;
          }
        }
        if (!matched && type == sql::JoinType::kLeft) {
          lidx.push_back(static_cast<uint32_t>(i));
          ridx.push_back(ColumnVector::kNullIndex);
        }
        if (lidx.size() >= opts.batch_rows) flush();
      }
      flush();
    }
  } else {
    // General join: for each probe row, evaluate ON over candidate chunks
    // of (broadcast left row × slice of build rows). Emit order is probe
    // row order then build row order — the nested loop's order.
    RowBatch pending;
    pending.cols.resize(out_width);
    auto flush_pending = [&]() {
      if (pending.rows == 0) return;
      out_rows += pending.rows;
      out_chunks.push_back(std::move(pending));
      pending = RowBatch();
      pending.cols.resize(out_width);
    };
    for (const RowBatch& chunk : ws.chunks) {
      for (size_t i = 0; i < chunk.rows; ++i) {
        GRIDDB_RETURN_IF_ERROR(CheckCancel(opts.cancel));
        bool matched = false;
        for (size_t start = 0; start < right.rows;
             start += opts.batch_rows) {
          size_t len = std::min(opts.batch_rows, right.rows - start);
          RowBatch cand;
          cand.cols.reserve(out_width);
          std::vector<uint32_t> broadcast(len, static_cast<uint32_t>(i));
          for (size_t c = 0; c < left_width; ++c) {
            ColumnVector cv;
            cv.AppendGather(chunk.cols[c], broadcast.data(), len);
            cand.cols.push_back(std::move(cv));
          }
          for (size_t c = 0; c < right_width; ++c) {
            ColumnVector cv;
            cv.AppendSlice(right.cols[c], start, len);
            cand.cols.push_back(std::move(cv));
          }
          cand.rows = len;
          std::vector<uint32_t> keep;
          if (on) {
            GRIDDB_ASSIGN_OR_RETURN(VectorRef v,
                                    EvalVector(*on, combined, cand));
            GRIDDB_RETURN_IF_ERROR(SelectTruthy(v, keep));
          } else {
            keep.resize(len);
            for (size_t k = 0; k < len; ++k) {
              keep[k] = static_cast<uint32_t>(k);
            }
          }
          if (keep.empty()) continue;
          matched = true;
          for (size_t c = 0; c < out_width; ++c) {
            pending.cols[c].AppendGather(cand.cols[c], keep.data(),
                                         keep.size());
          }
          pending.rows += keep.size();
          if (pending.rows >= opts.batch_rows) flush_pending();
        }
        if (!matched && type == sql::JoinType::kLeft) {
          for (size_t c = 0; c < left_width; ++c) {
            pending.cols[c].Append(chunk.cols[c].Get(i));
          }
          for (size_t c = left_width; c < out_width; ++c) {
            pending.cols[c].AppendNull();
          }
          pending.rows += 1;
          if (pending.rows >= opts.batch_rows) flush_pending();
        }
      }
    }
    flush_pending();
  }

  ws.scope = std::move(combined);
  ws.chunks = std::move(out_chunks);
  ws.total_rows = out_rows;
  ws.TrackPeak();
  return Status::Ok();
}

/// WHERE: evaluate the predicate once per chunk, gather survivors.
Status FilterVec(VecWorkingSet& ws, const sql::Expr& where,
                 const ExecOptions& opts) {
  std::vector<RowBatch> kept;
  size_t total = 0;
  for (RowBatch& chunk : ws.chunks) {
    GRIDDB_RETURN_IF_ERROR(CheckCancel(opts.cancel));
    GRIDDB_ASSIGN_OR_RETURN(VectorRef v, EvalVector(where, ws.scope, chunk));
    std::vector<uint32_t> keep;
    GRIDDB_RETURN_IF_ERROR(SelectTruthy(v, keep));
    if (keep.empty()) continue;
    if (keep.size() == chunk.rows) {
      total += chunk.rows;
      kept.push_back(std::move(chunk));
    } else {
      RowBatch gathered = GatherBatch(chunk, keep.data(), keep.size());
      total += gathered.rows;
      kept.push_back(std::move(gathered));
    }
  }
  ws.chunks = std::move(kept);
  ws.total_rows = total;
  return Status::Ok();
}

/// One group's member rows as (chunk, row-in-chunk) pairs in working-set
/// row order. Groups themselves are kept in first-seen order.
using GroupMembers = std::vector<std::pair<uint32_t, uint32_t>>;

struct GroupedRows {
  std::vector<std::vector<Value>> keys;  // parallel to members
  std::vector<GroupMembers> members;
};

Status BuildGroups(const VecWorkingSet& ws, const sql::SelectStmt& stmt,
                   const ExecOptions& opts, GroupedRows& groups) {
  std::unordered_map<size_t, std::vector<size_t>> buckets;  // hash -> group
  for (uint32_t ci = 0; ci < ws.chunks.size(); ++ci) {
    const RowBatch& chunk = ws.chunks[ci];
    GRIDDB_RETURN_IF_ERROR(CheckCancel(opts.cancel));
    std::vector<VectorRef> key_refs;
    key_refs.reserve(stmt.group_by.size());
    for (const sql::ExprPtr& g : stmt.group_by) {
      GRIDDB_ASSIGN_OR_RETURN(VectorRef v, EvalVector(*g, ws.scope, chunk));
      key_refs.push_back(std::move(v));
    }
    for (uint32_t ri = 0; ri < chunk.rows; ++ri) {
      std::vector<Value> key;
      key.reserve(key_refs.size());
      for (const VectorRef& ref : key_refs) key.push_back(ref.At(ri));
      size_t h = storage::RowHasher{}(key);
      bool placed = false;
      for (size_t idx : buckets[h]) {
        const std::vector<Value>& existing = groups.keys[idx];
        if (existing.size() != key.size()) continue;
        bool equal = true;
        for (size_t i = 0; i < key.size(); ++i) {
          if (existing[i].is_null() != key[i].is_null() ||
              (!existing[i].is_null() &&
               existing[i].Compare(key[i]) != 0)) {
            equal = false;
            break;
          }
        }
        if (equal) {
          groups.members[idx].push_back({ci, ri});
          placed = true;
          break;
        }
      }
      if (!placed) {
        buckets[h].push_back(groups.keys.size());
        groups.keys.push_back(std::move(key));
        groups.members.push_back({{ci, ri}});
      }
    }
  }
  // No GROUP BY but aggregates present: one global group, even when the
  // working set is empty (COUNT(*) over nothing is 0).
  if (stmt.group_by.empty()) {
    groups.keys.assign(1, {});
    groups.members.assign(1, {});
    GroupMembers& all = groups.members[0];
    all.reserve(ws.total_rows);
    for (uint32_t ci = 0; ci < ws.chunks.size(); ++ci) {
      for (uint32_t ri = 0; ri < ws.chunks[ci].rows; ++ri) {
        all.push_back({ci, ri});
      }
    }
  }
  return Status::Ok();
}

/// Grouped expression evaluation, one result Value per group. Aggregate
/// arguments evaluate vectorized (once per chunk); finalization goes
/// through the same CheckAggregateShape/AggregateValues as the row path;
/// interior nodes combine per-group child values via CombineScalarNode.
Result<std::vector<Value>> EvalGroupedVec(
    const sql::Expr& expr, const Scope& scope,
    const std::vector<RowBatch>& chunks,
    const std::vector<GroupMembers>& members) {
  size_t ngroups = members.size();
  if (expr.kind == sql::Expr::Kind::kFunction &&
      IsAggregateFunction(expr.function_name)) {
    bool count_star = false;
    GRIDDB_RETURN_IF_ERROR(CheckAggregateShape(expr, count_star));
    std::vector<Value> out;
    out.reserve(ngroups);
    if (count_star) {
      for (const GroupMembers& g : members) {
        out.push_back(Value(static_cast<int64_t>(g.size())));
      }
      return out;
    }
    std::vector<VectorRef> arg_per_chunk;
    arg_per_chunk.reserve(chunks.size());
    for (const RowBatch& chunk : chunks) {
      GRIDDB_ASSIGN_OR_RETURN(VectorRef v,
                              EvalVector(*expr.children[0], scope, chunk));
      arg_per_chunk.push_back(std::move(v));
    }
    for (const GroupMembers& g : members) {
      std::vector<Value> values;
      values.reserve(g.size());
      for (const auto& [ci, ri] : g) {
        Value v = arg_per_chunk[ci].At(ri);
        if (!v.is_null()) values.push_back(std::move(v));
      }
      GRIDDB_ASSIGN_OR_RETURN(Value agg,
                              AggregateValues(expr, std::move(values)));
      out.push_back(std::move(agg));
    }
    return out;
  }
  if (expr.children.empty()) {
    // Bare column / literal: the group's first row decides (NULL for an
    // empty group) — EvalGrouped's rule.
    std::vector<Value> out;
    out.reserve(ngroups);
    for (const GroupMembers& g : members) {
      if (g.empty()) {
        out.push_back(Value::Null());
        continue;
      }
      GRIDDB_ASSIGN_OR_RETURN(
          Value v, Eval(expr, scope, chunks[g[0].first], g[0].second));
      out.push_back(std::move(v));
    }
    return out;
  }
  std::vector<std::vector<Value>> child_vals;
  child_vals.reserve(expr.children.size());
  for (const sql::ExprPtr& child : expr.children) {
    GRIDDB_ASSIGN_OR_RETURN(std::vector<Value> vals,
                            EvalGroupedVec(*child, scope, chunks, members));
    child_vals.push_back(std::move(vals));
  }
  std::vector<Value> out;
  out.reserve(ngroups);
  for (size_t g = 0; g < ngroups; ++g) {
    std::vector<Value> children;
    children.reserve(child_vals.size());
    for (std::vector<Value>& vals : child_vals) {
      children.push_back(std::move(vals[g]));
    }
    GRIDDB_ASSIGN_OR_RETURN(Value v,
                            CombineScalarNode(expr, std::move(children)));
    out.push_back(std::move(v));
  }
  return out;
}

/// After HAVING drops groups, gathers the surviving groups' rows into new
/// chunks (preserving row order) and remaps member coordinates, so the
/// projection and ORDER BY aggregate arguments are evaluated over exactly
/// the rows the reference executor evaluates them over.
void GatherSurvivors(const std::vector<RowBatch>& chunks,
                     const std::vector<GroupMembers>& members,
                     const std::vector<size_t>& survivors,
                     std::vector<RowBatch>& out_chunks,
                     std::vector<GroupMembers>& out_members) {
  // Per-chunk keep lists, then a coordinate remap table.
  std::vector<std::vector<uint32_t>> keep(chunks.size());
  for (size_t g : survivors) {
    for (const auto& [ci, ri] : members[g]) keep[ci].push_back(ri);
  }
  std::vector<std::vector<uint32_t>> remap(chunks.size());
  std::vector<uint32_t> new_chunk_of(chunks.size());
  for (size_t ci = 0; ci < chunks.size(); ++ci) {
    std::sort(keep[ci].begin(), keep[ci].end());
    remap[ci].assign(chunks[ci].rows, ColumnVector::kNullIndex);
    if (keep[ci].empty()) continue;
    new_chunk_of[ci] = static_cast<uint32_t>(out_chunks.size());
    for (uint32_t k = 0; k < keep[ci].size(); ++k) {
      remap[ci][keep[ci][k]] = k;
    }
    out_chunks.push_back(
        GatherBatch(chunks[ci], keep[ci].data(), keep[ci].size()));
  }
  out_members.reserve(survivors.size());
  for (size_t g : survivors) {
    GroupMembers m;
    m.reserve(members[g].size());
    for (const auto& [ci, ri] : members[g]) {
      m.push_back({new_chunk_of[ci], remap[ci][ri]});
    }
    out_members.push_back(std::move(m));
  }
}

/// Fast path for plain projections of a single table (no joins, WHERE,
/// grouping, ordering or DISTINCT): resolve each output column once, then
/// copy only the rows LIMIT/OFFSET keeps. This is the ntuple-scan shape —
/// the reference path re-resolves every column name for every row.
Result<std::optional<ResultSet>> TryFastScan(
    const sql::SelectStmt& stmt, const TableView& view,
    const ExecOptions& opts, bool& ragged) {
  Scope scope;
  scope.AddColumns(stmt.from[0].EffectiveName(), view.columns);
  std::vector<sql::SelectItem> items;
  std::vector<std::string> names;
  GRIDDB_RETURN_IF_ERROR(ExpandStars(stmt, scope, items, names));
  for (const sql::SelectItem& item : items) {
    if (item.expr->kind != sql::Expr::Kind::kColumn &&
        item.expr->kind != sql::Expr::Kind::kLiteral) {
      return std::optional<ResultSet>();  // general path
    }
  }

  ResultSet out;
  out.columns = std::move(names);
  const std::vector<Row>& rows = *view.rows;
  if (rows.empty()) return std::optional<ResultSet>(std::move(out));

  size_t width = view.columns.size();
  struct Slot {
    size_t index;  // column index, or npos for a literal
    const Value* literal;
  };
  constexpr size_t kLiteralSlot = static_cast<size_t>(-1);
  std::vector<Slot> slots;
  slots.reserve(items.size());
  bool identity = items.size() == width;
  for (size_t i = 0; i < items.size(); ++i) {
    const sql::SelectItem& item = items[i];
    if (item.expr->kind == sql::Expr::Kind::kLiteral) {
      slots.push_back({kLiteralSlot, &item.expr->literal});
      identity = false;
      continue;
    }
    GRIDDB_ASSIGN_OR_RETURN(size_t idx, scope.Resolve(item.expr->column_ref));
    slots.push_back({idx, nullptr});
    if (idx != i) identity = false;
  }

  // The reference path projects every row before OFFSET/LIMIT, so rows
  // narrower than the scope error even when sliced away. Exact-width is
  // all the columnar form handles; anything else goes to the reference.
  for (size_t r = 0; r < rows.size(); ++r) {
    if (r % 4096 == 0) GRIDDB_RETURN_IF_ERROR(CheckCancel(opts.cancel));
    if (rows[r].size() != width) {
      ragged = true;
      return std::optional<ResultSet>(ResultSet{});
    }
  }

  size_t start = 0, end = rows.size();
  if (stmt.offset && *stmt.offset > 0) {
    start = std::min<size_t>(end, static_cast<size_t>(*stmt.offset));
  }
  if (stmt.limit && *stmt.limit >= 0) {
    end = std::min(end, start + static_cast<size_t>(*stmt.limit));
  }

  if (identity) {
    out.rows.assign(rows.begin() + static_cast<long>(start),
                    rows.begin() + static_cast<long>(end));
    return std::optional<ResultSet>(std::move(out));
  }
  out.rows.reserve(end - start);
  for (size_t r = start; r < end; ++r) {
    if ((r - start) % 4096 == 0) {
      GRIDDB_RETURN_IF_ERROR(CheckCancel(opts.cancel));
    }
    Row projected;
    projected.reserve(slots.size());
    for (const Slot& slot : slots) {
      projected.push_back(slot.index == kLiteralSlot ? *slot.literal
                                                     : rows[r][slot.index]);
    }
    out.rows.push_back(std::move(projected));
  }
  return std::optional<ResultSet>(std::move(out));
}

bool IsPlainScanShape(const sql::SelectStmt& stmt) {
  return stmt.from.size() == 1 && stmt.joins.empty() && !stmt.where &&
         stmt.group_by.empty() && !stmt.having && stmt.order_by.empty() &&
         !stmt.distinct;
}

/// ORDER BY key vectors for one output batch. `projected` are the already
/// evaluated select-item vectors (for position/alias references).
Result<std::vector<const VectorRef*>> OrderKeyRefs(
    const sql::SelectStmt& stmt, const std::vector<std::string>& names,
    const std::vector<VectorRef>& projected,
    std::vector<VectorRef>& scratch,
    const std::function<Result<VectorRef>(const sql::Expr&)>& eval_expr) {
  std::vector<const VectorRef*> refs;
  refs.reserve(stmt.order_by.size());
  for (const sql::OrderItem& item : stmt.order_by) {
    if (item.expr->kind == sql::Expr::Kind::kLiteral &&
        item.expr->literal.type() == storage::DataType::kInt64) {
      int64_t pos = item.expr->literal.AsInt64Strict();
      if (pos < 1 || pos > static_cast<int64_t>(projected.size())) {
        return InvalidArgument("ORDER BY position out of range");
      }
      refs.push_back(&projected[static_cast<size_t>(pos - 1)]);
      continue;
    }
    if (item.expr->kind == sql::Expr::Kind::kColumn &&
        item.expr->column_ref.table.empty()) {
      bool found = false;
      for (size_t i = 0; i < names.size(); ++i) {
        if (EqualsIgnoreCase(names[i], item.expr->column_ref.column)) {
          refs.push_back(&projected[i]);
          found = true;
          break;
        }
      }
      if (found) continue;
    }
    GRIDDB_ASSIGN_OR_RETURN(VectorRef v, eval_expr(*item.expr));
    scratch.push_back(std::move(v));
    refs.push_back(&scratch.back());
  }
  return refs;
}

}  // namespace

Result<ResultSet> ExecuteSelectVectorized(const sql::SelectStmt& stmt,
                                          const TableSource& source,
                                          const ExecOptions& opts,
                                          bool& unsupported) {
  unsupported = false;
  if (stmt.from.empty()) return InvalidArgument("SELECT requires FROM");
  GRIDDB_RETURN_IF_ERROR(CheckDuplicateTables(stmt));

  TableLender lender(source);
  bool ragged = false;

  // Plain single-table scans skip columnarization entirely.
  if (IsPlainScanShape(stmt)) {
    GRIDDB_ASSIGN_OR_RETURN(TableView view, lender.Borrow(stmt.from[0].table));
    GRIDDB_ASSIGN_OR_RETURN(std::optional<ResultSet> fast,
                            TryFastScan(stmt, view, opts, ragged));
    if (ragged) {
      unsupported = true;
      Metrics().fallbacks->Add(1);
      return ResultSet{};
    }
    if (fast) {
      Metrics().vectorized_queries->Add(1);
      return std::move(*fast);
    }
  }

  // FROM list: first table seeds the working set, remaining cross-join in.
  VecWorkingSet ws;
  {
    GRIDDB_ASSIGN_OR_RETURN(TableView view, lender.Borrow(stmt.from[0].table));
    ws.scope.AddColumns(stmt.from[0].EffectiveName(), view.columns);
    GRIDDB_RETURN_IF_ERROR(Columnarize(*view.rows, view.columns.size(),
                                       opts.batch_rows, opts.cancel,
                                       ws.chunks, ragged));
    ws.total_rows = view.rows->size();
    ws.TrackPeak();
  }
  for (size_t i = 1; i < stmt.from.size() && !ragged; ++i) {
    GRIDDB_ASSIGN_OR_RETURN(TableView view, lender.Borrow(stmt.from[i].table));
    GRIDDB_RETURN_IF_ERROR(JoinIntoVec(ws, stmt.from[i].EffectiveName(), view,
                                       sql::JoinType::kCross, nullptr, opts,
                                       ragged));
  }
  for (size_t i = 0; i < stmt.joins.size() && !ragged; ++i) {
    const sql::Join& join = stmt.joins[i];
    GRIDDB_ASSIGN_OR_RETURN(TableView view, lender.Borrow(join.table.table));
    GRIDDB_RETURN_IF_ERROR(JoinIntoVec(ws, join.table.EffectiveName(), view,
                                       join.type, join.on.get(), opts,
                                       ragged));
  }
  if (ragged) {
    unsupported = true;
    Metrics().fallbacks->Add(1);
    return ResultSet{};
  }

  if (stmt.where) {
    GRIDDB_RETURN_IF_ERROR(FilterVec(ws, *stmt.where, opts));
  }

  std::vector<sql::SelectItem> items;
  std::vector<std::string> names;
  GRIDDB_RETURN_IF_ERROR(ExpandStars(stmt, ws.scope, items, names));

  bool has_aggregate = StatementHasAggregate(stmt, items);
  bool has_order = !stmt.order_by.empty();
  // Top-K is safe when the row count is capped and DISTINCT will not
  // change it afterwards; ties break on row index, so the selected prefix
  // equals the reference's stable-sort prefix.
  std::optional<size_t> top_k;
  if (has_order && stmt.limit && *stmt.limit >= 0 && !stmt.distinct) {
    size_t k = static_cast<size_t>(*stmt.limit);
    if (stmt.offset && *stmt.offset > 0) k += static_cast<size_t>(*stmt.offset);
    top_k = k;
  }

  ResultSet out;
  out.columns = names;
  std::vector<std::vector<Value>> order_keys;

  if (has_aggregate) {
    GroupedRows groups;
    GRIDDB_RETURN_IF_ERROR(BuildGroups(ws, stmt, opts, groups));

    // HAVING filters whole groups before any projection work, so select
    // items are never evaluated over a dropped group's rows (the
    // reference never evaluates them there either).
    std::vector<RowBatch>* chunks = &ws.chunks;
    std::vector<GroupMembers>* members = &groups.members;
    std::vector<RowBatch> surviving_chunks;
    std::vector<GroupMembers> surviving_members;
    if (stmt.having) {
      GRIDDB_ASSIGN_OR_RETURN(
          std::vector<Value> keep_vals,
          EvalGroupedVec(*stmt.having, ws.scope, ws.chunks, groups.members));
      std::vector<size_t> survivors;
      survivors.reserve(keep_vals.size());
      for (size_t g = 0; g < keep_vals.size(); ++g) {
        if (keep_vals[g].is_null()) continue;
        GRIDDB_ASSIGN_OR_RETURN(bool b, keep_vals[g].AsBool());
        if (b) survivors.push_back(g);
      }
      if (survivors.size() != groups.members.size()) {
        GatherSurvivors(ws.chunks, groups.members, survivors,
                        surviving_chunks, surviving_members);
        chunks = &surviving_chunks;
        members = &surviving_members;
      }
    }

    size_t ngroups = members->size();
    std::vector<std::vector<Value>> item_vals;  // per item, per group
    item_vals.reserve(items.size());
    for (const sql::SelectItem& item : items) {
      GRIDDB_RETURN_IF_ERROR(CheckCancel(opts.cancel));
      GRIDDB_ASSIGN_OR_RETURN(
          std::vector<Value> vals,
          EvalGroupedVec(*item.expr, ws.scope, *chunks, *members));
      item_vals.push_back(std::move(vals));
    }

    std::vector<std::vector<Value>> key_vals;  // per order item, per group
    if (has_order && ngroups > 0) {
      key_vals.reserve(stmt.order_by.size());
      for (const sql::OrderItem& oi : stmt.order_by) {
        if (oi.expr->kind == sql::Expr::Kind::kLiteral &&
            oi.expr->literal.type() == storage::DataType::kInt64) {
          int64_t pos = oi.expr->literal.AsInt64Strict();
          if (pos < 1 || pos > static_cast<int64_t>(items.size())) {
            return InvalidArgument("ORDER BY position out of range");
          }
          key_vals.push_back(item_vals[static_cast<size_t>(pos - 1)]);
          continue;
        }
        if (oi.expr->kind == sql::Expr::Kind::kColumn &&
            oi.expr->column_ref.table.empty()) {
          bool found = false;
          for (size_t i = 0; i < names.size(); ++i) {
            if (EqualsIgnoreCase(names[i], oi.expr->column_ref.column)) {
              key_vals.push_back(item_vals[i]);
              found = true;
              break;
            }
          }
          if (found) continue;
        }
        GRIDDB_ASSIGN_OR_RETURN(
            std::vector<Value> vals,
            EvalGroupedVec(*oi.expr, ws.scope, *chunks, *members));
        key_vals.push_back(std::move(vals));
      }
    }

    out.rows.reserve(ngroups);
    if (has_order) order_keys.reserve(ngroups);
    for (size_t g = 0; g < ngroups; ++g) {
      Row projected;
      projected.reserve(items.size());
      for (std::vector<Value>& vals : item_vals) {
        projected.push_back(std::move(vals[g]));
      }
      if (has_order) {
        std::vector<Value> keys;
        keys.reserve(stmt.order_by.size());
        for (const std::vector<Value>& vals : key_vals) {
          keys.push_back(vals[g]);
        }
        order_keys.push_back(std::move(keys));
      }
      out.rows.push_back(std::move(projected));
    }
  } else {
    if (stmt.having) {
      return InvalidArgument("HAVING requires GROUP BY or aggregates");
    }
    out.rows.reserve(ws.total_rows);
    if (has_order) order_keys.reserve(ws.total_rows);
    for (const RowBatch& chunk : ws.chunks) {
      GRIDDB_RETURN_IF_ERROR(CheckCancel(opts.cancel));
      std::vector<VectorRef> projected;
      projected.reserve(items.size());
      for (const sql::SelectItem& item : items) {
        GRIDDB_ASSIGN_OR_RETURN(VectorRef v,
                                EvalVector(*item.expr, ws.scope, chunk));
        projected.push_back(std::move(v));
      }
      std::vector<VectorRef> scratch;
      scratch.reserve(stmt.order_by.size());
      std::vector<const VectorRef*> key_refs;
      if (has_order) {
        GRIDDB_ASSIGN_OR_RETURN(
            key_refs,
            OrderKeyRefs(stmt, names, projected, scratch,
                         [&](const sql::Expr& e) {
                           return EvalVector(e, ws.scope, chunk);
                         }));
      }
      for (size_t i = 0; i < chunk.rows; ++i) {
        Row row;
        row.reserve(items.size());
        for (const VectorRef& ref : projected) row.push_back(ref.At(i));
        if (has_order) {
          std::vector<Value> keys;
          keys.reserve(key_refs.size());
          for (const VectorRef* ref : key_refs) keys.push_back(ref->At(i));
          order_keys.push_back(std::move(keys));
        }
        out.rows.push_back(std::move(row));
      }
    }
  }

  if (has_order) {
    SortRowsByKeys(stmt, order_keys, out.rows, top_k);
  }
  if (stmt.distinct) {
    DedupeRows(out.rows);
  }
  ApplyOffsetLimit(stmt, out.rows);

  Metrics().vectorized_queries->Add(1);
  return out;
}

}  // namespace griddb::engine::internal
