// Vectorized expression evaluation over RowBatch (DESIGN.md §15).
//
// EvalVector computes a whole column of results for one expression in a
// single call. Hot, error-free shapes (numeric comparisons and
// arithmetic, three-valued AND/OR over booleans, IS NULL, negation) run
// as typed kernels over the ColumnVector payload arrays; every other
// shape — string functions, CASE, IN, mixed-type (boxed) columns —
// evaluates through the shared scalar kernels in eval.cc, elementwise in
// row order, so laziness and error behaviour are the row executor's by
// construction. Kernels are only installed for combinations whose result
// is provably bit-identical to the scalar path (same Value::Compare
// coercions, same NULL propagation, same int-preserving arithmetic).
#pragma once

#include <cstdint>
#include <vector>

#include "griddb/engine/column_vector.h"
#include "griddb/engine/eval.h"
#include "griddb/sql/ast.h"
#include "griddb/util/status.h"

namespace griddb::engine {

/// Result of evaluating one expression over one batch: a column borrowed
/// from the batch (bare column refs are zero-copy), an owned vector, or a
/// literal broadcast across the batch's rows.
class VectorRef {
 public:
  static VectorRef Borrowed(const ColumnVector* v, size_t rows) {
    VectorRef r;
    r.borrowed_ = v;
    r.rows_ = rows;
    return r;
  }
  static VectorRef FromOwned(ColumnVector v) {
    VectorRef r;
    r.rows_ = v.size();
    r.owned_ = std::move(v);
    return r;
  }
  static VectorRef Literal(storage::Value v, size_t rows) {
    VectorRef r;
    r.literal_ = std::move(v);
    r.is_literal_ = true;
    r.rows_ = rows;
    return r;
  }

  size_t rows() const { return rows_; }
  bool is_literal() const { return is_literal_; }
  const storage::Value& literal() const { return literal_; }
  /// Valid only when !is_literal().
  const ColumnVector& vec() const { return borrowed_ ? *borrowed_ : owned_; }

  /// Boxes element i (literal-aware).
  storage::Value At(size_t i) const {
    return is_literal_ ? literal_ : vec().Get(i);
  }
  bool IsNull(size_t i) const {
    return is_literal_ ? literal_.is_null() : vec().IsNull(i);
  }

 private:
  const ColumnVector* borrowed_ = nullptr;
  ColumnVector owned_;
  storage::Value literal_;
  bool is_literal_ = false;
  size_t rows_ = 0;
};

/// Evaluates `expr` over every row of `batch`.
Result<VectorRef> EvalVector(const sql::Expr& expr, const Scope& scope,
                             const RowBatch& batch);

/// WHERE/ON selection: appends (in row order) the indices of rows whose
/// value is non-NULL and truthy, with the row evaluator's coercion — a
/// string predicate value is a type error, exactly as in the row path.
Status SelectTruthy(const VectorRef& v, std::vector<uint32_t>& out);

}  // namespace griddb::engine
