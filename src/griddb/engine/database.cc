#include "griddb/engine/database.h"

#include <algorithm>
#include <mutex>

#include "griddb/engine/eval.h"
#include "griddb/engine/select_executor.h"
#include "griddb/sql/render.h"
#include "griddb/util/strings.h"

namespace griddb::engine {

using storage::ResultSet;
using storage::Row;
using storage::TableSchema;
using storage::Value;

namespace {

/// Evaluates a constant expression (literals and scalar functions only).
Result<Value> EvalConst(const sql::Expr& expr) {
  static const Scope kEmptyScope;
  static const Row kEmptyRow;
  return Eval(expr, kEmptyScope, kEmptyRow);
}

}  // namespace

/// TableSource that reads this database's tables, views and virtual
/// system-catalog tables. Assumes the caller holds (at least) a shared lock.
class Database::DatabaseTableSource : public TableSource {
 public:
  explicit DatabaseTableSource(const Database& db) : db_(db) {}

  Result<ResultSet> GetTable(const std::string& name) const override {
    std::string key = ToLower(name);
    auto table_it = db_.tables_.find(key);
    if (table_it != db_.tables_.end()) {
      const storage::Table& table = *table_it->second;
      ResultSet rs;
      for (const storage::ColumnDef& col : table.schema().columns()) {
        rs.columns.push_back(col.name);
      }
      rs.rows = table.rows();
      return rs;
    }
    auto view_it = db_.views_.find(key);
    if (view_it != db_.views_.end()) {
      return db_.RunSelect(*view_it->second);
    }
    GRIDDB_ASSIGN_OR_RETURN(ResultSet catalog, db_.CatalogTable(ToUpper(name)));
    return catalog;
  }

  // Base tables lend their rows in place (the caller holds the database
  // lock for the whole ExecuteSelect call, so the pointer stays valid);
  // views and catalog tables must be materialized via GetTable.
  std::optional<TableView> BorrowTable(const std::string& name) const override {
    auto table_it = db_.tables_.find(ToLower(name));
    if (table_it == db_.tables_.end()) return std::nullopt;
    const storage::Table& table = *table_it->second;
    TableView view;
    view.columns.reserve(table.schema().columns().size());
    for (const storage::ColumnDef& col : table.schema().columns()) {
      view.columns.push_back(col.name);
    }
    view.rows = &table.rows();
    return view;
  }

 private:
  const Database& db_;
};

Database::Database(std::string name, sql::Vendor vendor)
    : name_(std::move(name)), vendor_(vendor) {}

Result<ResultSet> Database::CatalogTable(const std::string& upper_name) const {
  // Vendor-specific system catalogs, as a real server would expose them.
  auto table_list = [&](const char* name_col) {
    ResultSet rs;
    rs.columns = {name_col};
    for (const auto& [key, table] : tables_) {
      (void)key;
      rs.rows.push_back({Value(table->name())});
    }
    for (const auto& [key, original] : view_original_names_) {
      (void)key;
      rs.rows.push_back({Value(original)});
    }
    return rs;
  };
  auto column_list = [&](const char* table_col, const char* column_col,
                         const char* type_col) {
    ResultSet rs;
    rs.columns = {table_col, column_col, type_col};
    for (const auto& [key, table] : tables_) {
      (void)key;
      for (const storage::ColumnDef& col : table->schema().columns()) {
        rs.rows.push_back({Value(table->name()), Value(col.name),
                           Value(dialect().TypeNameFor(col.type))});
      }
    }
    return rs;
  };

  switch (vendor_) {
    case sql::Vendor::kOracle:
      if (upper_name == "USER_TABLES") return table_list("TABLE_NAME");
      if (upper_name == "USER_TAB_COLUMNS") {
        return column_list("TABLE_NAME", "COLUMN_NAME", "DATA_TYPE");
      }
      break;
    case sql::Vendor::kMySql:
    case sql::Vendor::kMsSql:
      if (upper_name == "INFORMATION_SCHEMA_TABLES") {
        return table_list("TABLE_NAME");
      }
      if (upper_name == "INFORMATION_SCHEMA_COLUMNS") {
        return column_list("TABLE_NAME", "COLUMN_NAME", "DATA_TYPE");
      }
      break;
    case sql::Vendor::kSqlite:
      if (upper_name == "SQLITE_MASTER") {
        ResultSet rs;
        rs.columns = {"type", "name", "sql"};
        for (const auto& [key, table] : tables_) {
          (void)key;
          sql::CreateTableStmt stmt;
          stmt.table = table->name();
          for (const storage::ColumnDef& col : table->schema().columns()) {
            stmt.columns.push_back({col.name, dialect().TypeNameFor(col.type),
                                    col.not_null, col.primary_key});
          }
          rs.rows.push_back({Value("table"), Value(table->name()),
                             Value(sql::RenderCreateTable(stmt, dialect()))});
        }
        for (const auto& [key, original] : view_original_names_) {
          rs.rows.push_back(
              {Value("view"), Value(original),
               Value("CREATE VIEW " + original + " AS " +
                     sql::RenderSelect(*views_.at(key), dialect()))});
        }
        return rs;
      }
      break;
  }
  return NotFound("table or view '" + upper_name + "' does not exist in database '" +
                  name_ + "'");
}

Result<ResultSet> Database::RunSelect(const sql::SelectStmt& stmt) const {
  DatabaseTableSource source(*this);
  return griddb::engine::ExecuteSelect(stmt, source);
}

Result<ResultSet> Database::ExecuteSelect(const sql::SelectStmt& stmt) const {
  std::shared_lock lock(mu_);
  return RunSelect(stmt);
}

Result<ResultSet> Database::Execute(std::string_view sql_text) {
  return Execute(sql_text, nullptr);
}

Result<ResultSet> Database::Execute(std::string_view sql_text,
                                    ExecStats* stats) {
  GRIDDB_ASSIGN_OR_RETURN(sql::Statement stmt,
                          sql::ParseStatement(sql_text, dialect()));
  return ExecuteLocked(stmt, stats);
}

Result<ResultSet> Database::ExecuteLocked(const sql::Statement& stmt,
                                          ExecStats* stats) {
  ExecStats local;
  ExecStats& s = stats ? *stats : local;

  if (const auto* select = std::get_if<std::unique_ptr<sql::SelectStmt>>(&stmt)) {
    std::shared_lock lock(mu_);
    GRIDDB_ASSIGN_OR_RETURN(ResultSet rs, RunSelect(**select));
    s.rows_returned = rs.num_rows();
    return rs;
  }

  std::unique_lock lock(mu_);

  if (const auto* create =
          std::get_if<std::unique_ptr<sql::CreateTableStmt>>(&stmt)) {
    const sql::CreateTableStmt& c = **create;
    std::string key = ToLower(c.table);
    if (tables_.count(key) || views_.count(key)) {
      if (c.if_not_exists) return ResultSet{};
      return AlreadyExists("table '" + c.table + "' already exists");
    }
    std::vector<storage::ColumnDef> columns;
    for (const sql::ColumnDefClause& col : c.columns) {
      storage::ColumnDef def;
      def.name = col.name;
      GRIDDB_ASSIGN_OR_RETURN(def.type, dialect().TypeFromName(col.type_name));
      def.not_null = col.not_null;
      def.primary_key = col.primary_key;
      columns.push_back(std::move(def));
    }
    for (const std::string& pk_col : c.primary_key) {
      bool found = false;
      for (storage::ColumnDef& def : columns) {
        if (EqualsIgnoreCase(def.name, pk_col)) {
          def.primary_key = true;
          found = true;
          break;
        }
      }
      if (!found) {
        return NotFound("PRIMARY KEY column '" + pk_col + "' not declared");
      }
    }
    std::vector<storage::ForeignKey> fks;
    for (const sql::ForeignKeyClause& fk : c.foreign_keys) {
      fks.push_back({fk.columns, fk.referenced_table, fk.referenced_columns});
    }
    tables_[key] = std::make_unique<storage::Table>(
        TableSchema(c.table, std::move(columns), std::move(fks)));
    return ResultSet{};
  }

  if (const auto* create_view =
          std::get_if<std::unique_ptr<sql::CreateViewStmt>>(&stmt)) {
    const sql::CreateViewStmt& c = **create_view;
    std::string key = ToLower(c.view);
    if (tables_.count(key) || views_.count(key)) {
      return AlreadyExists("table or view '" + c.view + "' already exists");
    }
    views_[key] = c.select->Clone();
    view_original_names_[key] = c.view;
    return ResultSet{};
  }

  if (const auto* insert = std::get_if<std::unique_ptr<sql::InsertStmt>>(&stmt)) {
    const sql::InsertStmt& ins = **insert;
    if (views_.count(ToLower(ins.table))) {
      return InvalidArgument("'" + ins.table +
                             "' is a read-only view and cannot be modified");
    }
    auto it = tables_.find(ToLower(ins.table));
    if (it == tables_.end()) {
      return NotFound("table '" + ins.table + "' does not exist");
    }
    storage::Table& table = *it->second;
    const TableSchema& schema = table.schema();

    // Map statement columns to schema positions.
    std::vector<size_t> positions;
    if (ins.columns.empty()) {
      for (size_t i = 0; i < schema.num_columns(); ++i) positions.push_back(i);
    } else {
      for (const std::string& col : ins.columns) {
        auto idx = schema.ColumnIndex(col);
        if (!idx) {
          return NotFound("column '" + col + "' does not exist in '" +
                          ins.table + "'");
        }
        positions.push_back(*idx);
      }
    }

    std::vector<Row> rows;
    if (ins.select) {
      GRIDDB_ASSIGN_OR_RETURN(ResultSet source_rows, RunSelect(*ins.select));
      if (source_rows.num_columns() != positions.size()) {
        return InvalidArgument("INSERT ... SELECT column count mismatch");
      }
      rows = std::move(source_rows.rows);
    } else {
      for (const std::vector<sql::ExprPtr>& value_row : ins.rows) {
        if (value_row.size() != positions.size()) {
          return InvalidArgument("INSERT VALUES arity mismatch");
        }
        Row row;
        row.reserve(value_row.size());
        for (const sql::ExprPtr& e : value_row) {
          GRIDDB_ASSIGN_OR_RETURN(Value v, EvalConst(*e));
          row.push_back(std::move(v));
        }
        rows.push_back(std::move(row));
      }
    }

    for (Row& partial : rows) {
      Row full(schema.num_columns());  // unspecified columns default to NULL
      for (size_t i = 0; i < positions.size(); ++i) {
        full[positions[i]] = std::move(partial[i]);
      }
      GRIDDB_RETURN_IF_ERROR(table.Insert(std::move(full)));
      ++s.rows_affected;
    }
    return ResultSet{};
  }

  if (const auto* update = std::get_if<std::unique_ptr<sql::UpdateStmt>>(&stmt)) {
    const sql::UpdateStmt& upd = **update;
    if (views_.count(ToLower(upd.table))) {
      return InvalidArgument("'" + upd.table +
                             "' is a read-only view and cannot be modified");
    }
    auto it = tables_.find(ToLower(upd.table));
    if (it == tables_.end()) {
      return NotFound("table '" + upd.table + "' does not exist");
    }
    storage::Table& table = *it->second;
    Scope scope;
    for (const storage::ColumnDef& col : table.schema().columns()) {
      scope.Add(upd.table, col.name);
    }
    std::vector<size_t> set_positions;
    for (const auto& [col, expr] : upd.assignments) {
      (void)expr;
      auto idx = table.schema().ColumnIndex(col);
      if (!idx) {
        return NotFound("column '" + col + "' does not exist in '" +
                        upd.table + "'");
      }
      set_positions.push_back(*idx);
    }
    for (size_t r = 0; r < table.num_rows(); ++r) {
      const Row& current = table.rows()[r];
      if (upd.where) {
        GRIDDB_ASSIGN_OR_RETURN(Value v, Eval(*upd.where, scope, current));
        if (v.is_null()) continue;
        GRIDDB_ASSIGN_OR_RETURN(bool keep, v.AsBool());
        if (!keep) continue;
      }
      Row updated = current;
      for (size_t a = 0; a < upd.assignments.size(); ++a) {
        GRIDDB_ASSIGN_OR_RETURN(Value v,
                                Eval(*upd.assignments[a].second, scope, current));
        updated[set_positions[a]] = std::move(v);
      }
      GRIDDB_RETURN_IF_ERROR(table.UpdateRow(r, std::move(updated)));
      ++s.rows_affected;
    }
    return ResultSet{};
  }

  if (const auto* del = std::get_if<std::unique_ptr<sql::DeleteStmt>>(&stmt)) {
    const sql::DeleteStmt& d = **del;
    if (views_.count(ToLower(d.table))) {
      return InvalidArgument("'" + d.table +
                             "' is a read-only view and cannot be modified");
    }
    auto it = tables_.find(ToLower(d.table));
    if (it == tables_.end()) {
      return NotFound("table '" + d.table + "' does not exist");
    }
    storage::Table& table = *it->second;
    Scope scope;
    for (const storage::ColumnDef& col : table.schema().columns()) {
      scope.Add(d.table, col.name);
    }
    std::vector<size_t> doomed;
    for (size_t r = 0; r < table.num_rows(); ++r) {
      if (d.where) {
        GRIDDB_ASSIGN_OR_RETURN(Value v, Eval(*d.where, scope, table.rows()[r]));
        if (v.is_null()) continue;
        GRIDDB_ASSIGN_OR_RETURN(bool keep, v.AsBool());
        if (!keep) continue;
      }
      doomed.push_back(r);
    }
    s.rows_affected = doomed.size();
    table.DeleteRows(std::move(doomed));
    return ResultSet{};
  }

  if (const auto* drop = std::get_if<std::unique_ptr<sql::DropStmt>>(&stmt)) {
    const sql::DropStmt& d = **drop;
    std::string key = ToLower(d.name);
    if (d.target == sql::DropStmt::Target::kTable) {
      if (tables_.erase(key) == 0 && !d.if_exists) {
        return NotFound("table '" + d.name + "' does not exist");
      }
    } else {
      bool erased = views_.erase(key) > 0;
      view_original_names_.erase(key);
      if (!erased && !d.if_exists) {
        return NotFound("view '" + d.name + "' does not exist");
      }
    }
    return ResultSet{};
  }

  return Internal("unhandled statement kind");
}

Status Database::CreateTable(TableSchema schema) {
  std::unique_lock lock(mu_);
  std::string key = ToLower(schema.name());
  if (tables_.count(key) || views_.count(key)) {
    return AlreadyExists("table '" + schema.name() + "' already exists");
  }
  tables_[key] = std::make_unique<storage::Table>(std::move(schema));
  return Status::Ok();
}

Status Database::InsertRows(const std::string& table, std::vector<Row> rows) {
  std::unique_lock lock(mu_);
  auto it = tables_.find(ToLower(table));
  if (it == tables_.end()) {
    return NotFound("table '" + table + "' does not exist");
  }
  return it->second->InsertAll(std::move(rows));
}

Status Database::CreateView(const std::string& name,
                            const sql::SelectStmt& select) {
  std::unique_lock lock(mu_);
  std::string key = ToLower(name);
  if (tables_.count(key) || views_.count(key)) {
    return AlreadyExists("table or view '" + name + "' already exists");
  }
  views_[key] = select.Clone();
  view_original_names_[key] = name;
  return Status::Ok();
}

Status Database::DropTable(const std::string& name, bool if_exists) {
  std::unique_lock lock(mu_);
  if (tables_.erase(ToLower(name)) == 0 && !if_exists) {
    return NotFound("table '" + name + "' does not exist");
  }
  return Status::Ok();
}

bool Database::HasTable(const std::string& name) const {
  std::shared_lock lock(mu_);
  return tables_.count(ToLower(name)) > 0;
}

bool Database::HasView(const std::string& name) const {
  std::shared_lock lock(mu_);
  return views_.count(ToLower(name)) > 0;
}

std::vector<std::string> Database::TableNames() const {
  std::shared_lock lock(mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [key, table] : tables_) {
    (void)key;
    names.push_back(table->name());
  }
  std::sort(names.begin(), names.end());
  return names;
}

std::vector<std::string> Database::ViewNames() const {
  std::shared_lock lock(mu_);
  std::vector<std::string> names;
  names.reserve(views_.size());
  for (const auto& [key, original] : view_original_names_) {
    (void)key;
    names.push_back(original);
  }
  std::sort(names.begin(), names.end());
  return names;
}

Result<TableSchema> Database::GetSchema(const std::string& table) const {
  std::shared_lock lock(mu_);
  auto it = tables_.find(ToLower(table));
  if (it != tables_.end()) return it->second->schema();
  // Views expose a schema too: column names from one execution, typed as
  // strings is wrong, so derive types by executing with LIMIT 0 semantics.
  auto view_it = views_.find(ToLower(table));
  if (view_it != views_.end()) {
    GRIDDB_ASSIGN_OR_RETURN(ResultSet rs, RunSelect(*view_it->second));
    std::vector<storage::ColumnDef> columns;
    for (size_t i = 0; i < rs.columns.size(); ++i) {
      storage::ColumnDef def;
      def.name = rs.columns[i];
      def.type = storage::DataType::kString;
      // Infer from the first non-null value in that column.
      for (const Row& row : rs.rows) {
        if (i < row.size() && !row[i].is_null()) {
          def.type = row[i].type();
          break;
        }
      }
      columns.push_back(std::move(def));
    }
    return TableSchema(view_original_names_.at(ToLower(table)), columns);
  }
  return NotFound("table '" + table + "' does not exist");
}

Result<std::string> Database::GetViewDefinition(const std::string& view) const {
  std::shared_lock lock(mu_);
  auto it = views_.find(ToLower(view));
  if (it == views_.end()) {
    return NotFound("view '" + view + "' does not exist");
  }
  return sql::RenderSelect(*it->second, dialect());
}

size_t Database::TotalRows() const {
  std::shared_lock lock(mu_);
  size_t total = 0;
  for (const auto& [key, table] : tables_) {
    (void)key;
    total += table->num_rows();
  }
  return total;
}

size_t Database::RowCount(const std::string& table) const {
  std::shared_lock lock(mu_);
  auto it = tables_.find(ToLower(table));
  return it == tables_.end() ? 0 : it->second->num_rows();
}

Result<storage::TableDigest> Database::ContentDigest(
    const std::string& table) const {
  std::shared_lock lock(mu_);
  auto it = tables_.find(ToLower(table));
  if (it == tables_.end()) {
    return NotFound("table '" + table + "' does not exist");
  }
  return storage::DigestRows(it->second->rows());
}

}  // namespace griddb::engine
