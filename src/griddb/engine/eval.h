// Expression evaluation over scoped rows.
//
// A Scope names the columns of a (possibly joined) working row; Eval walks
// an sql::Expr and produces a Value with SQL three-valued-logic-lite
// semantics: any NULL operand propagates NULL through arithmetic and
// comparisons, and WHERE treats NULL as false.
//
// The same scalar kernels back both executors (DESIGN.md §15): the
// row-at-a-time reference path calls Eval over storage::Row, and the
// vectorized path calls the RowBatch overload for its elementwise
// fallback plus CombineScalarNode / AggregateValues when it combines
// per-group results. Because the kernels are shared, the two executors
// cannot diverge on scalar semantics.
#pragma once

#include <string>
#include <vector>

#include "griddb/engine/column_vector.h"
#include "griddb/sql/ast.h"
#include "griddb/storage/result_set.h"
#include "griddb/storage/value.h"
#include "griddb/util/status.h"

namespace griddb::engine {

/// Column name table for a working row: each entry is (qualifier, column).
/// Qualifier is the table alias (or name) the column came from; several
/// tables' columns concatenate into one flat row during joins.
class Scope {
 public:
  void Add(std::string qualifier, std::string column) {
    entries_.push_back({std::move(qualifier), std::move(column)});
  }

  /// Appends every column of `rs` under `qualifier`.
  void AddResultSet(const std::string& qualifier,
                    const storage::ResultSet& rs);

  /// Appends `columns` under `qualifier`.
  void AddColumns(const std::string& qualifier,
                  const std::vector<std::string>& columns);

  size_t size() const { return entries_.size(); }
  const std::string& qualifier(size_t i) const { return entries_[i].qualifier; }
  const std::string& column(size_t i) const { return entries_[i].column; }

  /// Resolves a column reference. Unqualified names must be unambiguous.
  Result<size_t> Resolve(const sql::ColumnRef& ref) const;

  /// Indexes of all columns with the given qualifier.
  std::vector<size_t> ColumnsOf(const std::string& qualifier) const;

 private:
  struct Entry {
    std::string qualifier;
    std::string column;
  };
  std::vector<Entry> entries_;
};

/// Evaluates a scalar expression (no aggregate functions) against one row.
Result<storage::Value> Eval(const sql::Expr& expr, const Scope& scope,
                            const storage::Row& row);

/// Same semantics, reading the cells of row `row` from a columnar batch.
/// This is the vectorized executor's elementwise fallback: it shares every
/// code path with the Row overload, so laziness (CASE stops at the first
/// taken WHEN, IN short-circuits) and error behaviour match exactly.
Result<storage::Value> Eval(const sql::Expr& expr, const Scope& scope,
                            const RowBatch& batch, size_t row);

/// Combines an interior expression node from already-evaluated child
/// values, exactly as grouped evaluation does: the children are folded to
/// literals and the node is re-evaluated. Used by both EvalGrouped and the
/// vectorized grouped evaluator so their combine step is the same code.
Result<storage::Value> CombineScalarNode(const sql::Expr& expr,
                                         std::vector<storage::Value> children);

/// Validates an aggregate call's shape (argument count); sets `count_star`
/// for COUNT(*). Performed before any argument evaluation.
Status CheckAggregateShape(const sql::Expr& agg, bool& count_star);

/// Finalizes an aggregate over the non-NULL argument values of one group,
/// in row order. DISTINCT dedupe, SUM's integer preservation and AVG's
/// accumulation order all live here so both executors share them.
/// COUNT(*) never reaches this (the caller answers it from the row count).
Result<storage::Value> AggregateValues(const sql::Expr& agg,
                                       std::vector<storage::Value> values);

/// True when the expression contains an aggregate function call.
bool ContainsAggregate(const sql::Expr& expr);

/// True when `name` is one of COUNT/SUM/AVG/MIN/MAX.
bool IsAggregateFunction(const std::string& upper_name);

/// Evaluates an expression in grouped context: aggregate calls are computed
/// over `group_rows`; bare columns evaluate against the group's first row.
Result<storage::Value> EvalGrouped(const sql::Expr& expr, const Scope& scope,
                                   const std::vector<const storage::Row*>& group_rows);

/// SQL LIKE with % and _ wildcards (case-sensitive, no escape clause).
bool LikeMatch(std::string_view text, std::string_view pattern);

}  // namespace griddb::engine
