// Shared executor helpers, the retained row-at-a-time reference
// executor, and the ExecuteSelect dispatch. The vectorized default path
// lives in vector_executor.cc; see DESIGN.md §15 for the contract the
// two implementations share.
#include "griddb/engine/select_executor.h"

#include <algorithm>
#include <list>
#include <unordered_map>

#include "griddb/engine/eval.h"
#include "griddb/engine/executor_internal.h"
#include "griddb/sql/render.h"
#include "griddb/util/strings.h"

namespace griddb::engine {

using storage::ResultSet;
using storage::Row;
using storage::Value;

void MapTableSource::Add(std::string name, ResultSet rs) {
  tables_.emplace_back(std::move(name), std::move(rs));
}

Result<ResultSet> MapTableSource::GetTable(const std::string& name) const {
  for (const auto& [table_name, rs] : tables_) {
    if (EqualsIgnoreCase(table_name, name)) return rs;
  }
  return NotFound("table '" + name + "' not found");
}

const ResultSet* MapTableSource::FindTable(const std::string& name) const {
  for (const auto& [table_name, rs] : tables_) {
    if (EqualsIgnoreCase(table_name, name)) return &rs;
  }
  return nullptr;
}

namespace internal {

std::optional<EquiJoinKey> DetectEquiJoin(const sql::Expr* on,
                                          const Scope& existing,
                                          const Scope& incoming) {
  if (!on || on->kind != sql::Expr::Kind::kBinary ||
      on->binary_op != sql::BinaryOp::kEq) {
    return std::nullopt;
  }
  const sql::Expr& lhs = *on->children[0];
  const sql::Expr& rhs = *on->children[1];
  if (lhs.kind != sql::Expr::Kind::kColumn ||
      rhs.kind != sql::Expr::Kind::kColumn) {
    return std::nullopt;
  }
  auto l_existing = existing.Resolve(lhs.column_ref);
  auto r_existing = existing.Resolve(rhs.column_ref);
  auto l_incoming = incoming.Resolve(lhs.column_ref);
  auto r_incoming = incoming.Resolve(rhs.column_ref);
  if (l_existing.ok() && r_incoming.ok() && !l_incoming.ok() && !r_existing.ok()) {
    return EquiJoinKey{l_existing.value(), r_incoming.value()};
  }
  if (r_existing.ok() && l_incoming.ok() && !r_incoming.ok() && !l_existing.ok()) {
    return EquiJoinKey{r_existing.value(), l_incoming.value()};
  }
  return std::nullopt;
}

std::string OutputName(const sql::SelectItem& item) {
  if (!item.alias.empty()) return item.alias;
  if (item.expr->kind == sql::Expr::Kind::kColumn) {
    return item.expr->column_ref.column;
  }
  return sql::RenderExpr(*item.expr, sql::Dialect::For(sql::Vendor::kSqlite));
}

Status ExpandStars(const sql::SelectStmt& stmt, const Scope& scope,
                   std::vector<sql::SelectItem>& items,
                   std::vector<std::string>& names) {
  for (const sql::SelectItem& item : stmt.items) {
    if (item.expr->kind != sql::Expr::Kind::kStar) {
      items.push_back({item.expr->Clone(), item.alias});
      names.push_back(OutputName(item));
      continue;
    }
    const std::string& qualifier = item.expr->column_ref.table;
    if (qualifier.empty()) {
      for (size_t i = 0; i < scope.size(); ++i) {
        items.push_back(
            {sql::MakeColumn(scope.qualifier(i), scope.column(i)), ""});
        names.push_back(scope.column(i));
      }
    } else {
      std::vector<size_t> columns = scope.ColumnsOf(qualifier);
      if (columns.empty()) {
        return NotFound("unknown table '" + qualifier + "' in " + qualifier +
                        ".*");
      }
      for (size_t i : columns) {
        items.push_back({sql::MakeColumn(qualifier, scope.column(i)), ""});
        names.push_back(scope.column(i));
      }
    }
  }
  return Status::Ok();
}

Status CheckDuplicateTables(const sql::SelectStmt& stmt) {
  std::vector<const sql::TableRef*> tables = stmt.AllTables();
  for (size_t i = 0; i < tables.size(); ++i) {
    for (size_t j = i + 1; j < tables.size(); ++j) {
      if (EqualsIgnoreCase(tables[i]->EffectiveName(),
                           tables[j]->EffectiveName())) {
        return InvalidArgument("duplicate table name/alias '" +
                               tables[i]->EffectiveName() +
                               "'; use aliases to disambiguate");
      }
    }
  }
  return Status::Ok();
}

bool StatementHasAggregate(const sql::SelectStmt& stmt,
                           const std::vector<sql::SelectItem>& items) {
  bool has = !stmt.group_by.empty() ||
             (stmt.having && ContainsAggregate(*stmt.having));
  for (const sql::SelectItem& item : items) {
    if (ContainsAggregate(*item.expr)) has = true;
  }
  return has;
}

void DedupeRows(std::vector<Row>& rows) {
  std::vector<Row> unique;
  std::unordered_map<size_t, std::vector<size_t>> seen;
  for (Row& row : rows) {
    size_t h = storage::RowHasher{}(row);
    bool duplicate = false;
    for (size_t idx : seen[h]) {
      const Row& other = unique[idx];
      if (other.size() != row.size()) continue;
      bool equal = true;
      for (size_t i = 0; i < row.size(); ++i) {
        if (row[i].is_null() != other[i].is_null() ||
            (!row[i].is_null() && row[i].Compare(other[i]) != 0)) {
          equal = false;
          break;
        }
      }
      if (equal) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) {
      seen[h].push_back(unique.size());
      unique.push_back(std::move(row));
    }
  }
  rows = std::move(unique);
}

void ApplyOffsetLimit(const sql::SelectStmt& stmt, std::vector<Row>& rows) {
  if (stmt.offset && *stmt.offset > 0) {
    size_t skip = std::min<size_t>(rows.size(),
                                   static_cast<size_t>(*stmt.offset));
    rows.erase(rows.begin(), rows.begin() + static_cast<long>(skip));
  }
  if (stmt.limit && *stmt.limit >= 0 &&
      rows.size() > static_cast<size_t>(*stmt.limit)) {
    rows.resize(static_cast<size_t>(*stmt.limit));
  }
}

void SortRowsByKeys(const sql::SelectStmt& stmt,
                    const std::vector<std::vector<Value>>& order_keys,
                    std::vector<Row>& rows, std::optional<size_t> top_k) {
  std::vector<size_t> permutation(rows.size());
  for (size_t i = 0; i < permutation.size(); ++i) permutation[i] = i;
  auto before = [&](size_t a, size_t b) {
    for (size_t k = 0; k < stmt.order_by.size(); ++k) {
      int cmp = order_keys[a][k].Compare(order_keys[b][k]);
      if (cmp != 0) {
        return stmt.order_by[k].ascending ? cmp < 0 : cmp > 0;
      }
    }
    return false;
  };
  if (top_k && *top_k < rows.size()) {
    // Top-K selection: tie-break on the original index, which makes the
    // order total and the selected prefix exactly the stable-sort prefix.
    size_t k = *top_k;
    std::partial_sort(permutation.begin(), permutation.begin() + k,
                      permutation.end(), [&](size_t a, size_t b) {
                        if (before(a, b)) return true;
                        if (before(b, a)) return false;
                        return a < b;
                      });
    permutation.resize(k);
  } else {
    std::stable_sort(permutation.begin(), permutation.end(), before);
  }
  std::vector<Row> sorted;
  sorted.reserve(permutation.size());
  for (size_t i : permutation) sorted.push_back(std::move(rows[i]));
  rows = std::move(sorted);
}

}  // namespace internal

namespace {

using internal::EquiJoinKey;

/// Row-batch cancellation probe: every kBatch-th Check() consults the
/// token, the rest are a counter increment. Keeps the per-row overhead of
/// cooperative cancellation negligible while still bounding how much work
/// runs after a deadline expires or a client aborts.
class BatchCancelCheck {
 public:
  explicit BatchCancelCheck(const CancelToken* cancel) : cancel_(cancel) {}

  Status Check() {
    if (cancel_ == nullptr || ++count_ % kBatch != 0) return Status::Ok();
    return cancel_->Check();
  }

 private:
  static constexpr size_t kBatch = 1024;
  const CancelToken* cancel_;
  size_t count_ = 0;
};

/// The working set during FROM/JOIN processing: a scope describing the
/// concatenated columns and the joined rows.
struct WorkingSet {
  Scope scope;
  std::vector<Row> rows;
};

Row ConcatRows(const Row& a, const Row& b) {
  Row out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

/// Joins `incoming` (a table's result set under `qualifier`) into `ws`.
Status JoinInto(WorkingSet& ws, const std::string& qualifier,
                const ResultSet& incoming, sql::JoinType type,
                const sql::Expr* on, BatchCancelCheck& cancel) {
  Scope incoming_scope;
  incoming_scope.AddResultSet(qualifier, incoming);

  Scope combined = ws.scope;
  combined.AddResultSet(qualifier, incoming);

  std::vector<Row> joined;

  // Hash path for single-equality inner/left joins. The build table maps
  // key -> build-row indices in insertion order, so duplicate-key matches
  // emit in build-row order — deterministic, and shared with the
  // vectorized hash join so both paths emit identical row order.
  if (type != sql::JoinType::kCross) {
    if (auto key = internal::DetectEquiJoin(on, ws.scope, incoming_scope)) {
      std::unordered_map<Value, std::vector<size_t>, storage::ValueHasher> hash;
      hash.reserve(incoming.rows.size());
      for (size_t r = 0; r < incoming.rows.size(); ++r) {
        const Value& v = incoming.rows[r][key->new_index];
        if (!v.is_null()) hash[v].push_back(r);
      }
      size_t incoming_width = incoming.columns.size();
      joined.reserve(ws.rows.size());  // >= one output row per match/pad
      for (Row& left : ws.rows) {
        GRIDDB_RETURN_IF_ERROR(cancel.Check());
        const Value& probe = left[key->left_index];
        bool matched = false;
        if (!probe.is_null()) {
          auto it = hash.find(probe);
          if (it != hash.end()) {
            const std::vector<size_t>& matches = it->second;
            for (size_t m = 0; m < matches.size(); ++m) {
              const Row& right = incoming.rows[matches[m]];
              if (m + 1 == matches.size()) {
                // Last use of this probe row: its values move, only the
                // build side is copied.
                left.reserve(left.size() + right.size());
                left.insert(left.end(), right.begin(), right.end());
                joined.push_back(std::move(left));
              } else {
                joined.push_back(ConcatRows(left, right));
              }
            }
            matched = true;
          }
        }
        if (!matched && type == sql::JoinType::kLeft) {
          // NULL-pad in place (resize appends null Values), then move.
          left.resize(left.size() + incoming_width);
          joined.push_back(std::move(left));
        }
      }
      ws.scope = std::move(combined);
      ws.rows = std::move(joined);
      return Status::Ok();
    }
  }

  // General nested-loop join.
  size_t incoming_width = incoming.columns.size();
  joined.reserve(ws.rows.size());
  for (Row& left : ws.rows) {
    bool matched = false;
    for (const Row& right : incoming.rows) {
      GRIDDB_RETURN_IF_ERROR(cancel.Check());
      Row candidate = ConcatRows(left, right);
      if (on) {
        GRIDDB_ASSIGN_OR_RETURN(Value keep, Eval(*on, combined, candidate));
        if (keep.is_null()) continue;
        GRIDDB_ASSIGN_OR_RETURN(bool b, keep.AsBool());
        if (!b) continue;
      }
      joined.push_back(std::move(candidate));
      matched = true;
    }
    if (!matched && type == sql::JoinType::kLeft) {
      left.resize(left.size() + incoming_width);
      joined.push_back(std::move(left));
    }
  }
  ws.scope = std::move(combined);
  ws.rows = std::move(joined);
  return Status::Ok();
}

}  // namespace

Result<ResultSet> ExecuteSelectReferenceRows(const sql::SelectStmt& stmt,
                                             const TableSource& source,
                                             const CancelToken* cancel) {
  if (stmt.from.empty()) return InvalidArgument("SELECT requires FROM");
  BatchCancelCheck cancel_check(cancel);

  GRIDDB_RETURN_IF_ERROR(internal::CheckDuplicateTables(stmt));

  // Tables are borrowed in place when the source holds them materialized
  // (the federated merge path), skipping a whole-ResultSet copy per
  // table; on-demand sources fall back to GetTable, with the returned
  // copy kept alive in `owned` (a list: growth never invalidates the
  // borrowed pointers).
  std::list<ResultSet> owned;
  auto table_for = [&](const std::string& name) -> Result<const ResultSet*> {
    if (const ResultSet* borrowed = source.FindTable(name)) return borrowed;
    GRIDDB_ASSIGN_OR_RETURN(ResultSet rs, source.GetTable(name));
    owned.push_back(std::move(rs));
    return &owned.back();
  };

  // FROM list: first table seeds the working set, remaining are cross joins.
  WorkingSet ws;
  {
    GRIDDB_ASSIGN_OR_RETURN(const ResultSet* first,
                            table_for(stmt.from[0].table));
    ws.scope.AddResultSet(stmt.from[0].EffectiveName(), *first);
    if (!owned.empty() && first == &owned.back()) {
      ws.rows = std::move(owned.back().rows);  // our copy: move, don't copy
    } else {
      ws.rows = first->rows;  // borrowed: the working set mutates rows
    }
  }
  for (size_t i = 1; i < stmt.from.size(); ++i) {
    GRIDDB_ASSIGN_OR_RETURN(const ResultSet* table,
                            table_for(stmt.from[i].table));
    GRIDDB_RETURN_IF_ERROR(JoinInto(ws, stmt.from[i].EffectiveName(), *table,
                                    sql::JoinType::kCross, nullptr,
                                    cancel_check));
  }
  for (const sql::Join& join : stmt.joins) {
    GRIDDB_ASSIGN_OR_RETURN(const ResultSet* table,
                            table_for(join.table.table));
    GRIDDB_RETURN_IF_ERROR(JoinInto(ws, join.table.EffectiveName(), *table,
                                    join.type, join.on.get(), cancel_check));
  }

  // WHERE.
  if (stmt.where) {
    std::vector<Row> kept;
    kept.reserve(ws.rows.size());
    for (Row& row : ws.rows) {
      GRIDDB_RETURN_IF_ERROR(cancel_check.Check());
      GRIDDB_ASSIGN_OR_RETURN(Value v, Eval(*stmt.where, ws.scope, row));
      if (v.is_null()) continue;
      GRIDDB_ASSIGN_OR_RETURN(bool keep, v.AsBool());
      if (keep) kept.push_back(std::move(row));
    }
    ws.rows = std::move(kept);
  }

  // Expand stars now that the scope is known.
  std::vector<sql::SelectItem> items;
  std::vector<std::string> names;
  GRIDDB_RETURN_IF_ERROR(internal::ExpandStars(stmt, ws.scope, items, names));

  bool has_aggregate = internal::StatementHasAggregate(stmt, items);

  ResultSet out;
  out.columns = names;

  // Order keys computed alongside each output row, sorted before LIMIT.
  std::vector<std::vector<Value>> order_keys;
  bool has_order = !stmt.order_by.empty();

  auto eval_order_keys =
      [&](const std::vector<const Row*>& group, const Row* plain_row,
          const Row& projected) -> Result<std::vector<Value>> {
    std::vector<Value> keys;
    keys.reserve(stmt.order_by.size());
    for (const sql::OrderItem& item : stmt.order_by) {
      // ORDER BY may name an output alias or position.
      if (item.expr->kind == sql::Expr::Kind::kLiteral &&
          item.expr->literal.type() == storage::DataType::kInt64) {
        int64_t pos = item.expr->literal.AsInt64Strict();
        if (pos < 1 || pos > static_cast<int64_t>(projected.size())) {
          return InvalidArgument("ORDER BY position out of range");
        }
        keys.push_back(projected[static_cast<size_t>(pos - 1)]);
        continue;
      }
      if (item.expr->kind == sql::Expr::Kind::kColumn &&
          item.expr->column_ref.table.empty()) {
        // Alias match takes precedence over scope columns, per SQL.
        bool found = false;
        for (size_t i = 0; i < names.size(); ++i) {
          if (EqualsIgnoreCase(names[i], item.expr->column_ref.column)) {
            keys.push_back(projected[i]);
            found = true;
            break;
          }
        }
        if (found) continue;
      }
      if (has_aggregate) {
        GRIDDB_ASSIGN_OR_RETURN(Value v, EvalGrouped(*item.expr, ws.scope, group));
        keys.push_back(std::move(v));
      } else {
        GRIDDB_ASSIGN_OR_RETURN(Value v, Eval(*item.expr, ws.scope, *plain_row));
        keys.push_back(std::move(v));
      }
    }
    return keys;
  };

  if (has_aggregate) {
    // Group rows by the GROUP BY key vector.
    std::vector<std::pair<std::vector<Value>, std::vector<const Row*>>> groups;
    std::unordered_map<size_t, std::vector<size_t>> buckets;  // hash -> group idx
    for (const Row& row : ws.rows) {
      GRIDDB_RETURN_IF_ERROR(cancel_check.Check());
      std::vector<Value> key;
      key.reserve(stmt.group_by.size());
      for (const sql::ExprPtr& g : stmt.group_by) {
        GRIDDB_ASSIGN_OR_RETURN(Value v, Eval(*g, ws.scope, row));
        key.push_back(std::move(v));
      }
      size_t h = storage::RowHasher{}(key);
      bool placed = false;
      for (size_t idx : buckets[h]) {
        if (groups[idx].first.size() == key.size()) {
          bool equal = true;
          for (size_t i = 0; i < key.size(); ++i) {
            const Value& a = groups[idx].first[i];
            const Value& b = key[i];
            if (a.is_null() != b.is_null() ||
                (!a.is_null() && a.Compare(b) != 0)) {
              equal = false;
              break;
            }
          }
          if (equal) {
            groups[idx].second.push_back(&row);
            placed = true;
            break;
          }
        }
      }
      if (!placed) {
        buckets[h].push_back(groups.size());
        groups.emplace_back(std::move(key), std::vector<const Row*>{&row});
      }
    }
    // No GROUP BY but aggregates: one group over everything (even empty).
    if (stmt.group_by.empty()) {
      std::vector<const Row*> all;
      all.reserve(ws.rows.size());
      for (const Row& row : ws.rows) all.push_back(&row);
      groups.clear();
      groups.emplace_back(std::vector<Value>{}, std::move(all));
    }

    out.rows.reserve(groups.size());
    if (has_order) order_keys.reserve(groups.size());
    for (auto& [key, group_rows] : groups) {
      if (stmt.having) {
        GRIDDB_ASSIGN_OR_RETURN(Value keep,
                                EvalGrouped(*stmt.having, ws.scope, group_rows));
        if (keep.is_null()) continue;
        GRIDDB_ASSIGN_OR_RETURN(bool b, keep.AsBool());
        if (!b) continue;
      }
      Row projected;
      projected.reserve(items.size());
      for (const sql::SelectItem& item : items) {
        GRIDDB_ASSIGN_OR_RETURN(Value v,
                                EvalGrouped(*item.expr, ws.scope, group_rows));
        projected.push_back(std::move(v));
      }
      if (has_order) {
        GRIDDB_ASSIGN_OR_RETURN(std::vector<Value> keys,
                                eval_order_keys(group_rows, nullptr, projected));
        order_keys.push_back(std::move(keys));
      }
      out.rows.push_back(std::move(projected));
    }
  } else {
    if (stmt.having) {
      return InvalidArgument("HAVING requires GROUP BY or aggregates");
    }
    out.rows.reserve(ws.rows.size());
    if (has_order) order_keys.reserve(ws.rows.size());
    for (const Row& row : ws.rows) {
      GRIDDB_RETURN_IF_ERROR(cancel_check.Check());
      Row projected;
      projected.reserve(items.size());
      for (const sql::SelectItem& item : items) {
        GRIDDB_ASSIGN_OR_RETURN(Value v, Eval(*item.expr, ws.scope, row));
        projected.push_back(std::move(v));
      }
      if (has_order) {
        GRIDDB_ASSIGN_OR_RETURN(std::vector<Value> keys,
                                eval_order_keys({}, &row, projected));
        order_keys.push_back(std::move(keys));
      }
      out.rows.push_back(std::move(projected));
    }
  }

  // ORDER BY: stable sort on the computed keys.
  if (has_order) {
    internal::SortRowsByKeys(stmt, order_keys, out.rows, std::nullopt);
  }

  // DISTINCT (preserves the post-sort order of first occurrences).
  if (stmt.distinct) {
    internal::DedupeRows(out.rows);
  }

  internal::ApplyOffsetLimit(stmt, out.rows);

  return out;
}

Result<ResultSet> ExecuteSelect(const sql::SelectStmt& stmt,
                                const TableSource& source,
                                const ExecOptions& opts) {
  if (!opts.use_vectorized) {
    return ExecuteSelectReferenceRows(stmt, source, opts.cancel);
  }
  bool unsupported = false;
  Result<ResultSet> result =
      internal::ExecuteSelectVectorized(stmt, source, opts, unsupported);
  if (unsupported) {
    // The source yielded rows the columnar form cannot represent (ragged
    // widths); the row path's semantics are access-dependent there, so it
    // is authoritative.
    return ExecuteSelectReferenceRows(stmt, source, opts.cancel);
  }
  return result;
}

Result<ResultSet> ExecuteSelect(const sql::SelectStmt& stmt,
                                const TableSource& source,
                                const CancelToken* cancel) {
  ExecOptions opts;
  opts.cancel = cancel;
  return ExecuteSelect(stmt, source, opts);
}

}  // namespace griddb::engine
