#include "griddb/engine/column_vector.h"

namespace griddb::engine {

using storage::DataType;
using storage::Row;
using storage::Value;

Value ColumnVector::Get(size_t i) const {
  if (IsNull(i)) return Value::Null();
  switch (rep_) {
    case Rep::kNone: return Value::Null();
    case Rep::kInt64: return Value(i64_[i]);
    case Rep::kDouble: return Value(f64_[i]);
    case Rep::kBool: return Value(b8_[i] != 0);
    case Rep::kString: return Value(str_[i]);
    case Rep::kValue: return boxed_[i];
  }
  return Value::Null();
}

void ColumnVector::Reserve(size_t n) {
  switch (rep_) {
    case Rep::kNone: break;
    case Rep::kInt64: i64_.reserve(n); break;
    case Rep::kDouble: f64_.reserve(n); break;
    case Rep::kBool: b8_.reserve(n); break;
    case Rep::kString: str_.reserve(n); break;
    case Rep::kValue: boxed_.reserve(n); break;
  }
}

void ColumnVector::SetNullBit(size_t i) {
  size_t word = i >> 6;
  if (nulls_.size() <= word) nulls_.resize(word + 1, 0);
  nulls_[word] |= uint64_t{1} << (i & 63);
  ++null_count_;
}

void ColumnVector::Decide(Rep r) {
  rep_ = r;
  // Leading all-null prefix: payload arrays are empty but size_ counts
  // the nulls; back-fill placeholders so indexes line up.
  switch (r) {
    case Rep::kInt64: i64_.resize(size_, 0); break;
    case Rep::kDouble: f64_.resize(size_, 0); break;
    case Rep::kBool: b8_.resize(size_, 0); break;
    case Rep::kString: str_.resize(size_); break;
    case Rep::kValue: boxed_.resize(size_); break;
    case Rep::kNone: break;
  }
}

void ColumnVector::BoxAll() {
  std::vector<Value> boxed;
  boxed.reserve(size_);
  for (size_t i = 0; i < size_; ++i) boxed.push_back(Get(i));
  i64_.clear();
  f64_.clear();
  b8_.clear();
  str_.clear();
  boxed_ = std::move(boxed);
  rep_ = Rep::kValue;
}

void ColumnVector::AppendNull() {
  SetNullBit(size_);
  ++size_;
  switch (rep_) {
    case Rep::kNone: break;  // payload stays empty until a rep is decided
    case Rep::kInt64: i64_.push_back(0); break;
    case Rep::kDouble: f64_.push_back(0); break;
    case Rep::kBool: b8_.push_back(0); break;
    case Rep::kString: str_.emplace_back(); break;
    case Rep::kValue: boxed_.emplace_back(); break;
  }
}

void ColumnVector::AppendInt64(int64_t v) {
  if (rep_ == Rep::kNone) Decide(Rep::kInt64);
  if (rep_ == Rep::kInt64) {
    i64_.push_back(v);
    ++size_;
    return;
  }
  Append(Value(v));
}

void ColumnVector::AppendDouble(double v) {
  if (rep_ == Rep::kNone) Decide(Rep::kDouble);
  if (rep_ == Rep::kDouble) {
    f64_.push_back(v);
    ++size_;
    return;
  }
  Append(Value(v));
}

void ColumnVector::AppendBool(bool v) {
  if (rep_ == Rep::kNone) Decide(Rep::kBool);
  if (rep_ == Rep::kBool) {
    b8_.push_back(v ? 1 : 0);
    ++size_;
    return;
  }
  Append(Value(v));
}

void ColumnVector::AppendString(std::string v) {
  if (rep_ == Rep::kNone) Decide(Rep::kString);
  if (rep_ == Rep::kString) {
    str_.push_back(std::move(v));
    ++size_;
    return;
  }
  Append(Value(std::move(v)));
}

void ColumnVector::Append(const Value& v) {
  switch (v.type()) {
    case DataType::kNull: AppendNull(); return;
    case DataType::kInt64:
      if (rep_ == Rep::kNone || rep_ == Rep::kInt64) {
        AppendInt64(v.AsInt64Strict());
        return;
      }
      break;
    case DataType::kDouble:
      if (rep_ == Rep::kNone || rep_ == Rep::kDouble) {
        AppendDouble(v.AsDoubleStrict());
        return;
      }
      break;
    case DataType::kBool:
      if (rep_ == Rep::kNone || rep_ == Rep::kBool) {
        AppendBool(v.AsBoolStrict());
        return;
      }
      break;
    case DataType::kString:
      if (rep_ == Rep::kNone || rep_ == Rep::kString) {
        AppendString(v.AsStringStrict());
        return;
      }
      break;
  }
  // Mixed-type column: degrade to boxed storage.
  if (rep_ != Rep::kValue) BoxAll();
  boxed_.push_back(v);
  ++size_;
}

void ColumnVector::Append(Value&& v) {
  if (v.type() == DataType::kString &&
      (rep_ == Rep::kNone || rep_ == Rep::kString)) {
    AppendString(std::move(const_cast<std::string&>(v.AsStringStrict())));
    return;
  }
  if (rep_ == Rep::kValue && v.type() != DataType::kNull) {
    boxed_.push_back(std::move(v));
    ++size_;
    return;
  }
  Append(static_cast<const Value&>(v));
}

void ColumnVector::AppendSlice(const ColumnVector& src, size_t start,
                               size_t len) {
  if (len == 0) return;
  if (rep_ == Rep::kNone && size_ == 0 && src.rep_ != Rep::kNone) {
    Decide(src.rep_);
  }
  if (rep_ == src.rep_ && rep_ != Rep::kNone) {
    size_t base = size_;
    switch (rep_) {
      case Rep::kInt64:
        i64_.insert(i64_.end(), src.i64_.begin() + start,
                    src.i64_.begin() + start + len);
        break;
      case Rep::kDouble:
        f64_.insert(f64_.end(), src.f64_.begin() + start,
                    src.f64_.begin() + start + len);
        break;
      case Rep::kBool:
        b8_.insert(b8_.end(), src.b8_.begin() + start,
                   src.b8_.begin() + start + len);
        break;
      case Rep::kString:
        str_.insert(str_.end(), src.str_.begin() + start,
                    src.str_.begin() + start + len);
        break;
      case Rep::kValue:
        boxed_.insert(boxed_.end(), src.boxed_.begin() + start,
                      src.boxed_.begin() + start + len);
        break;
      case Rep::kNone: break;
    }
    size_ += len;
    if (src.has_nulls()) {
      for (size_t k = 0; k < len; ++k) {
        if (src.IsNull(start + k)) SetNullBit(base + k);
      }
    }
    return;
  }
  for (size_t k = 0; k < len; ++k) {
    if (src.IsNull(start + k)) {
      AppendNull();
    } else {
      Append(src.Get(start + k));
    }
  }
}

void ColumnVector::AppendGather(const ColumnVector& src, const uint32_t* idx,
                                size_t n) {
  if (n == 0) return;
  if (rep_ == Rep::kNone && size_ == 0 && src.rep_ != Rep::kNone) {
    Decide(src.rep_);
  }
  if (rep_ == src.rep_ && rep_ != Rep::kNone) {
    Reserve(size_ + n);
    for (size_t k = 0; k < n; ++k) {
      uint32_t i = idx[k];
      if (i == kNullIndex || src.IsNull(i)) {
        AppendNull();
        continue;
      }
      switch (rep_) {
        case Rep::kInt64: i64_.push_back(src.i64_[i]); break;
        case Rep::kDouble: f64_.push_back(src.f64_[i]); break;
        case Rep::kBool: b8_.push_back(src.b8_[i]); break;
        case Rep::kString: str_.push_back(src.str_[i]); break;
        case Rep::kValue: boxed_.push_back(src.boxed_[i]); break;
        case Rep::kNone: break;
      }
      ++size_;
    }
    return;
  }
  for (size_t k = 0; k < n; ++k) {
    uint32_t i = idx[k];
    if (i == kNullIndex || src.IsNull(i)) {
      AppendNull();
    } else {
      Append(src.Get(i));
    }
  }
}

size_t ColumnVector::ByteSize() const {
  size_t bytes = nulls_.size() * sizeof(uint64_t);
  bytes += i64_.capacity() * sizeof(int64_t);
  bytes += f64_.capacity() * sizeof(double);
  bytes += b8_.capacity();
  for (const std::string& s : str_) bytes += sizeof(std::string) + s.size();
  for (const Value& v : boxed_) bytes += sizeof(Value) + v.WireSize();
  return bytes;
}

size_t RowBatch::ByteSize() const {
  size_t bytes = 0;
  for (const ColumnVector& col : cols) bytes += col.ByteSize();
  return bytes;
}

Status AppendRowsToBatch(const std::vector<Row>& rows, size_t start,
                         size_t len, RowBatch& out) {
  const size_t width = out.cols.size();
  for (ColumnVector& col : out.cols) col.Reserve(col.size() + len);
  for (size_t r = start; r < start + len; ++r) {
    const Row& row = rows[r];
    if (row.size() != width) {
      return Internal("row width " + std::to_string(row.size()) +
                      " does not match scope width " + std::to_string(width));
    }
    for (size_t c = 0; c < width; ++c) out.cols[c].Append(row[c]);
  }
  out.rows += len;
  return Status::Ok();
}

void MaterializeRows(const RowBatch& batch, std::vector<Row>& out) {
  out.reserve(out.size() + batch.rows);
  for (size_t r = 0; r < batch.rows; ++r) {
    Row row;
    row.reserve(batch.cols.size());
    for (const ColumnVector& col : batch.cols) row.push_back(col.Get(r));
    out.push_back(std::move(row));
  }
}

RowBatch GatherBatch(const RowBatch& src, const uint32_t* idx, size_t n) {
  RowBatch out;
  out.cols.resize(src.cols.size());
  for (size_t c = 0; c < src.cols.size(); ++c) {
    out.cols[c].AppendGather(src.cols[c], idx, n);
  }
  out.rows = n;
  return out;
}

}  // namespace griddb::engine
