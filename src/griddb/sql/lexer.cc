#include "griddb/sql/lexer.h"

#include <cctype>
#include <unordered_set>

#include "griddb/util/strings.h"

namespace griddb::sql {

namespace {

const std::unordered_set<std::string>& Keywords() {
  static const std::unordered_set<std::string> kKeywords = {
      "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "ASC",
      "DESC", "LIMIT", "OFFSET", "TOP", "DISTINCT", "ALL", "AS", "JOIN",
      "INNER", "LEFT", "RIGHT", "OUTER", "CROSS", "ON", "AND", "OR", "NOT",
      "IN", "BETWEEN", "LIKE", "IS", "NULL", "TRUE", "FALSE", "INSERT",
      "INTO", "VALUES", "UPDATE", "SET", "DELETE", "CREATE", "TABLE", "VIEW",
      "DROP", "IF", "EXISTS", "PRIMARY", "KEY", "FOREIGN", "REFERENCES",
      "UNIQUE", "DEFAULT", "CASE", "WHEN", "THEN", "ELSE", "END", "UNION",
      "ROWNUM",
  };
  return kKeywords;
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return IsIdentStart(c) || std::isdigit(static_cast<unsigned char>(c)) ||
         c == '$' || c == '#';
}

}  // namespace

bool IsSqlKeyword(std::string_view upper_word) {
  return Keywords().count(std::string(upper_word)) > 0;
}

Result<std::vector<Token>> Tokenize(std::string_view input) {
  std::vector<Token> tokens;
  size_t pos = 0;
  auto error = [&](std::string message) {
    return ParseError("SQL at offset " + std::to_string(pos) + ": " +
                      std::move(message));
  };

  while (pos < input.size()) {
    char c = input[pos];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++pos;
      continue;
    }
    // Comments: -- to end of line, /* ... */.
    if (c == '-' && pos + 1 < input.size() && input[pos + 1] == '-') {
      size_t end = input.find('\n', pos);
      pos = (end == std::string_view::npos) ? input.size() : end + 1;
      continue;
    }
    if (c == '/' && pos + 1 < input.size() && input[pos + 1] == '*') {
      size_t end = input.find("*/", pos + 2);
      if (end == std::string_view::npos) return error("unterminated comment");
      pos = end + 2;
      continue;
    }

    Token token;
    token.position = pos;

    if (IsIdentStart(c)) {
      size_t start = pos;
      while (pos < input.size() && IsIdentChar(input[pos])) ++pos;
      std::string word(input.substr(start, pos - start));
      std::string upper = ToUpper(word);
      if (IsSqlKeyword(upper)) {
        token.type = TokenType::kKeyword;
        token.text = upper;
      } else {
        token.type = TokenType::kIdentifier;
        token.text = word;
      }
      tokens.push_back(std::move(token));
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && pos + 1 < input.size() &&
         std::isdigit(static_cast<unsigned char>(input[pos + 1])))) {
      size_t start = pos;
      bool is_float = false;
      while (pos < input.size() &&
             std::isdigit(static_cast<unsigned char>(input[pos]))) {
        ++pos;
      }
      if (pos < input.size() && input[pos] == '.') {
        is_float = true;
        ++pos;
        while (pos < input.size() &&
               std::isdigit(static_cast<unsigned char>(input[pos]))) {
          ++pos;
        }
      }
      if (pos < input.size() && (input[pos] == 'e' || input[pos] == 'E')) {
        is_float = true;
        ++pos;
        if (pos < input.size() && (input[pos] == '+' || input[pos] == '-')) ++pos;
        if (pos >= input.size() ||
            !std::isdigit(static_cast<unsigned char>(input[pos]))) {
          return error("malformed exponent");
        }
        while (pos < input.size() &&
               std::isdigit(static_cast<unsigned char>(input[pos]))) {
          ++pos;
        }
      }
      std::string_view number = input.substr(start, pos - start);
      if (is_float) {
        token.type = TokenType::kFloat;
        if (!ParseDouble(number, &token.float_value)) {
          return error("malformed number '" + std::string(number) + "'");
        }
      } else {
        token.type = TokenType::kInteger;
        if (!ParseInt64(number, &token.int_value)) {
          return error("integer out of range '" + std::string(number) + "'");
        }
      }
      token.text = std::string(number);
      tokens.push_back(std::move(token));
      continue;
    }

    if (c == '\'') {
      ++pos;
      std::string text;
      while (true) {
        if (pos >= input.size()) return error("unterminated string literal");
        if (input[pos] == '\'') {
          if (pos + 1 < input.size() && input[pos + 1] == '\'') {
            text += '\'';
            pos += 2;
            continue;
          }
          ++pos;
          break;
        }
        text += input[pos++];
      }
      token.type = TokenType::kString;
      token.text = std::move(text);
      tokens.push_back(std::move(token));
      continue;
    }

    // Quoted identifiers in three vendor styles.
    if (c == '"' || c == '`' || c == '[') {
      char close = (c == '[') ? ']' : c;
      QuoteStyle style = (c == '"')   ? QuoteStyle::kDouble
                         : (c == '`') ? QuoteStyle::kBacktick
                                      : QuoteStyle::kBracket;
      ++pos;
      size_t start = pos;
      while (pos < input.size() && input[pos] != close) ++pos;
      if (pos >= input.size()) return error("unterminated quoted identifier");
      token.type = TokenType::kQuotedIdentifier;
      token.text = std::string(input.substr(start, pos - start));
      token.quote = style;
      ++pos;
      if (token.text.empty()) return error("empty quoted identifier");
      tokens.push_back(std::move(token));
      continue;
    }

    // Multi-char operators first.
    static constexpr std::string_view kTwoChar[] = {"<>", "<=", ">=", "!=",
                                                    "||"};
    bool matched = false;
    for (std::string_view op : kTwoChar) {
      if (input.substr(pos, 2) == op) {
        token.type = TokenType::kOperator;
        token.text = std::string(op == "!=" ? "<>" : op);
        pos += 2;
        tokens.push_back(std::move(token));
        matched = true;
        break;
      }
    }
    if (matched) continue;

    static constexpr std::string_view kSingle = "+-*/%(),.=<>;";
    if (kSingle.find(c) != std::string_view::npos) {
      token.type = TokenType::kOperator;
      token.text = std::string(1, c);
      ++pos;
      tokens.push_back(std::move(token));
      continue;
    }

    return error(std::string("unexpected character '") + c + "'");
  }

  Token end;
  end.type = TokenType::kEnd;
  end.position = input.size();
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace griddb::sql
