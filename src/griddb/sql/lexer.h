// SQL tokenizer.
//
// Dialect-aware only in identifier quoting: "ident" (standard / Oracle),
// `ident` (MySQL) and [ident] (MS-SQL) all produce quoted-identifier
// tokens; which quoting styles a given engine *accepts* is enforced by the
// parser via Dialect.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "griddb/util/status.h"

namespace griddb::sql {

enum class TokenType {
  kEnd,
  kIdentifier,        ///< bare identifier (case preserved)
  kQuotedIdentifier,  ///< "x", `x` or [x]; quote kind recorded
  kKeyword,           ///< recognized SQL keyword, upper-cased in text
  kInteger,
  kFloat,
  kString,            ///< 'literal' with '' unescaped
  kOperator,          ///< punctuation and operators: ( ) , . = <> etc.
};

/// Which identifier-quoting character introduced a quoted identifier.
enum class QuoteStyle { kNone, kDouble, kBacktick, kBracket };

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;        ///< Keywords upper-cased; identifiers as written.
  int64_t int_value = 0;
  double float_value = 0.0;
  QuoteStyle quote = QuoteStyle::kNone;
  size_t position = 0;     ///< Byte offset in the input, for diagnostics.

  bool IsKeyword(std::string_view kw) const {
    return type == TokenType::kKeyword && text == kw;
  }
  bool IsOperator(std::string_view op) const {
    return type == TokenType::kOperator && text == op;
  }
};

/// Tokenizes a full statement; the final token is kEnd.
Result<std::vector<Token>> Tokenize(std::string_view input);

/// True when `word` (upper-case) is a recognized SQL keyword.
bool IsSqlKeyword(std::string_view upper_word);

}  // namespace griddb::sql
