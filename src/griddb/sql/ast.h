// SQL abstract syntax tree.
//
// One AST serves every vendor dialect; dialect differences are confined to
// the lexer/parser surface (accepted syntax) and the renderer (emitted
// syntax). This is what lets the middleware parse a client query once,
// decompose it, and re-render each sub-query in the dialect of the mart it
// is destined for.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "griddb/storage/value.h"

namespace griddb::sql {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class BinaryOp {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
  kConcat,
};

enum class UnaryOp { kNeg, kNot };

const char* BinaryOpSymbol(BinaryOp op) noexcept;

/// A column reference, optionally qualified: "t.x" or "x".
struct ColumnRef {
  std::string table;   ///< Alias or table name; empty when unqualified.
  std::string column;

  std::string ToString() const {
    return table.empty() ? column : table + "." + column;
  }
};

struct Expr {
  enum class Kind {
    kLiteral,    ///< value
    kColumn,     ///< column_ref
    kStar,       ///< COUNT(*) argument or SELECT *; table qualifier optional
    kUnary,      ///< op + children[0]
    kBinary,     ///< op + children[0..1]
    kFunction,   ///< function_name(children...), distinct_arg for COUNT(DISTINCT x)
    kIn,         ///< children[0] IN (children[1..]); negated
    kBetween,    ///< children[0] BETWEEN children[1] AND children[2]; negated
    kLike,       ///< children[0] LIKE children[1]; negated
    kIsNull,     ///< children[0] IS [NOT] NULL; negated
    kCase,       ///< CASE [operand] WHEN..THEN.. [ELSE..] END; layout:
                 ///< children = [operand?] (when,then)* [else?], flags in
                 ///< case_has_operand / case_has_else.
  };

  Kind kind = Kind::kLiteral;
  storage::Value literal;
  ColumnRef column_ref;
  UnaryOp unary_op = UnaryOp::kNeg;
  BinaryOp binary_op = BinaryOp::kEq;
  std::string function_name;       // upper-cased
  bool distinct_arg = false;
  bool negated = false;
  bool case_has_operand = false;   // simple CASE (operand present)
  bool case_has_else = false;
  std::vector<ExprPtr> children;

  ExprPtr Clone() const;
};

ExprPtr MakeLiteral(storage::Value value);
ExprPtr MakeColumn(std::string table, std::string column);
ExprPtr MakeStar(std::string table = "");
ExprPtr MakeUnary(UnaryOp op, ExprPtr operand);
ExprPtr MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr MakeFunction(std::string name, std::vector<ExprPtr> args,
                     bool distinct = false);

/// AND-combines a list of predicates; nullptr for an empty list.
ExprPtr ConjunctionOf(std::vector<ExprPtr> predicates);

/// Splits an expression tree into its top-level AND conjuncts.
std::vector<const Expr*> SplitConjuncts(const Expr* expr);

/// Appends every column reference in the tree to `out`.
void CollectColumnRefs(const Expr& expr, std::vector<const ColumnRef*>& out);

struct TableRef {
  std::string table;
  std::string alias;  ///< Empty when none; effective name = alias or table.

  const std::string& EffectiveName() const {
    return alias.empty() ? table : alias;
  }
};

enum class JoinType { kInner, kLeft, kCross };

struct Join {
  JoinType type = JoinType::kInner;
  TableRef table;
  ExprPtr on;  ///< Null for CROSS joins.
};

struct SelectItem {
  ExprPtr expr;
  std::string alias;  ///< Output column name override.
};

struct OrderItem {
  ExprPtr expr;
  bool ascending = true;
};

struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;   ///< Comma-list; entries past the first are
                                ///< implicit cross joins.
  std::vector<Join> joins;      ///< Explicit JOIN ... ON clauses.
  ExprPtr where;
  std::vector<ExprPtr> group_by;
  ExprPtr having;
  std::vector<OrderItem> order_by;
  std::optional<int64_t> limit;
  std::optional<int64_t> offset;

  /// Every table referenced (FROM list + JOINs), in appearance order.
  std::vector<const TableRef*> AllTables() const;

  std::unique_ptr<SelectStmt> Clone() const;
};

struct ColumnDefClause {
  std::string name;
  std::string type_name;  ///< Vendor type name as written (resolved by dialect).
  bool not_null = false;
  bool primary_key = false;
};

struct ForeignKeyClause {
  std::vector<std::string> columns;
  std::string referenced_table;
  std::vector<std::string> referenced_columns;
};

struct CreateTableStmt {
  std::string table;
  bool if_not_exists = false;
  std::vector<ColumnDefClause> columns;
  std::vector<std::string> primary_key;  ///< Table-level PRIMARY KEY(...).
  std::vector<ForeignKeyClause> foreign_keys;
};

struct CreateViewStmt {
  std::string view;
  std::unique_ptr<SelectStmt> select;
};

struct InsertStmt {
  std::string table;
  std::vector<std::string> columns;           ///< Empty = all, in order.
  std::vector<std::vector<ExprPtr>> rows;     ///< VALUES lists.
  std::unique_ptr<SelectStmt> select;         ///< INSERT ... SELECT form.
};

struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;
};

struct DeleteStmt {
  std::string table;
  ExprPtr where;
};

struct DropStmt {
  enum class Target { kTable, kView };
  Target target = Target::kTable;
  std::string name;
  bool if_exists = false;
};

using Statement =
    std::variant<std::unique_ptr<SelectStmt>, std::unique_ptr<CreateTableStmt>,
                 std::unique_ptr<CreateViewStmt>, std::unique_ptr<InsertStmt>,
                 std::unique_ptr<UpdateStmt>, std::unique_ptr<DeleteStmt>,
                 std::unique_ptr<DropStmt>>;

}  // namespace griddb::sql
