// Canonical query fingerprints for the multi-tier query cache.
//
// A fingerprint is the MD5 of a canonical serialization of a parsed
// SELECT: identifiers are lower-cased and the AST is re-emitted with
// fixed separators, so two texts that differ only in whitespace, keyword
// case or identifier case produce the same fingerprint. Anything that
// changes the *response* stays significant: string literals keep their
// case, and each select item's output column name (alias, bare column
// name, or rendered expression — exactly what the executor will print in
// the result header) is folded in verbatim, so "SELECT id AS Total" and
// "SELECT id AS total" do not collide even though they compute the same
// rows.
#pragma once

#include <string>

#include "griddb/sql/ast.h"

namespace griddb::sql {

/// Canonical text form (exposed for tests; the cache keys on the digest).
std::string CanonicalSelectText(const SelectStmt& stmt);

/// MD5 hex digest of CanonicalSelectText.
std::string FingerprintSelect(const SelectStmt& stmt);

}  // namespace griddb::sql
