#include "griddb/sql/ast.h"

namespace griddb::sql {

const char* BinaryOpSymbol(BinaryOp op) noexcept {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNe: return "<>";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAnd: return "AND";
    case BinaryOp::kOr: return "OR";
    case BinaryOp::kConcat: return "||";
  }
  return "?";
}

ExprPtr Expr::Clone() const {
  auto copy = std::make_unique<Expr>();
  copy->kind = kind;
  copy->literal = literal;
  copy->column_ref = column_ref;
  copy->unary_op = unary_op;
  copy->binary_op = binary_op;
  copy->function_name = function_name;
  copy->distinct_arg = distinct_arg;
  copy->negated = negated;
  copy->case_has_operand = case_has_operand;
  copy->case_has_else = case_has_else;
  copy->children.reserve(children.size());
  for (const ExprPtr& child : children) copy->children.push_back(child->Clone());
  return copy;
}

ExprPtr MakeLiteral(storage::Value value) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kLiteral;
  e->literal = std::move(value);
  return e;
}

ExprPtr MakeColumn(std::string table, std::string column) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kColumn;
  e->column_ref = {std::move(table), std::move(column)};
  return e;
}

ExprPtr MakeStar(std::string table) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kStar;
  e->column_ref.table = std::move(table);
  return e;
}

ExprPtr MakeUnary(UnaryOp op, ExprPtr operand) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kUnary;
  e->unary_op = op;
  e->children.push_back(std::move(operand));
  return e;
}

ExprPtr MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kBinary;
  e->binary_op = op;
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

ExprPtr MakeFunction(std::string name, std::vector<ExprPtr> args,
                     bool distinct) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kFunction;
  e->function_name = std::move(name);
  e->children = std::move(args);
  e->distinct_arg = distinct;
  return e;
}

ExprPtr ConjunctionOf(std::vector<ExprPtr> predicates) {
  ExprPtr result;
  for (ExprPtr& pred : predicates) {
    if (!result) {
      result = std::move(pred);
    } else {
      result = MakeBinary(BinaryOp::kAnd, std::move(result), std::move(pred));
    }
  }
  return result;
}

std::vector<const Expr*> SplitConjuncts(const Expr* expr) {
  std::vector<const Expr*> out;
  if (!expr) return out;
  if (expr->kind == Expr::Kind::kBinary && expr->binary_op == BinaryOp::kAnd) {
    auto left = SplitConjuncts(expr->children[0].get());
    auto right = SplitConjuncts(expr->children[1].get());
    out.insert(out.end(), left.begin(), left.end());
    out.insert(out.end(), right.begin(), right.end());
    return out;
  }
  out.push_back(expr);
  return out;
}

void CollectColumnRefs(const Expr& expr, std::vector<const ColumnRef*>& out) {
  if (expr.kind == Expr::Kind::kColumn) out.push_back(&expr.column_ref);
  for (const ExprPtr& child : expr.children) CollectColumnRefs(*child, out);
}

std::vector<const TableRef*> SelectStmt::AllTables() const {
  std::vector<const TableRef*> out;
  for (const TableRef& t : from) out.push_back(&t);
  for (const Join& j : joins) out.push_back(&j.table);
  return out;
}

std::unique_ptr<SelectStmt> SelectStmt::Clone() const {
  auto copy = std::make_unique<SelectStmt>();
  copy->distinct = distinct;
  for (const SelectItem& item : items) {
    copy->items.push_back({item.expr->Clone(), item.alias});
  }
  copy->from = from;
  for (const Join& j : joins) {
    Join join_copy;
    join_copy.type = j.type;
    join_copy.table = j.table;
    join_copy.on = j.on ? j.on->Clone() : nullptr;
    copy->joins.push_back(std::move(join_copy));
  }
  copy->where = where ? where->Clone() : nullptr;
  for (const ExprPtr& g : group_by) copy->group_by.push_back(g->Clone());
  copy->having = having ? having->Clone() : nullptr;
  for (const OrderItem& o : order_by) {
    copy->order_by.push_back({o.expr->Clone(), o.ascending});
  }
  copy->limit = limit;
  copy->offset = offset;
  return copy;
}

}  // namespace griddb::sql
