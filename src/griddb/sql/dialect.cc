#include "griddb/sql/dialect.h"

#include <algorithm>
#include <array>
#include <cctype>

#include "griddb/util/strings.h"

namespace griddb::sql {

const char* VendorName(Vendor vendor) noexcept {
  switch (vendor) {
    case Vendor::kOracle: return "oracle";
    case Vendor::kMySql: return "mysql";
    case Vendor::kMsSql: return "mssql";
    case Vendor::kSqlite: return "sqlite";
  }
  return "?";
}

Result<Vendor> VendorFromName(std::string_view name) {
  if (EqualsIgnoreCase(name, "oracle")) return Vendor::kOracle;
  if (EqualsIgnoreCase(name, "mysql")) return Vendor::kMySql;
  if (EqualsIgnoreCase(name, "mssql") || EqualsIgnoreCase(name, "sqlserver")) {
    return Vendor::kMsSql;
  }
  if (EqualsIgnoreCase(name, "sqlite")) return Vendor::kSqlite;
  return NotFound("unknown database vendor '" + std::string(name) + "'");
}

bool Dialect::AcceptsQuote(QuoteStyle style) const {
  if (style == QuoteStyle::kNone) return true;
  return std::find(accepted_quotes_.begin(), accepted_quotes_.end(), style) !=
         accepted_quotes_.end();
}

std::string Dialect::QuoteIdentifier(std::string_view ident) const {
  bool needs_quote = ident.empty();
  for (char c : ident) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_')) {
      needs_quote = true;
      break;
    }
  }
  if (!needs_quote && !ident.empty() &&
      std::isdigit(static_cast<unsigned char>(ident[0]))) {
    needs_quote = true;
  }
  if (!needs_quote && IsSqlKeyword(ToUpper(ident))) needs_quote = true;
  if (!needs_quote) return std::string(ident);
  switch (preferred_quote_) {
    case QuoteStyle::kBacktick:
      return "`" + std::string(ident) + "`";
    case QuoteStyle::kBracket:
      return "[" + std::string(ident) + "]";
    default:
      return "\"" + std::string(ident) + "\"";
  }
}

std::string Dialect::TypeNameFor(storage::DataType type) const {
  switch (type) {
    case storage::DataType::kInt64: return int_name_;
    case storage::DataType::kDouble: return double_name_;
    case storage::DataType::kString: return string_name_;
    case storage::DataType::kBool: return bool_name_;
    case storage::DataType::kNull: return "NULL";
  }
  return "?";
}

Result<storage::DataType> Dialect::TypeFromName(
    std::string_view type_name) const {
  // Strip a parenthesized size: VARCHAR(255) -> VARCHAR.
  std::string base(type_name);
  size_t paren = base.find('(');
  if (paren != std::string::npos) base.resize(paren);
  std::string upper = ToUpper(Trim(base));
  for (const auto& [name, type] : type_vocabulary_) {
    if (name == upper) return type;
  }
  return TypeError("dialect '" + name_ + "' does not recognize type '" +
                   std::string(type_name) + "'");
}

namespace {

using storage::DataType;

}  // namespace

// Friend of Dialect (declared in the header); builds the four dialect
// singletons on first use.
const Dialect& MakeDialects(Vendor vendor) {
  static std::array<Dialect, 4> dialects = [] {
    std::array<Dialect, 4> d;

    const std::vector<std::pair<std::string, DataType>> kCommon = {
        {"INT", DataType::kInt64},      {"INTEGER", DataType::kInt64},
        {"BIGINT", DataType::kInt64},   {"SMALLINT", DataType::kInt64},
        {"DOUBLE", DataType::kDouble},  {"FLOAT", DataType::kDouble},
        {"REAL", DataType::kDouble},    {"VARCHAR", DataType::kString},
        {"CHAR", DataType::kString},    {"TEXT", DataType::kString},
        {"BOOLEAN", DataType::kBool},
    };
    auto with = [&](std::initializer_list<std::pair<std::string, DataType>>
                        extra) {
      std::vector<std::pair<std::string, DataType>> v = kCommon;
      v.insert(v.end(), extra.begin(), extra.end());
      return v;
    };

    // Oracle: NUMBER / VARCHAR2, double-quote identifiers, ROWNUM limits.
    Dialect& oracle = d[0];
    oracle.vendor_ = Vendor::kOracle;
    oracle.name_ = "oracle";
    oracle.limit_style_ = LimitStyle::kRownum;
    oracle.preferred_quote_ = QuoteStyle::kDouble;
    oracle.accepted_quotes_ = {QuoteStyle::kDouble};
    oracle.type_vocabulary_ = with({{"NUMBER", DataType::kInt64},
                                    {"VARCHAR2", DataType::kString},
                                    {"BINARY_DOUBLE", DataType::kDouble},
                                    {"CLOB", DataType::kString}});
    oracle.int_name_ = "NUMBER(19)";
    oracle.double_name_ = "BINARY_DOUBLE";
    oracle.string_name_ = "VARCHAR2(4000)";
    oracle.bool_name_ = "NUMBER(1)";

    // MySQL: backtick identifiers, LIMIT/OFFSET.
    Dialect& mysql = d[1];
    mysql.vendor_ = Vendor::kMySql;
    mysql.name_ = "mysql";
    mysql.limit_style_ = LimitStyle::kLimitOffset;
    mysql.preferred_quote_ = QuoteStyle::kBacktick;
    mysql.accepted_quotes_ = {QuoteStyle::kBacktick, QuoteStyle::kDouble};
    mysql.type_vocabulary_ = with({{"TINYINT", DataType::kInt64},
                                   {"MEDIUMINT", DataType::kInt64},
                                   {"LONGTEXT", DataType::kString},
                                   {"BOOL", DataType::kBool}});
    mysql.int_name_ = "BIGINT";
    mysql.double_name_ = "DOUBLE";
    mysql.string_name_ = "VARCHAR(255)";
    mysql.bool_name_ = "TINYINT(1)";

    // MS-SQL: bracket identifiers, TOP n.
    Dialect& mssql = d[2];
    mssql.vendor_ = Vendor::kMsSql;
    mssql.name_ = "mssql";
    mssql.limit_style_ = LimitStyle::kTop;
    mssql.preferred_quote_ = QuoteStyle::kBracket;
    mssql.accepted_quotes_ = {QuoteStyle::kBracket, QuoteStyle::kDouble};
    mssql.type_vocabulary_ = with({{"BIT", DataType::kBool},
                                   {"NVARCHAR", DataType::kString},
                                   {"NTEXT", DataType::kString},
                                   {"DECIMAL", DataType::kDouble}});
    mssql.int_name_ = "BIGINT";
    mssql.double_name_ = "FLOAT";
    mssql.string_name_ = "NVARCHAR(255)";
    mssql.bool_name_ = "BIT";

    // SQLite: accepts everything, LIMIT/OFFSET.
    Dialect& sqlite = d[3];
    sqlite.vendor_ = Vendor::kSqlite;
    sqlite.name_ = "sqlite";
    sqlite.limit_style_ = LimitStyle::kLimitOffset;
    sqlite.preferred_quote_ = QuoteStyle::kDouble;
    sqlite.accepted_quotes_ = {QuoteStyle::kDouble, QuoteStyle::kBacktick,
                               QuoteStyle::kBracket};
    sqlite.type_vocabulary_ = with({{"NUMERIC", DataType::kDouble},
                                    {"BLOB", DataType::kString}});
    sqlite.int_name_ = "INTEGER";
    sqlite.double_name_ = "REAL";
    sqlite.string_name_ = "TEXT";
    sqlite.bool_name_ = "BOOLEAN";
    return d;
  }();

  switch (vendor) {
    case Vendor::kOracle: return dialects[0];
    case Vendor::kMySql: return dialects[1];
    case Vendor::kMsSql: return dialects[2];
    case Vendor::kSqlite: return dialects[3];
  }
  return dialects[3];
}

const Dialect& Dialect::For(Vendor vendor) { return MakeDialects(vendor); }

}  // namespace griddb::sql
