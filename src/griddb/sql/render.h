// AST -> SQL text in a target dialect.
//
// The inverse of the parser; the federated layer uses it to re-emit each
// decomposed sub-query in the dialect of the data mart that will execute
// it (identifier quoting and row-limiting idiom translated per vendor).
#pragma once

#include <string>

#include "griddb/sql/ast.h"
#include "griddb/sql/dialect.h"

namespace griddb::sql {

std::string RenderExpr(const Expr& expr, const Dialect& dialect);
std::string RenderSelect(const SelectStmt& select, const Dialect& dialect);
std::string RenderCreateTable(const CreateTableStmt& stmt,
                              const Dialect& dialect);
std::string RenderInsert(const InsertStmt& stmt, const Dialect& dialect);

}  // namespace griddb::sql
