// Dialect-aware recursive-descent SQL parser.
//
// One grammar covers the portable core plus each vendor's row-limiting
// idiom; the bound Dialect decides which quoting styles and which limit
// idiom are *accepted*. Parsing "SELECT TOP 5 ..." with the MySQL dialect
// fails exactly like a real MySQL server would reject T-SQL.
#pragma once

#include <string_view>

#include "griddb/sql/ast.h"
#include "griddb/sql/dialect.h"
#include "griddb/util/status.h"

namespace griddb::sql {

/// Parses one statement (trailing ';' allowed).
Result<Statement> ParseStatement(std::string_view input, const Dialect& dialect);

/// Parses a statement that must be a SELECT.
Result<std::unique_ptr<SelectStmt>> ParseSelect(std::string_view input,
                                                const Dialect& dialect);

/// Parses a scalar expression (used for tests and predicate strings).
Result<ExprPtr> ParseExpression(std::string_view input, const Dialect& dialect);

}  // namespace griddb::sql
