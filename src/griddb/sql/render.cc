#include "griddb/sql/render.h"

#include <cassert>

namespace griddb::sql {

namespace {

std::string RenderColumnRef(const ColumnRef& ref, const Dialect& dialect) {
  if (ref.table.empty()) return dialect.QuoteIdentifier(ref.column);
  return dialect.QuoteIdentifier(ref.table) + "." +
         dialect.QuoteIdentifier(ref.column);
}

std::string RenderTableRef(const TableRef& ref, const Dialect& dialect) {
  std::string out = dialect.QuoteIdentifier(ref.table);
  if (!ref.alias.empty()) out += " " + dialect.QuoteIdentifier(ref.alias);
  return out;
}

}  // namespace

std::string RenderExpr(const Expr& expr, const Dialect& dialect) {
  switch (expr.kind) {
    case Expr::Kind::kLiteral:
      return expr.literal.ToSqlLiteral();
    case Expr::Kind::kColumn:
      return RenderColumnRef(expr.column_ref, dialect);
    case Expr::Kind::kStar:
      return expr.column_ref.table.empty()
                 ? "*"
                 : dialect.QuoteIdentifier(expr.column_ref.table) + ".*";
    case Expr::Kind::kUnary: {
      std::string inner = RenderExpr(*expr.children[0], dialect);
      return expr.unary_op == UnaryOp::kNeg ? "(-" + inner + ")"
                                            : "(NOT " + inner + ")";
    }
    case Expr::Kind::kBinary: {
      std::string lhs = RenderExpr(*expr.children[0], dialect);
      std::string rhs = RenderExpr(*expr.children[1], dialect);
      return "(" + lhs + " " + BinaryOpSymbol(expr.binary_op) + " " + rhs + ")";
    }
    case Expr::Kind::kFunction: {
      std::string out = expr.function_name + "(";
      if (expr.distinct_arg) out += "DISTINCT ";
      for (size_t i = 0; i < expr.children.size(); ++i) {
        if (i > 0) out += ", ";
        out += RenderExpr(*expr.children[i], dialect);
      }
      return out + ")";
    }
    case Expr::Kind::kIn: {
      std::string out = RenderExpr(*expr.children[0], dialect);
      out += expr.negated ? " NOT IN (" : " IN (";
      for (size_t i = 1; i < expr.children.size(); ++i) {
        if (i > 1) out += ", ";
        out += RenderExpr(*expr.children[i], dialect);
      }
      return "(" + out + "))";
    }
    case Expr::Kind::kBetween: {
      std::string out = RenderExpr(*expr.children[0], dialect);
      out += expr.negated ? " NOT BETWEEN " : " BETWEEN ";
      out += RenderExpr(*expr.children[1], dialect);
      out += " AND ";
      out += RenderExpr(*expr.children[2], dialect);
      return "(" + out + ")";
    }
    case Expr::Kind::kLike: {
      std::string out = RenderExpr(*expr.children[0], dialect);
      out += expr.negated ? " NOT LIKE " : " LIKE ";
      out += RenderExpr(*expr.children[1], dialect);
      return "(" + out + ")";
    }
    case Expr::Kind::kIsNull: {
      std::string out = RenderExpr(*expr.children[0], dialect);
      out += expr.negated ? " IS NOT NULL" : " IS NULL";
      return "(" + out + ")";
    }
    case Expr::Kind::kCase: {
      std::string out = "CASE";
      size_t index = 0;
      if (expr.case_has_operand) {
        out += " " + RenderExpr(*expr.children[index++], dialect);
      }
      size_t end = expr.children.size() - (expr.case_has_else ? 1 : 0);
      while (index < end) {
        out += " WHEN " + RenderExpr(*expr.children[index], dialect);
        out += " THEN " + RenderExpr(*expr.children[index + 1], dialect);
        index += 2;
      }
      if (expr.case_has_else) {
        out += " ELSE " + RenderExpr(*expr.children.back(), dialect);
      }
      return out + " END";
    }
  }
  assert(false && "unreachable expression kind");
  return "";
}

std::string RenderSelect(const SelectStmt& select, const Dialect& dialect) {
  std::string out = "SELECT ";

  if (select.limit && dialect.limit_style() == LimitStyle::kTop) {
    out += "TOP " + std::to_string(*select.limit) + " ";
  }
  if (select.distinct) out += "DISTINCT ";

  for (size_t i = 0; i < select.items.size(); ++i) {
    if (i > 0) out += ", ";
    out += RenderExpr(*select.items[i].expr, dialect);
    if (!select.items[i].alias.empty()) {
      out += " AS " + dialect.QuoteIdentifier(select.items[i].alias);
    }
  }

  out += " FROM ";
  for (size_t i = 0; i < select.from.size(); ++i) {
    if (i > 0) out += ", ";
    out += RenderTableRef(select.from[i], dialect);
  }
  for (const Join& join : select.joins) {
    switch (join.type) {
      case JoinType::kInner: out += " JOIN "; break;
      case JoinType::kLeft: out += " LEFT JOIN "; break;
      case JoinType::kCross: out += " CROSS JOIN "; break;
    }
    out += RenderTableRef(join.table, dialect);
    if (join.on) out += " ON " + RenderExpr(*join.on, dialect);
  }

  std::string where_text;
  if (select.where) where_text = RenderExpr(*select.where, dialect);
  if (select.limit && dialect.limit_style() == LimitStyle::kRownum) {
    std::string rownum = "ROWNUM <= " + std::to_string(*select.limit);
    where_text = where_text.empty() ? rownum : "(" + where_text + " AND " + rownum + ")";
  }
  if (!where_text.empty()) out += " WHERE " + where_text;

  if (!select.group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < select.group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += RenderExpr(*select.group_by[i], dialect);
    }
  }
  if (select.having) out += " HAVING " + RenderExpr(*select.having, dialect);

  if (!select.order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < select.order_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += RenderExpr(*select.order_by[i].expr, dialect);
      if (!select.order_by[i].ascending) out += " DESC";
    }
  }

  if (select.limit && dialect.limit_style() == LimitStyle::kLimitOffset) {
    out += " LIMIT " + std::to_string(*select.limit);
    if (select.offset) out += " OFFSET " + std::to_string(*select.offset);
  }
  return out;
}

std::string RenderCreateTable(const CreateTableStmt& stmt,
                              const Dialect& dialect) {
  std::string out = "CREATE TABLE ";
  if (stmt.if_not_exists) out += "IF NOT EXISTS ";
  out += dialect.QuoteIdentifier(stmt.table) + " (";
  bool first = true;
  for (const ColumnDefClause& col : stmt.columns) {
    if (!first) out += ", ";
    first = false;
    out += dialect.QuoteIdentifier(col.name) + " " + col.type_name;
    if (col.primary_key) out += " PRIMARY KEY";
    if (col.not_null) out += " NOT NULL";
  }
  if (!stmt.primary_key.empty()) {
    out += ", PRIMARY KEY (";
    for (size_t i = 0; i < stmt.primary_key.size(); ++i) {
      if (i > 0) out += ", ";
      out += dialect.QuoteIdentifier(stmt.primary_key[i]);
    }
    out += ")";
  }
  for (const ForeignKeyClause& fk : stmt.foreign_keys) {
    out += ", FOREIGN KEY (";
    for (size_t i = 0; i < fk.columns.size(); ++i) {
      if (i > 0) out += ", ";
      out += dialect.QuoteIdentifier(fk.columns[i]);
    }
    out += ") REFERENCES " + dialect.QuoteIdentifier(fk.referenced_table);
    if (!fk.referenced_columns.empty()) {
      out += " (";
      for (size_t i = 0; i < fk.referenced_columns.size(); ++i) {
        if (i > 0) out += ", ";
        out += dialect.QuoteIdentifier(fk.referenced_columns[i]);
      }
      out += ")";
    }
  }
  return out + ")";
}

std::string RenderInsert(const InsertStmt& stmt, const Dialect& dialect) {
  std::string out = "INSERT INTO " + dialect.QuoteIdentifier(stmt.table);
  if (!stmt.columns.empty()) {
    out += " (";
    for (size_t i = 0; i < stmt.columns.size(); ++i) {
      if (i > 0) out += ", ";
      out += dialect.QuoteIdentifier(stmt.columns[i]);
    }
    out += ")";
  }
  if (stmt.select) {
    out += " " + RenderSelect(*stmt.select, dialect);
    return out;
  }
  out += " VALUES ";
  for (size_t r = 0; r < stmt.rows.size(); ++r) {
    if (r > 0) out += ", ";
    out += "(";
    for (size_t c = 0; c < stmt.rows[r].size(); ++c) {
      if (c > 0) out += ", ";
      out += RenderExpr(*stmt.rows[r][c], dialect);
    }
    out += ")";
  }
  return out;
}

}  // namespace griddb::sql
