#include "griddb/sql/parser.h"

#include <utility>

#include "griddb/util/strings.h"

namespace griddb::sql {

namespace {

class Parser {
 public:
  Parser(std::vector<Token> tokens, const Dialect& dialect)
      : tokens_(std::move(tokens)), dialect_(dialect) {}

  Result<Statement> ParseStatement() {
    const Token& tok = Peek();
    Statement stmt = std::unique_ptr<SelectStmt>();
    if (tok.IsKeyword("SELECT")) {
      GRIDDB_ASSIGN_OR_RETURN(auto select, ParseSelectStmt());
      stmt = std::move(select);
    } else if (tok.IsKeyword("CREATE")) {
      GRIDDB_ASSIGN_OR_RETURN(stmt, ParseCreate());
    } else if (tok.IsKeyword("INSERT")) {
      GRIDDB_ASSIGN_OR_RETURN(auto insert, ParseInsert());
      stmt = std::move(insert);
    } else if (tok.IsKeyword("UPDATE")) {
      GRIDDB_ASSIGN_OR_RETURN(auto update, ParseUpdate());
      stmt = std::move(update);
    } else if (tok.IsKeyword("DELETE")) {
      GRIDDB_ASSIGN_OR_RETURN(auto del, ParseDelete());
      stmt = std::move(del);
    } else if (tok.IsKeyword("DROP")) {
      GRIDDB_ASSIGN_OR_RETURN(auto drop, ParseDrop());
      stmt = std::move(drop);
    } else {
      return Error("expected a SQL statement");
    }
    ConsumeOperator(";");
    if (Peek().type != TokenType::kEnd) {
      return Error("unexpected trailing tokens");
    }
    return stmt;
  }

  Result<std::unique_ptr<SelectStmt>> ParseSelectOnly() {
    GRIDDB_ASSIGN_OR_RETURN(auto select, ParseSelectStmt());
    ConsumeOperator(";");
    if (Peek().type != TokenType::kEnd) {
      return Error("unexpected trailing tokens");
    }
    return select;
  }

  Result<ExprPtr> ParseExpressionOnly() {
    GRIDDB_ASSIGN_OR_RETURN(ExprPtr expr, ParseExpr());
    if (Peek().type != TokenType::kEnd) {
      return Error("unexpected trailing tokens after expression");
    }
    return expr;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t idx = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[idx];
  }
  const Token& Advance() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }

  Status Error(std::string message) const {
    return ParseError("SQL (" + dialect_.name() + ") near offset " +
                      std::to_string(Peek().position) + ": " +
                      std::move(message));
  }

  bool ConsumeKeyword(std::string_view kw) {
    if (Peek().IsKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeOperator(std::string_view op) {
    if (Peek().IsOperator(op)) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ExpectKeyword(std::string_view kw) {
    if (!ConsumeKeyword(kw)) {
      return Error("expected " + std::string(kw));
    }
    return Status::Ok();
  }

  Status ExpectOperator(std::string_view op) {
    if (!ConsumeOperator(op)) {
      return Error("expected '" + std::string(op) + "'");
    }
    return Status::Ok();
  }

  /// Identifier or dialect-accepted quoted identifier.
  Result<std::string> ParseIdentifier() {
    const Token& tok = Peek();
    if (tok.type == TokenType::kIdentifier) {
      ++pos_;
      return tok.text;
    }
    if (tok.type == TokenType::kQuotedIdentifier) {
      if (!dialect_.AcceptsQuote(tok.quote)) {
        const char* style = tok.quote == QuoteStyle::kBacktick ? "`...`"
                            : tok.quote == QuoteStyle::kBracket ? "[...]"
                                                                : "\"...\"";
        return Error(std::string("dialect '") + dialect_.name() +
                     "' does not accept " + style + " quoted identifiers");
      }
      ++pos_;
      return tok.text;
    }
    return Error("expected identifier");
  }

  // ---- expressions --------------------------------------------------

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    GRIDDB_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (ConsumeKeyword("OR")) {
      GRIDDB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = MakeBinary(BinaryOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    GRIDDB_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (Peek().IsKeyword("AND")) {
      ++pos_;
      GRIDDB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      lhs = MakeBinary(BinaryOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseNot() {
    if (ConsumeKeyword("NOT")) {
      GRIDDB_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
      return MakeUnary(UnaryOp::kNot, std::move(operand));
    }
    return ParsePredicate();
  }

  Result<ExprPtr> ParsePredicate() {
    GRIDDB_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());

    // Comparison operators.
    static constexpr std::pair<std::string_view, BinaryOp> kComparisons[] = {
        {"=", BinaryOp::kEq},  {"<>", BinaryOp::kNe}, {"<=", BinaryOp::kLe},
        {">=", BinaryOp::kGe}, {"<", BinaryOp::kLt},  {">", BinaryOp::kGt}};
    for (const auto& [symbol, op] : kComparisons) {
      if (Peek().IsOperator(symbol)) {
        ++pos_;
        GRIDDB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
        return MakeBinary(op, std::move(lhs), std::move(rhs));
      }
    }

    bool negated = false;
    if (Peek().IsKeyword("NOT") &&
        (Peek(1).IsKeyword("IN") || Peek(1).IsKeyword("BETWEEN") ||
         Peek(1).IsKeyword("LIKE"))) {
      negated = true;
      ++pos_;
    }

    if (ConsumeKeyword("IN")) {
      GRIDDB_RETURN_IF_ERROR(ExpectOperator("("));
      auto expr = std::make_unique<Expr>();
      expr->kind = Expr::Kind::kIn;
      expr->negated = negated;
      expr->children.push_back(std::move(lhs));
      do {
        GRIDDB_ASSIGN_OR_RETURN(ExprPtr item, ParseExpr());
        expr->children.push_back(std::move(item));
      } while (ConsumeOperator(","));
      GRIDDB_RETURN_IF_ERROR(ExpectOperator(")"));
      return expr;
    }

    if (ConsumeKeyword("BETWEEN")) {
      GRIDDB_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
      GRIDDB_RETURN_IF_ERROR(ExpectKeyword("AND"));
      GRIDDB_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
      auto expr = std::make_unique<Expr>();
      expr->kind = Expr::Kind::kBetween;
      expr->negated = negated;
      expr->children.push_back(std::move(lhs));
      expr->children.push_back(std::move(lo));
      expr->children.push_back(std::move(hi));
      return expr;
    }

    if (ConsumeKeyword("LIKE")) {
      GRIDDB_ASSIGN_OR_RETURN(ExprPtr pattern, ParseAdditive());
      auto expr = std::make_unique<Expr>();
      expr->kind = Expr::Kind::kLike;
      expr->negated = negated;
      expr->children.push_back(std::move(lhs));
      expr->children.push_back(std::move(pattern));
      return expr;
    }

    if (negated) return Error("expected IN, BETWEEN or LIKE after NOT");

    if (ConsumeKeyword("IS")) {
      bool is_negated = ConsumeKeyword("NOT");
      GRIDDB_RETURN_IF_ERROR(ExpectKeyword("NULL"));
      auto expr = std::make_unique<Expr>();
      expr->kind = Expr::Kind::kIsNull;
      expr->negated = is_negated;
      expr->children.push_back(std::move(lhs));
      return expr;
    }

    return lhs;
  }

  Result<ExprPtr> ParseAdditive() {
    GRIDDB_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    while (true) {
      BinaryOp op;
      if (Peek().IsOperator("+")) op = BinaryOp::kAdd;
      else if (Peek().IsOperator("-")) op = BinaryOp::kSub;
      else if (Peek().IsOperator("||")) op = BinaryOp::kConcat;
      else break;
      ++pos_;
      GRIDDB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseMultiplicative() {
    GRIDDB_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    while (true) {
      BinaryOp op;
      if (Peek().IsOperator("*")) op = BinaryOp::kMul;
      else if (Peek().IsOperator("/")) op = BinaryOp::kDiv;
      else if (Peek().IsOperator("%")) op = BinaryOp::kMod;
      else break;
      ++pos_;
      GRIDDB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseUnary() {
    if (ConsumeOperator("-")) {
      GRIDDB_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      return MakeUnary(UnaryOp::kNeg, std::move(operand));
    }
    if (ConsumeOperator("+")) return ParseUnary();
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& tok = Peek();

    if (tok.type == TokenType::kInteger) {
      ++pos_;
      return MakeLiteral(storage::Value(tok.int_value));
    }
    if (tok.type == TokenType::kFloat) {
      ++pos_;
      return MakeLiteral(storage::Value(tok.float_value));
    }
    if (tok.type == TokenType::kString) {
      ++pos_;
      return MakeLiteral(storage::Value(tok.text));
    }
    if (tok.IsKeyword("NULL")) {
      ++pos_;
      return MakeLiteral(storage::Value::Null());
    }
    if (tok.IsKeyword("TRUE")) {
      ++pos_;
      return MakeLiteral(storage::Value(true));
    }
    if (tok.IsKeyword("FALSE")) {
      ++pos_;
      return MakeLiteral(storage::Value(false));
    }
    if (tok.IsKeyword("ROWNUM")) {
      if (dialect_.limit_style() != LimitStyle::kRownum) {
        return Error("ROWNUM is Oracle-specific syntax");
      }
      ++pos_;
      return MakeColumn("", "ROWNUM");
    }
    if (tok.IsKeyword("CASE")) {
      ++pos_;
      auto expr = std::make_unique<Expr>();
      expr->kind = Expr::Kind::kCase;
      // Simple CASE has an operand before the first WHEN.
      if (!Peek().IsKeyword("WHEN")) {
        GRIDDB_ASSIGN_OR_RETURN(ExprPtr operand, ParseExpr());
        expr->case_has_operand = true;
        expr->children.push_back(std::move(operand));
      }
      if (!Peek().IsKeyword("WHEN")) {
        return Error("expected WHEN in CASE expression");
      }
      while (ConsumeKeyword("WHEN")) {
        GRIDDB_ASSIGN_OR_RETURN(ExprPtr when, ParseExpr());
        GRIDDB_RETURN_IF_ERROR(ExpectKeyword("THEN"));
        GRIDDB_ASSIGN_OR_RETURN(ExprPtr then, ParseExpr());
        expr->children.push_back(std::move(when));
        expr->children.push_back(std::move(then));
      }
      if (ConsumeKeyword("ELSE")) {
        GRIDDB_ASSIGN_OR_RETURN(ExprPtr otherwise, ParseExpr());
        expr->case_has_else = true;
        expr->children.push_back(std::move(otherwise));
      }
      GRIDDB_RETURN_IF_ERROR(ExpectKeyword("END"));
      return expr;
    }
    if (tok.IsOperator("(")) {
      ++pos_;
      GRIDDB_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
      GRIDDB_RETURN_IF_ERROR(ExpectOperator(")"));
      return inner;
    }
    if (tok.IsOperator("*")) {
      ++pos_;
      return MakeStar();
    }

    if (tok.type == TokenType::kIdentifier ||
        tok.type == TokenType::kQuotedIdentifier) {
      GRIDDB_ASSIGN_OR_RETURN(std::string first, ParseIdentifier());
      // Function call?
      if (Peek().IsOperator("(")) {
        ++pos_;
        std::string fname = ToUpper(first);
        bool distinct = false;
        std::vector<ExprPtr> args;
        if (!Peek().IsOperator(")")) {
          if (ConsumeKeyword("DISTINCT")) distinct = true;
          do {
            GRIDDB_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
            args.push_back(std::move(arg));
          } while (ConsumeOperator(","));
        }
        GRIDDB_RETURN_IF_ERROR(ExpectOperator(")"));
        return MakeFunction(std::move(fname), std::move(args), distinct);
      }
      // Qualified reference: t.x or t.*
      if (ConsumeOperator(".")) {
        if (ConsumeOperator("*")) return MakeStar(first);
        GRIDDB_ASSIGN_OR_RETURN(std::string column, ParseIdentifier());
        return MakeColumn(std::move(first), std::move(column));
      }
      return MakeColumn("", std::move(first));
    }

    return Error("expected expression");
  }

  // ---- SELECT --------------------------------------------------------

  Result<std::unique_ptr<SelectStmt>> ParseSelectStmt() {
    GRIDDB_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    auto select = std::make_unique<SelectStmt>();

    // MS-SQL: SELECT TOP n ...
    if (Peek().IsKeyword("TOP")) {
      if (dialect_.limit_style() != LimitStyle::kTop) {
        return Error("TOP is MS-SQL-specific syntax");
      }
      ++pos_;
      if (Peek().type != TokenType::kInteger) {
        return Error("expected integer after TOP");
      }
      select->limit = Advance().int_value;
    }

    if (ConsumeKeyword("DISTINCT")) select->distinct = true;
    else ConsumeKeyword("ALL");

    do {
      SelectItem item;
      GRIDDB_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (ConsumeKeyword("AS")) {
        GRIDDB_ASSIGN_OR_RETURN(item.alias, ParseIdentifier());
      } else if (Peek().type == TokenType::kIdentifier ||
                 Peek().type == TokenType::kQuotedIdentifier) {
        GRIDDB_ASSIGN_OR_RETURN(item.alias, ParseIdentifier());
      }
      select->items.push_back(std::move(item));
    } while (ConsumeOperator(","));

    GRIDDB_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    GRIDDB_ASSIGN_OR_RETURN(TableRef first, ParseTableRef());
    select->from.push_back(std::move(first));
    while (ConsumeOperator(",")) {
      GRIDDB_ASSIGN_OR_RETURN(TableRef t, ParseTableRef());
      select->from.push_back(std::move(t));
    }

    // JOIN clauses.
    while (true) {
      JoinType type;
      if (Peek().IsKeyword("JOIN") || Peek().IsKeyword("INNER")) {
        type = JoinType::kInner;
        ConsumeKeyword("INNER");
        GRIDDB_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
      } else if (Peek().IsKeyword("LEFT")) {
        type = JoinType::kLeft;
        ++pos_;
        ConsumeKeyword("OUTER");
        GRIDDB_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
      } else if (Peek().IsKeyword("CROSS")) {
        type = JoinType::kCross;
        ++pos_;
        GRIDDB_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
      } else {
        break;
      }
      Join join;
      join.type = type;
      GRIDDB_ASSIGN_OR_RETURN(join.table, ParseTableRef());
      if (type != JoinType::kCross) {
        GRIDDB_RETURN_IF_ERROR(ExpectKeyword("ON"));
        GRIDDB_ASSIGN_OR_RETURN(join.on, ParseExpr());
      }
      select->joins.push_back(std::move(join));
    }

    if (ConsumeKeyword("WHERE")) {
      GRIDDB_ASSIGN_OR_RETURN(select->where, ParseExpr());
    }

    if (Peek().IsKeyword("GROUP")) {
      ++pos_;
      GRIDDB_RETURN_IF_ERROR(ExpectKeyword("BY"));
      do {
        GRIDDB_ASSIGN_OR_RETURN(ExprPtr g, ParseExpr());
        select->group_by.push_back(std::move(g));
      } while (ConsumeOperator(","));
    }

    if (ConsumeKeyword("HAVING")) {
      GRIDDB_ASSIGN_OR_RETURN(select->having, ParseExpr());
    }

    if (Peek().IsKeyword("ORDER")) {
      ++pos_;
      GRIDDB_RETURN_IF_ERROR(ExpectKeyword("BY"));
      do {
        OrderItem item;
        GRIDDB_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (ConsumeKeyword("DESC")) item.ascending = false;
        else ConsumeKeyword("ASC");
        select->order_by.push_back(std::move(item));
      } while (ConsumeOperator(","));
    }

    if (Peek().IsKeyword("LIMIT")) {
      if (dialect_.limit_style() != LimitStyle::kLimitOffset) {
        return Error("LIMIT is MySQL/SQLite-specific syntax");
      }
      ++pos_;
      if (Peek().type != TokenType::kInteger) {
        return Error("expected integer after LIMIT");
      }
      select->limit = Advance().int_value;
      if (ConsumeKeyword("OFFSET")) {
        if (Peek().type != TokenType::kInteger) {
          return Error("expected integer after OFFSET");
        }
        select->offset = Advance().int_value;
      }
    }

    // Oracle: hoist "ROWNUM <= n" conjuncts out of WHERE into limit.
    if (dialect_.limit_style() == LimitStyle::kRownum && select->where) {
      GRIDDB_RETURN_IF_ERROR(HoistRownum(*select));
    }

    return select;
  }

  static bool IsRownumRef(const Expr& e) {
    return e.kind == Expr::Kind::kColumn && e.column_ref.table.empty() &&
           EqualsIgnoreCase(e.column_ref.column, "ROWNUM");
  }

  Status HoistRownum(SelectStmt& select) {
    std::vector<const Expr*> conjuncts = SplitConjuncts(select.where.get());
    std::vector<ExprPtr> kept;
    std::optional<int64_t> limit;
    for (const Expr* conjunct : conjuncts) {
      bool handled = false;
      if (conjunct->kind == Expr::Kind::kBinary) {
        const Expr& lhs = *conjunct->children[0];
        const Expr& rhs = *conjunct->children[1];
        if (IsRownumRef(lhs) && rhs.kind == Expr::Kind::kLiteral &&
            rhs.literal.type() == storage::DataType::kInt64) {
          int64_t n = rhs.literal.AsInt64Strict();
          if (conjunct->binary_op == BinaryOp::kLe) {
            limit = n;
            handled = true;
          } else if (conjunct->binary_op == BinaryOp::kLt) {
            limit = n - 1;
            handled = true;
          }
        }
      }
      if (!handled) {
        // Any other ROWNUM usage is unsupported.
        std::vector<const ColumnRef*> refs;
        CollectColumnRefs(*conjunct, refs);
        for (const ColumnRef* ref : refs) {
          if (ref->table.empty() && EqualsIgnoreCase(ref->column, "ROWNUM")) {
            return Error("only 'ROWNUM <= n' / 'ROWNUM < n' is supported");
          }
        }
        kept.push_back(conjunct->Clone());
      }
    }
    if (limit) {
      select.limit = std::max<int64_t>(0, *limit);
      select.where = ConjunctionOf(std::move(kept));
    }
    return Status::Ok();
  }

  Result<TableRef> ParseTableRef() {
    TableRef ref;
    GRIDDB_ASSIGN_OR_RETURN(ref.table, ParseIdentifier());
    if (ConsumeKeyword("AS")) {
      GRIDDB_ASSIGN_OR_RETURN(ref.alias, ParseIdentifier());
    } else if (Peek().type == TokenType::kIdentifier ||
               Peek().type == TokenType::kQuotedIdentifier) {
      GRIDDB_ASSIGN_OR_RETURN(ref.alias, ParseIdentifier());
    }
    return ref;
  }

  // ---- DDL / DML -----------------------------------------------------

  Result<Statement> ParseCreate() {
    GRIDDB_RETURN_IF_ERROR(ExpectKeyword("CREATE"));
    if (ConsumeKeyword("TABLE")) {
      auto stmt = std::make_unique<CreateTableStmt>();
      if (Peek().IsKeyword("IF")) {
        ++pos_;
        GRIDDB_RETURN_IF_ERROR(ExpectKeyword("NOT"));
        GRIDDB_RETURN_IF_ERROR(ExpectKeyword("EXISTS"));
        stmt->if_not_exists = true;
      }
      GRIDDB_ASSIGN_OR_RETURN(stmt->table, ParseIdentifier());
      GRIDDB_RETURN_IF_ERROR(ExpectOperator("("));
      do {
        if (Peek().IsKeyword("PRIMARY")) {
          ++pos_;
          GRIDDB_RETURN_IF_ERROR(ExpectKeyword("KEY"));
          GRIDDB_RETURN_IF_ERROR(ExpectOperator("("));
          do {
            GRIDDB_ASSIGN_OR_RETURN(std::string col, ParseIdentifier());
            stmt->primary_key.push_back(std::move(col));
          } while (ConsumeOperator(","));
          GRIDDB_RETURN_IF_ERROR(ExpectOperator(")"));
          continue;
        }
        if (Peek().IsKeyword("FOREIGN")) {
          ++pos_;
          GRIDDB_RETURN_IF_ERROR(ExpectKeyword("KEY"));
          ForeignKeyClause fk;
          GRIDDB_RETURN_IF_ERROR(ExpectOperator("("));
          do {
            GRIDDB_ASSIGN_OR_RETURN(std::string col, ParseIdentifier());
            fk.columns.push_back(std::move(col));
          } while (ConsumeOperator(","));
          GRIDDB_RETURN_IF_ERROR(ExpectOperator(")"));
          GRIDDB_RETURN_IF_ERROR(ExpectKeyword("REFERENCES"));
          GRIDDB_ASSIGN_OR_RETURN(fk.referenced_table, ParseIdentifier());
          if (ConsumeOperator("(")) {
            do {
              GRIDDB_ASSIGN_OR_RETURN(std::string col, ParseIdentifier());
              fk.referenced_columns.push_back(std::move(col));
            } while (ConsumeOperator(","));
            GRIDDB_RETURN_IF_ERROR(ExpectOperator(")"));
          }
          stmt->foreign_keys.push_back(std::move(fk));
          continue;
        }
        ColumnDefClause col;
        GRIDDB_ASSIGN_OR_RETURN(col.name, ParseIdentifier());
        GRIDDB_ASSIGN_OR_RETURN(col.type_name, ParseTypeName());
        while (true) {
          if (Peek().IsKeyword("PRIMARY")) {
            ++pos_;
            GRIDDB_RETURN_IF_ERROR(ExpectKeyword("KEY"));
            col.primary_key = true;
          } else if (Peek().IsKeyword("NOT")) {
            ++pos_;
            GRIDDB_RETURN_IF_ERROR(ExpectKeyword("NULL"));
            col.not_null = true;
          } else {
            break;
          }
        }
        stmt->columns.push_back(std::move(col));
      } while (ConsumeOperator(","));
      GRIDDB_RETURN_IF_ERROR(ExpectOperator(")"));
      return Statement(std::move(stmt));
    }
    if (ConsumeKeyword("VIEW")) {
      auto stmt = std::make_unique<CreateViewStmt>();
      GRIDDB_ASSIGN_OR_RETURN(stmt->view, ParseIdentifier());
      GRIDDB_RETURN_IF_ERROR(ExpectKeyword("AS"));
      GRIDDB_ASSIGN_OR_RETURN(stmt->select, ParseSelectStmt());
      return Statement(std::move(stmt));
    }
    return Error("expected TABLE or VIEW after CREATE");
  }

  /// Type name, possibly with a parenthesized size: VARCHAR(255),
  /// NUMBER(19), TINYINT(1). Size digits are kept in the text.
  Result<std::string> ParseTypeName() {
    GRIDDB_ASSIGN_OR_RETURN(std::string name, ParseIdentifier());
    if (ConsumeOperator("(")) {
      name += "(";
      bool first = true;
      while (!Peek().IsOperator(")")) {
        if (Peek().type == TokenType::kEnd) return Error("unterminated type");
        if (!first) name += ",";
        if (Peek().type != TokenType::kInteger) {
          return Error("expected integer in type size");
        }
        name += std::to_string(Advance().int_value);
        first = false;
        ConsumeOperator(",");
      }
      ++pos_;
      name += ")";
    }
    return name;
  }

  Result<std::unique_ptr<InsertStmt>> ParseInsert() {
    GRIDDB_RETURN_IF_ERROR(ExpectKeyword("INSERT"));
    GRIDDB_RETURN_IF_ERROR(ExpectKeyword("INTO"));
    auto stmt = std::make_unique<InsertStmt>();
    GRIDDB_ASSIGN_OR_RETURN(stmt->table, ParseIdentifier());
    if (ConsumeOperator("(")) {
      do {
        GRIDDB_ASSIGN_OR_RETURN(std::string col, ParseIdentifier());
        stmt->columns.push_back(std::move(col));
      } while (ConsumeOperator(","));
      GRIDDB_RETURN_IF_ERROR(ExpectOperator(")"));
    }
    if (Peek().IsKeyword("SELECT")) {
      GRIDDB_ASSIGN_OR_RETURN(stmt->select, ParseSelectStmt());
      return stmt;
    }
    GRIDDB_RETURN_IF_ERROR(ExpectKeyword("VALUES"));
    do {
      GRIDDB_RETURN_IF_ERROR(ExpectOperator("("));
      std::vector<ExprPtr> row;
      do {
        GRIDDB_ASSIGN_OR_RETURN(ExprPtr v, ParseExpr());
        row.push_back(std::move(v));
      } while (ConsumeOperator(","));
      GRIDDB_RETURN_IF_ERROR(ExpectOperator(")"));
      stmt->rows.push_back(std::move(row));
    } while (ConsumeOperator(","));
    return stmt;
  }

  Result<std::unique_ptr<UpdateStmt>> ParseUpdate() {
    GRIDDB_RETURN_IF_ERROR(ExpectKeyword("UPDATE"));
    auto stmt = std::make_unique<UpdateStmt>();
    GRIDDB_ASSIGN_OR_RETURN(stmt->table, ParseIdentifier());
    GRIDDB_RETURN_IF_ERROR(ExpectKeyword("SET"));
    do {
      GRIDDB_ASSIGN_OR_RETURN(std::string col, ParseIdentifier());
      GRIDDB_RETURN_IF_ERROR(ExpectOperator("="));
      GRIDDB_ASSIGN_OR_RETURN(ExprPtr value, ParseExpr());
      stmt->assignments.emplace_back(std::move(col), std::move(value));
    } while (ConsumeOperator(","));
    if (ConsumeKeyword("WHERE")) {
      GRIDDB_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    return stmt;
  }

  Result<std::unique_ptr<DeleteStmt>> ParseDelete() {
    GRIDDB_RETURN_IF_ERROR(ExpectKeyword("DELETE"));
    GRIDDB_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    auto stmt = std::make_unique<DeleteStmt>();
    GRIDDB_ASSIGN_OR_RETURN(stmt->table, ParseIdentifier());
    if (ConsumeKeyword("WHERE")) {
      GRIDDB_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    return stmt;
  }

  Result<std::unique_ptr<DropStmt>> ParseDrop() {
    GRIDDB_RETURN_IF_ERROR(ExpectKeyword("DROP"));
    auto stmt = std::make_unique<DropStmt>();
    if (ConsumeKeyword("TABLE")) {
      stmt->target = DropStmt::Target::kTable;
    } else if (ConsumeKeyword("VIEW")) {
      stmt->target = DropStmt::Target::kView;
    } else {
      return Error("expected TABLE or VIEW after DROP");
    }
    if (Peek().IsKeyword("IF")) {
      ++pos_;
      GRIDDB_RETURN_IF_ERROR(ExpectKeyword("EXISTS"));
      stmt->if_exists = true;
    }
    GRIDDB_ASSIGN_OR_RETURN(stmt->name, ParseIdentifier());
    return stmt;
  }

  std::vector<Token> tokens_;
  const Dialect& dialect_;
  size_t pos_ = 0;
};

}  // namespace

Result<Statement> ParseStatement(std::string_view input,
                                 const Dialect& dialect) {
  GRIDDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  Parser parser(std::move(tokens), dialect);
  return parser.ParseStatement();
}

Result<std::unique_ptr<SelectStmt>> ParseSelect(std::string_view input,
                                                const Dialect& dialect) {
  GRIDDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  Parser parser(std::move(tokens), dialect);
  return parser.ParseSelectOnly();
}

Result<ExprPtr> ParseExpression(std::string_view input,
                                const Dialect& dialect) {
  GRIDDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  Parser parser(std::move(tokens), dialect);
  return parser.ParseExpressionOnly();
}

}  // namespace griddb::sql
