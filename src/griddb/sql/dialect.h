// Vendor dialect descriptions.
//
// The four personalities match the vendors in the paper's testbed
// (§2, §4.1, §4.3): Oracle at Tier-0/1, MySQL and MS-SQL at Tier-2/3, and
// SQLite for disconnected analysis. The differences modelled are the ones
// the federation layer actually has to bridge: identifier quoting, row-
// limiting syntax, and the type-name vocabulary. A parser bound to a
// dialect *rejects* foreign syntax, so tests can demonstrate that raw
// query forwarding across vendors fails where the middleware succeeds.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "griddb/sql/lexer.h"
#include "griddb/storage/value.h"
#include "griddb/util/status.h"

namespace griddb::sql {

enum class Vendor { kOracle, kMySql, kMsSql, kSqlite };

const char* VendorName(Vendor vendor) noexcept;
Result<Vendor> VendorFromName(std::string_view name);

enum class LimitStyle {
  kLimitOffset,  ///< SELECT ... LIMIT n [OFFSET m]      (MySQL, SQLite)
  kTop,          ///< SELECT TOP n ...                    (MS-SQL)
  kRownum,       ///< ... WHERE ROWNUM <= n               (Oracle)
};

class Dialect {
 public:
  Vendor vendor() const { return vendor_; }
  const std::string& name() const { return name_; }
  LimitStyle limit_style() const { return limit_style_; }

  /// Identifier-quoting style the dialect emits.
  QuoteStyle preferred_quote() const { return preferred_quote_; }
  /// Whether the dialect's parser accepts a given quoting style.
  bool AcceptsQuote(QuoteStyle style) const;

  /// Renders an identifier with the dialect's preferred quoting. Bare
  /// identifiers that need no quoting are passed through.
  std::string QuoteIdentifier(std::string_view ident) const;

  /// Vendor type name for a storage type (e.g. kInt64 -> "NUMBER(19)" on
  /// Oracle, "BIGINT" on MySQL/MS-SQL, "INTEGER" on SQLite).
  std::string TypeNameFor(storage::DataType type) const;

  /// Resolves a type name as written in DDL. Each dialect accepts its own
  /// vocabulary plus the portable core (INT/INTEGER/BIGINT, DOUBLE/FLOAT/
  /// REAL, VARCHAR/TEXT/CHAR, BOOLEAN).
  Result<storage::DataType> TypeFromName(std::string_view type_name) const;

  /// All four built-in dialects, by vendor.
  static const Dialect& For(Vendor vendor);

 private:
  friend const Dialect& MakeDialects(Vendor);
  Vendor vendor_ = Vendor::kSqlite;
  std::string name_;
  LimitStyle limit_style_ = LimitStyle::kLimitOffset;
  QuoteStyle preferred_quote_ = QuoteStyle::kDouble;
  std::vector<QuoteStyle> accepted_quotes_;
  std::vector<std::pair<std::string, storage::DataType>> type_vocabulary_;
  std::string int_name_, double_name_, string_name_, bool_name_;
};

}  // namespace griddb::sql
