#include "griddb/sql/fingerprint.h"

#include "griddb/sql/render.h"
#include "griddb/util/md5.h"
#include "griddb/util/strings.h"

namespace griddb::sql {

namespace {

/// Output column name of a select item — must mirror the executor's
/// OutputName (engine/select_executor.cc) so two queries fingerprint
/// equal only when their response headers are identical too.
std::string ItemOutputName(const SelectItem& item) {
  if (!item.alias.empty()) return item.alias;
  if (item.expr->kind == Expr::Kind::kColumn) {
    return item.expr->column_ref.column;
  }
  return RenderExpr(*item.expr, Dialect::For(Vendor::kSqlite));
}

void AppendExpr(const Expr& expr, std::string& out);

void AppendChildren(const Expr& expr, std::string& out) {
  for (const ExprPtr& child : expr.children) {
    out += ' ';
    AppendExpr(*child, out);
  }
}

void AppendExpr(const Expr& expr, std::string& out) {
  switch (expr.kind) {
    case Expr::Kind::kLiteral:
      // ToSqlLiteral keeps string case and quoting — literals that differ
      // only in case produce different rows, so they must not collide.
      out += expr.literal.ToSqlLiteral();
      return;
    case Expr::Kind::kColumn:
      out += ToLower(expr.column_ref.table);
      out += '.';
      out += ToLower(expr.column_ref.column);
      return;
    case Expr::Kind::kStar:
      out += ToLower(expr.column_ref.table);
      out += ".*";
      return;
    case Expr::Kind::kUnary:
      out += expr.unary_op == UnaryOp::kNeg ? "(neg" : "(not";
      AppendChildren(expr, out);
      out += ')';
      return;
    case Expr::Kind::kBinary:
      out += '(';
      out += BinaryOpSymbol(expr.binary_op);
      AppendChildren(expr, out);
      out += ')';
      return;
    case Expr::Kind::kFunction:
      out += "(fn ";
      out += expr.function_name;  // already upper-cased by the parser
      if (expr.distinct_arg) out += " distinct";
      AppendChildren(expr, out);
      out += ')';
      return;
    case Expr::Kind::kIn:
      out += expr.negated ? "(notin" : "(in";
      AppendChildren(expr, out);
      out += ')';
      return;
    case Expr::Kind::kBetween:
      out += expr.negated ? "(notbetween" : "(between";
      AppendChildren(expr, out);
      out += ')';
      return;
    case Expr::Kind::kLike:
      out += expr.negated ? "(notlike" : "(like";
      AppendChildren(expr, out);
      out += ')';
      return;
    case Expr::Kind::kIsNull:
      out += expr.negated ? "(isnotnull" : "(isnull";
      AppendChildren(expr, out);
      out += ')';
      return;
    case Expr::Kind::kCase:
      out += "(case";
      if (expr.case_has_operand) out += " operand";
      if (expr.case_has_else) out += " else";
      AppendChildren(expr, out);
      out += ')';
      return;
  }
}

void AppendTableRef(const TableRef& ref, std::string& out) {
  out += ToLower(ref.table);
  if (!ref.alias.empty()) {
    out += " as ";
    out += ToLower(ref.alias);
  }
}

}  // namespace

std::string CanonicalSelectText(const SelectStmt& stmt) {
  std::string out = "(select";
  if (stmt.distinct) out += " distinct";
  for (const SelectItem& item : stmt.items) {
    out += " (item |";
    out += ItemOutputName(item);  // case-sensitive: names the output column
    out += "| ";
    AppendExpr(*item.expr, out);
    out += ')';
  }
  out += " (from";
  for (const TableRef& ref : stmt.from) {
    out += ' ';
    AppendTableRef(ref, out);
  }
  out += ')';
  for (const Join& join : stmt.joins) {
    switch (join.type) {
      case JoinType::kInner: out += " (join "; break;
      case JoinType::kLeft: out += " (leftjoin "; break;
      case JoinType::kCross: out += " (crossjoin "; break;
    }
    AppendTableRef(join.table, out);
    if (join.on) {
      out += " on ";
      AppendExpr(*join.on, out);
    }
    out += ')';
  }
  if (stmt.where) {
    out += " (where ";
    AppendExpr(*stmt.where, out);
    out += ')';
  }
  if (!stmt.group_by.empty()) {
    out += " (groupby";
    for (const ExprPtr& g : stmt.group_by) {
      out += ' ';
      AppendExpr(*g, out);
    }
    out += ')';
  }
  if (stmt.having) {
    out += " (having ";
    AppendExpr(*stmt.having, out);
    out += ')';
  }
  if (!stmt.order_by.empty()) {
    out += " (orderby";
    for (const OrderItem& item : stmt.order_by) {
      out += item.ascending ? " (asc " : " (desc ";
      AppendExpr(*item.expr, out);
      out += ')';
    }
    out += ')';
  }
  if (stmt.limit) out += " (limit " + std::to_string(*stmt.limit) + ')';
  if (stmt.offset) out += " (offset " + std::to_string(*stmt.offset) + ')';
  out += ')';
  return out;
}

std::string FingerprintSelect(const SelectStmt& stmt) {
  return Md5Hex(CanonicalSelectText(stmt));
}

}  // namespace griddb::sql
