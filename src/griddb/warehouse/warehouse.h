// Data warehouse, data marts and the star schema (paper §4.2, §4.3).
//
// The warehouse is an Oracle-flavoured engine holding a denormalized star
// schema populated from the normalized sources by the ETL pipeline;
// read-only views are defined over it for analysis, and materialized into
// vendor-diverse data marts located near the client applications.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "griddb/engine/database.h"
#include "griddb/util/status.h"

namespace griddb::warehouse {

/// A dimension table plus the fact-table column that references it.
struct DimensionSpec {
  storage::TableSchema schema;
  std::string fact_key_column;  ///< FK column in the fact table.
};

/// Denormalized star: one fact table, N dimensions.
struct StarSchemaSpec {
  storage::TableSchema fact;
  std::vector<DimensionSpec> dimensions;

  /// Creates all tables in `db`. Fact FKs to dimensions are recorded.
  Status Materialize(engine::Database& db) const;
};

class DataWarehouse {
 public:
  DataWarehouse(std::string name, std::string host)
      : db_(std::move(name), sql::Vendor::kOracle), host_(std::move(host)) {}

  engine::Database& db() { return db_; }
  const engine::Database& db() const { return db_; }
  const std::string& host() const { return host_; }

  Status DefineStarSchema(const StarSchemaSpec& spec) {
    return spec.Materialize(db_);
  }

  /// Creates a read-only analysis view (Oracle dialect SQL).
  Status CreateAnalysisView(const std::string& name,
                            const std::string& select_sql);

 private:
  engine::Database db_;
  std::string host_;
};

/// A mart: a smaller vendor-diverse database holding materialized subsets
/// of the warehouse, placed on a host near its clients.
class DataMart {
 public:
  DataMart(std::string name, sql::Vendor vendor, std::string host)
      : db_(std::move(name), vendor), host_(std::move(host)) {}

  engine::Database& db() { return db_; }
  const engine::Database& db() const { return db_; }
  const std::string& host() const { return host_; }

 private:
  engine::Database db_;
  std::string host_;
};

}  // namespace griddb::warehouse
