#include "griddb/warehouse/materialize.h"

namespace griddb::warehouse {

Result<EtlStats> MaterializeView(DataWarehouse& warehouse,
                                 const std::string& view_name, DataMart& mart,
                                 EtlPipeline& pipeline) {
  if (!warehouse.db().HasView(view_name)) {
    return NotFound("warehouse has no view '" + view_name + "'");
  }
  EtlPipeline::Job job;
  job.source = &warehouse.db();
  job.source_host = warehouse.host();
  job.extract_sql = "SELECT * FROM " + view_name;
  job.target = &mart.db();
  job.target_host = mart.host();
  job.target_table = view_name;
  job.create_target = true;
  return pipeline.Run(job);
}

Result<EtlStats> RefreshView(DataWarehouse& warehouse,
                             const std::string& view_name, DataMart& mart,
                             EtlPipeline& pipeline) {
  if (mart.db().HasTable(view_name)) {
    GRIDDB_RETURN_IF_ERROR(mart.db().DropTable(view_name));
  }
  return MaterializeView(warehouse, view_name, mart, pipeline);
}

Result<storage::TableDigest> ViewContentDigest(DataWarehouse& warehouse,
                                               const std::string& view_name) {
  if (!warehouse.db().HasView(view_name)) {
    return NotFound("warehouse has no view '" + view_name + "'");
  }
  GRIDDB_ASSIGN_OR_RETURN(
      storage::ResultSet rs,
      warehouse.db().Execute("SELECT * FROM " + view_name));
  return storage::DigestRows(rs.rows);
}

}  // namespace griddb::warehouse
