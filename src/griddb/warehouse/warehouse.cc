#include "griddb/warehouse/warehouse.h"

#include "griddb/sql/parser.h"

namespace griddb::warehouse {

Status StarSchemaSpec::Materialize(engine::Database& db) const {
  for (const DimensionSpec& dim : dimensions) {
    GRIDDB_RETURN_IF_ERROR(db.CreateTable(dim.schema));
  }
  // Record fact -> dimension foreign keys so XSpec generation can export
  // the relationships.
  storage::TableSchema fact_schema = fact;
  std::vector<storage::ForeignKey> fks = fact_schema.foreign_keys();
  for (const DimensionSpec& dim : dimensions) {
    std::vector<size_t> pk = dim.schema.PrimaryKeyIndexes();
    if (pk.empty()) continue;
    fks.push_back({{dim.fact_key_column},
                   dim.schema.name(),
                   {dim.schema.columns()[pk[0]].name}});
  }
  storage::TableSchema with_fks(fact_schema.name(), fact_schema.columns(),
                                std::move(fks));
  return db.CreateTable(std::move(with_fks));
}

Status DataWarehouse::CreateAnalysisView(const std::string& name,
                                         const std::string& select_sql) {
  GRIDDB_ASSIGN_OR_RETURN(
      std::unique_ptr<sql::SelectStmt> select,
      sql::ParseSelect(select_sql, db_.dialect()));
  return db_.CreateView(name, *select);
}

}  // namespace griddb::warehouse
