// Stage 2 of the prototype (paper §5, Figure 5): views created over the
// warehouse are materialized — through the same data-streaming ETL path —
// into the data marts that applications query locally.
#pragma once

#include "griddb/warehouse/etl.h"
#include "griddb/warehouse/warehouse.h"

namespace griddb::warehouse {

/// Materializes warehouse view `view_name` into `mart` as a table of the
/// same name. The transfer goes through the pipeline's staging file.
Result<EtlStats> MaterializeView(DataWarehouse& warehouse,
                                 const std::string& view_name, DataMart& mart,
                                 EtlPipeline& pipeline);

/// Re-materializes (refresh): truncates the mart copy first by dropping
/// and re-creating it.
Result<EtlStats> RefreshView(DataWarehouse& warehouse,
                             const std::string& view_name, DataMart& mart,
                             EtlPipeline& pipeline);

/// Order-insensitive content digest of a warehouse view's current rows —
/// the anti-entropy reference a mart's materialized copy is verified
/// against (core/integrity_monitor).
Result<storage::TableDigest> ViewContentDigest(DataWarehouse& warehouse,
                                               const std::string& view_name);

}  // namespace griddb::warehouse
