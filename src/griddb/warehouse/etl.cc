#include "griddb/warehouse/etl.h"

#include <algorithm>
#include <filesystem>
#include <set>

#include "griddb/obs/metrics.h"
#include "griddb/util/fs.h"
#include "griddb/util/md5.h"
#include "griddb/util/strings.h"

namespace griddb::warehouse {

using storage::ResultSet;
using storage::Row;
using storage::StagedData;
using storage::TableSchema;

const EtlCosts& EtlCosts::Default() {
  static const EtlCosts costs;
  return costs;
}

namespace {

double DiskMs(size_t bytes, double mbps) {
  // mbps is megabits/s to match the network units.
  double bytes_per_ms = mbps * 1e6 / 8.0 / 1000.0;
  return static_cast<double>(bytes) / bytes_per_ms;
}

/// Schema for staged rows: declared column types from the source schema
/// when the extract is a plain SELECT over one table, else inferred from
/// the data.
TableSchema InferSchema(const std::string& name, const ResultSet& rs) {
  std::vector<storage::ColumnDef> columns;
  columns.reserve(rs.columns.size());
  for (size_t c = 0; c < rs.columns.size(); ++c) {
    storage::ColumnDef def;
    def.name = rs.columns[c];
    def.type = storage::DataType::kString;
    for (const Row& row : rs.rows) {
      if (c < row.size() && !row[c].is_null()) {
        def.type = row[c].type();
        break;
      }
    }
    columns.push_back(std::move(def));
  }
  return TableSchema(name, std::move(columns));
}

/// Folds one finished run's stats into the process-wide registry (chunk
/// counters only move for resumable runs; plain runs report rows/timings).
void RecordEtlMetrics(const EtlStats& stats) {
  static obs::Counter* runs =
      obs::MetricsRegistry::Default().GetCounter("griddb.warehouse.etl.runs");
  static obs::Counter* rows =
      obs::MetricsRegistry::Default().GetCounter("griddb.warehouse.etl.rows");
  static obs::Counter* chunks_staged = obs::MetricsRegistry::Default().GetCounter(
      "griddb.warehouse.etl.chunks_staged");
  static obs::Counter* chunks_loaded = obs::MetricsRegistry::Default().GetCounter(
      "griddb.warehouse.etl.chunks_loaded");
  static obs::Counter* chunks_recovered =
      obs::MetricsRegistry::Default().GetCounter(
          "griddb.warehouse.etl.chunks_recovered");
  static obs::Counter* chunks_deduped =
      obs::MetricsRegistry::Default().GetCounter(
          "griddb.warehouse.etl.chunks_deduped");
  static obs::Histogram* extract_ms = obs::MetricsRegistry::Default().GetHistogram(
      "griddb.warehouse.etl.extract_ms");
  static obs::Histogram* load_ms = obs::MetricsRegistry::Default().GetHistogram(
      "griddb.warehouse.etl.load_ms");
  runs->Add(1);
  rows->Add(stats.rows);
  chunks_staged->Add(stats.chunks_committed);
  chunks_loaded->Add(stats.chunks_loaded);
  chunks_recovered->Add(stats.chunks_recovered);
  chunks_deduped->Add(stats.chunks_deduped);
  extract_ms->Observe(stats.extract_ms);
  load_ms->Observe(stats.load_ms);
}

/// Committed manifest entries evicted because their stage frame is
/// missing, torn away or digest-corrupt (the quarantine/re-stage path).
obs::Counter& QuarantinedCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "griddb.warehouse.etl.chunks_quarantined");
  return *c;
}

/// Unreadable manifests abandoned for a fresh run (the target-side chunk
/// registry keeps the fresh run exactly-once).
obs::Counter& ManifestResetsCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "griddb.warehouse.etl.manifest_resets");
  return *c;
}

/// Removes a file on destruction: staging files must not outlive their
/// run, even when it fails between extraction and loading.
class ScopedFileRemover {
 public:
  explicit ScopedFileRemover(std::string path) : path_(std::move(path)) {}
  ~ScopedFileRemover() {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }
  ScopedFileRemover(const ScopedFileRemover&) = delete;
  ScopedFileRemover& operator=(const ScopedFileRemover&) = delete;

 private:
  std::string path_;
};

}  // namespace

EtlPipeline::EtlPipeline(net::Network* network, net::ServiceCosts costs,
                         EtlCosts etl_costs, std::string etl_host,
                         std::string staging_dir)
    : network_(network),
      costs_(costs),
      etl_costs_(etl_costs),
      etl_host_(std::move(etl_host)),
      staging_dir_(std::move(staging_dir)) {
  std::error_code ec;
  std::filesystem::create_directories(staging_dir_, ec);
}

Result<StagedData> EtlPipeline::ExtractRows(const Job& job, EtlStats& stats) {
  if (!job.source || !job.target) {
    return InvalidArgument("ETL job requires source and target databases");
  }
  GRIDDB_ASSIGN_OR_RETURN(ResultSet rs, job.source->Execute(job.extract_sql));

  // Source-side query + per-row fetch.
  stats.extract_ms += costs_.db_execute_base_ms;
  stats.extract_ms +=
      costs_.db_per_row_ms * static_cast<double>(rs.num_rows());

  // Transform.
  StagedData staged;
  std::string schema_name = job.target_schema_name.empty()
                                ? job.target_table
                                : job.target_schema_name;
  staged.rows.reserve(rs.num_rows());
  if (job.transform) {
    size_t row_count = 0;
    for (const Row& row : rs.rows) {
      if (++row_count % 512 == 0) {
        GRIDDB_RETURN_IF_ERROR(job.cancel.Check());
      }
      GRIDDB_ASSIGN_OR_RETURN(Row transformed, job.transform(row));
      staged.rows.push_back(std::move(transformed));
    }
    // The transform may change arity; synthesize names for added columns.
    ResultSet transformed_view;
    size_t out_width = staged.rows.empty() ? rs.columns.size()
                                           : staged.rows.front().size();
    for (size_t c = 0; c < out_width; ++c) {
      transformed_view.columns.push_back(
          c < rs.columns.size() ? rs.columns[c] : "col_" + std::to_string(c));
    }
    transformed_view.rows = staged.rows;
    staged.schema = InferSchema(schema_name, transformed_view);
    // Prefer the target table's declared schema when available.
    auto target_schema = job.target->GetSchema(job.target_table);
    if (target_schema.ok() &&
        target_schema->num_columns() == staged.schema.num_columns()) {
      staged.schema = TableSchema(schema_name, target_schema->columns());
    }
  } else {
    staged.rows = std::move(rs.rows);
    auto target_schema = job.target->GetSchema(job.target_table);
    if (target_schema.ok() &&
        target_schema->num_columns() == rs.columns.size()) {
      staged.schema = TableSchema(schema_name, target_schema->columns());
    } else {
      ResultSet view;
      view.columns = rs.columns;
      view.rows = staged.rows;
      staged.schema = InferSchema(schema_name, view);
    }
  }
  stats.rows = staged.rows.size();
  return staged;
}

Result<StagedData> EtlPipeline::Extract(const Job& job, EtlStats& stats) {
  GRIDDB_ASSIGN_OR_RETURN(StagedData staged, ExtractRows(job, stats));

  // Rows travel source -> ETL host, then the stage file is written.
  stats.staged_bytes = staged.EncodedSize();
  GRIDDB_ASSIGN_OR_RETURN(
      double transfer,
      network_->TransferMs(job.source_host, etl_host_, stats.staged_bytes));
  stats.extract_ms += transfer;
  stats.extract_ms += DiskMs(stats.staged_bytes, etl_costs_.disk_write_mbps);
  return staged;
}

Status EtlPipeline::Load(const Job& job, const StagedData& staged,
                         EtlStats& stats) {
  // Read the file back, ship to the target host, insert, commit.
  stats.load_ms += DiskMs(stats.staged_bytes, etl_costs_.disk_read_mbps);
  GRIDDB_ASSIGN_OR_RETURN(
      double transfer,
      network_->TransferMs(etl_host_, job.target_host, stats.staged_bytes));
  stats.load_ms += transfer;

  if (!job.target->HasTable(job.target_table)) {
    if (!job.create_target) {
      return NotFound("target table '" + job.target_table +
                      "' does not exist (set create_target to create it)");
    }
    TableSchema create_schema(job.target_table, staged.schema.columns(),
                              staged.schema.foreign_keys());
    GRIDDB_RETURN_IF_ERROR(job.target->CreateTable(std::move(create_schema)));
  }
  GRIDDB_RETURN_IF_ERROR(job.target->InsertRows(
      job.target_table, std::vector<Row>(staged.rows)));
  stats.load_ms +=
      etl_costs_.insert_per_row_ms * static_cast<double>(staged.rows.size());
  stats.load_ms += etl_costs_.commit_ms;
  return Status::Ok();
}

Status EtlPipeline::ChargeWire(const std::string& from, const std::string& to,
                               size_t bytes, double* ms) {
  GRIDDB_ASSIGN_OR_RETURN(double transfer,
                          network_->WireTransferMs(from, to, bytes));
  *ms += transfer;
  network_->AdvanceClockMs(transfer);
  return Status::Ok();
}

void EtlPipeline::ChargeDisk(size_t bytes, double mbps, double* ms) {
  double disk = DiskMs(bytes, mbps);
  *ms += disk;
  network_->AdvanceClockMs(disk);
}

Result<EtlStats> EtlPipeline::Run(const Job& job) {
  EtlStats stats;
  GRIDDB_ASSIGN_OR_RETURN(StagedData staged, Extract(job, stats));

  // The staging file genuinely hits the filesystem (round-trip checked),
  // reproducing the prototype's two-hop behaviour. The guard removes it
  // on every exit path — a failed read-back or load must not leak it.
  std::string path = staging_dir_ + "/stage_" +
                     std::to_string(next_stage_id_++) + ".griddb";
  ScopedFileRemover cleanup(path);
  GRIDDB_RETURN_IF_ERROR(
      storage::WriteStageFile(path, staged.schema, staged.rows));
  GRIDDB_ASSIGN_OR_RETURN(StagedData reloaded, storage::ReadStageFile(path));
  GRIDDB_RETURN_IF_ERROR(Load(job, reloaded, stats));
  RecordEtlMetrics(stats);
  return stats;
}

Result<EtlStats> EtlPipeline::RunDirect(const Job& job) {
  EtlStats stats;
  GRIDDB_ASSIGN_OR_RETURN(StagedData staged, Extract(job, stats));
  // No staging file: remove the disk-write charge Extract added and skip
  // the read-back entirely.
  stats.extract_ms -= DiskMs(stats.staged_bytes, etl_costs_.disk_write_mbps);
  GRIDDB_RETURN_IF_ERROR(Load(job, staged, stats));
  stats.load_ms -= DiskMs(stats.staged_bytes, etl_costs_.disk_read_mbps);
  RecordEtlMetrics(stats);
  return stats;
}

Result<EtlStats> EtlPipeline::RunResumable(const Job& job,
                                           const ResumeOptions& opts) {
  if (opts.run_id.empty()) {
    return InvalidArgument("resumable ETL run requires a run_id");
  }
  if (opts.chunk_rows == 0) {
    return InvalidArgument("chunk_rows must be positive");
  }

  EtlStats stats;
  const std::string stage_path = staging_dir_ + "/" + opts.run_id + ".stage";
  const std::string manifest_path =
      staging_dir_ + "/" + opts.run_id + ".manifest";

  storage::StageManifest manifest;
  auto prior = storage::ReadManifestFile(manifest_path);
  if (prior.ok()) {
    manifest = std::move(*prior);
    stats.resumed = true;
    if (!util::Fs().FileSize(stage_path).ok()) {
      // The stage file vanished out from under the manifest; whatever
      // was committed but not yet loaded must be re-staged.
      manifest.committed.clear();
    }
  } else if (prior.status().code() != StatusCode::kNotFound) {
    // The manifest exists but does not decode — e.g. a crash dropped the
    // un-synced bytes of its atomic replace. Fall back to a fresh run:
    // safe, because re-staged frames supersede whatever the stage file
    // holds (last frame per id wins) and the target-side chunk registry
    // — not the manifest — is the authority that keeps loads
    // exactly-once.
    ManifestResetsCounter().Add(1);
    stats.resumed = true;
    manifest = storage::StageManifest{};
  }

  // Reconcile the resumed manifest against what the stage file actually
  // holds before trusting it: a crash (or a lying fsync whose bytes a
  // crash dropped) can leave a committed entry whose frame is torn away,
  // and bit rot can corrupt a frame under an intact entry. Evicting such
  // entries here lets THIS run re-stage them; trusting them would fail
  // the load hop forever.
  if (!manifest.committed.empty()) {
    std::vector<size_t> corrupt;
    storage::StageDamage damage;
    auto on_disk =
        storage::ReadChunkedStageFileTolerant(stage_path, &corrupt, &damage);
    if (!on_disk.ok()) {
      // Unreadable beyond tear-repair (ReadChunkedStageFileTolerant with
      // a damage sink survives any tail tear, so this is header-level
      // damage): drop the file — appends land at the physical end, so
      // frames written after unreadable bytes would never be visible.
      (void)util::Fs().Unlink(stage_path);
      QuarantinedCounter().Add(manifest.committed.size());
      manifest.committed.clear();
    } else {
      if (damage.torn) {
        GRIDDB_RETURN_IF_ERROR(
            util::Fs().Truncate(stage_path, damage.intact_bytes));
        GRIDDB_RETURN_IF_ERROR(util::Fs().Fsync(stage_path));
      }
      auto frame_md5 = [&](size_t id) -> const std::string* {
        for (const storage::StageChunk& chunk : on_disk->chunks) {
          if (chunk.id == id) return &chunk.md5;
        }
        return nullptr;
      };
      auto& committed = manifest.committed;
      size_t before = committed.size();
      committed.erase(
          std::remove_if(committed.begin(), committed.end(),
                         [&](const storage::StageChunk& chunk) {
                           const std::string* md5 = frame_md5(chunk.id);
                           return md5 == nullptr || *md5 != chunk.md5;
                         }),
          committed.end());
      QuarantinedCounter().Add(before - committed.size());
    }
    GRIDDB_RETURN_IF_ERROR(storage::WriteManifestFile(manifest_path, manifest));
  }
  stats.chunks_recovered = manifest.committed.size();

  // Re-run the extraction query. The engines are deterministic, so a
  // resume sees the same rows in the same order — and hence the same
  // chunk boundaries — as the interrupted run.
  GRIDDB_ASSIGN_OR_RETURN(StagedData staged, ExtractRows(job, stats));
  stats.staged_bytes = staged.EncodedSize();
  const size_t total =
      (staged.rows.size() + opts.chunk_rows - 1) / opts.chunk_rows;
  if (manifest.total_chunks != 0 && manifest.total_chunks != total) {
    return FailedPrecondition(
        "manifest for run '" + opts.run_id + "' expects " +
        std::to_string(manifest.total_chunks) +
        " chunks but the source now yields " + std::to_string(total) +
        "; the source changed between runs");
  }
  manifest.total_chunks = total;
  stats.chunks_total = total;

  // ---- extraction hop: stage every chunk not already durable ----
  for (size_t c = 0; c < total; ++c) {
    // Cancellation between chunks leaves the manifest at the last
    // committed chunk — exactly the crash resume point.
    GRIDDB_RETURN_IF_ERROR(job.cancel.Check());
    if (manifest.FindCommitted(c) != nullptr) continue;
    size_t begin = c * opts.chunk_rows;
    size_t end = std::min(begin + opts.chunk_rows, staged.rows.size());
    std::vector<Row> rows(staged.rows.begin() + begin,
                          staged.rows.begin() + end);
    std::string block = storage::EncodeRowBlock(rows);
    storage::StageChunk chunk;
    chunk.id = c;
    chunk.rows = rows.size();
    chunk.md5 = Md5Hex(block);
    // Wire charge first: a down-window failing the transfer returns here
    // with the manifest at the last committed chunk (the resume point).
    GRIDDB_RETURN_IF_ERROR(ChargeWire(job.source_host, etl_host_,
                                      block.size(), &stats.extract_ms));
    ChargeDisk(block.size(), etl_costs_.disk_write_mbps, &stats.extract_ms);
    GRIDDB_RETURN_IF_ERROR(
        storage::AppendStageChunk(stage_path, staged.schema, chunk, block));
    // WAL ordering: the frame must be on disk before the manifest entry
    // that vouches for it — a manifest that says "committed" about bytes
    // still in the page cache would survive a crash the bytes don't.
    GRIDDB_RETURN_IF_ERROR(util::Fs().Fsync(stage_path));
    manifest.committed.push_back(chunk);
    GRIDDB_RETURN_IF_ERROR(
        storage::WriteManifestFile(manifest_path, manifest));
    ++stats.chunks_committed;
  }

  // ---- load hop ----
  // Read the stage back with per-frame digest verification. Corrupt
  // frames are evicted from the manifest so the next run re-stages them
  // (an appended frame supersedes the damaged one), then this run fails.
  storage::ChunkedStage on_disk;
  if (total > 0) {
    std::vector<size_t> corrupt;
    GRIDDB_ASSIGN_OR_RETURN(
        on_disk, storage::ReadChunkedStageFileTolerant(stage_path, &corrupt));
    if (!corrupt.empty()) {
      auto& committed = manifest.committed;
      committed.erase(
          std::remove_if(committed.begin(), committed.end(),
                         [&](const storage::StageChunk& chunk) {
                           return std::find(corrupt.begin(), corrupt.end(),
                                            chunk.id) != corrupt.end();
                         }),
          committed.end());
      GRIDDB_RETURN_IF_ERROR(
          storage::WriteManifestFile(manifest_path, manifest));
      QuarantinedCounter().Add(corrupt.size());
      return Corruption(std::to_string(corrupt.size()) +
                        " staged chunk(s) of run '" + opts.run_id +
                        "' fail digest verification; evicted from the "
                        "manifest for re-staging");
    }
  }
  auto frame_index = [&](size_t id) -> int {
    for (size_t i = 0; i < on_disk.chunks.size(); ++i) {
      if (on_disk.chunks[i].id == id) return static_cast<int>(i);
    }
    return -1;
  };

  if (!job.target->HasTable(job.target_table)) {
    if (!job.create_target) {
      return NotFound("target table '" + job.target_table +
                      "' does not exist (set create_target to create it)");
    }
    TableSchema create_schema(job.target_table, staged.schema.columns(),
                              staged.schema.foreign_keys());
    GRIDDB_RETURN_IF_ERROR(job.target->CreateTable(std::move(create_schema)));
  }
  if (!job.target->HasTable(kEtlChunkRegistry)) {
    TableSchema registry(
        kEtlChunkRegistry,
        {{"run_id", storage::DataType::kString, true, false},
         {"chunk_id", storage::DataType::kInt64, true, false}});
    GRIDDB_RETURN_IF_ERROR(job.target->CreateTable(std::move(registry)));
  }

  // Chunk ids the target itself has recorded as applied for this run: the
  // dedupe authority that survives even a lost manifest.
  std::set<size_t> applied;
  {
    GRIDDB_ASSIGN_OR_RETURN(
        ResultSet rs,
        job.target->Execute(std::string("SELECT run_id, chunk_id FROM ") +
                            kEtlChunkRegistry));
    for (const Row& row : rs.rows) {
      if (row.size() != 2 || row[0].is_null() || row[1].is_null()) continue;
      if (row[0].type() != storage::DataType::kString ||
          row[0].AsStringStrict() != opts.run_id) {
        continue;
      }
      GRIDDB_ASSIGN_OR_RETURN(int64_t id, row[1].AsInt64());
      if (id >= 0) applied.insert(static_cast<size_t>(id));
    }
  }

  for (size_t c = 0; c < total; ++c) {
    // As with staging: a cancelled load resumes from the manifest.
    GRIDDB_RETURN_IF_ERROR(job.cancel.Check());
    if (manifest.IsLoaded(c)) continue;
    if (applied.count(c) != 0) {
      // The target already has this chunk (e.g. the manifest update after
      // its insert was lost): record it, do not insert again.
      ++stats.chunks_deduped;
      manifest.loaded.push_back(c);
      GRIDDB_RETURN_IF_ERROR(
          storage::WriteManifestFile(manifest_path, manifest));
      continue;
    }
    int fi = frame_index(c);
    if (fi < 0) {
      return FailedPrecondition("chunk " + std::to_string(c) + " of run '" +
                                opts.run_id +
                                "' is missing from the stage file");
    }
    const std::vector<Row>& rows = on_disk.rows[static_cast<size_t>(fi)];
    size_t bytes = storage::EncodeRowBlock(rows).size();
    ChargeDisk(bytes, etl_costs_.disk_read_mbps, &stats.load_ms);
    // As above: on failure the manifest's loaded set is the resume point.
    GRIDDB_RETURN_IF_ERROR(
        ChargeWire(etl_host_, job.target_host, bytes, &stats.load_ms));
    GRIDDB_RETURN_IF_ERROR(
        job.target->InsertRows(job.target_table, std::vector<Row>(rows)));
    GRIDDB_RETURN_IF_ERROR(job.target->InsertRows(
        kEtlChunkRegistry,
        {{storage::Value(opts.run_id),
          storage::Value(static_cast<int64_t>(c))}}));
    stats.load_ms +=
        etl_costs_.insert_per_row_ms * static_cast<double>(rows.size());
    manifest.loaded.push_back(c);
    GRIDDB_RETURN_IF_ERROR(
        storage::WriteManifestFile(manifest_path, manifest));
    ++stats.chunks_loaded;
  }
  stats.load_ms += etl_costs_.commit_ms;
  network_->AdvanceClockMs(etl_costs_.commit_ms);

  // Fully applied: the resume artifacts are no longer needed. Removal
  // goes through the file-system seam so the chaos harness both injects
  // unlink failures here and can account for every file it sees left
  // behind (a failed removal is retried by the next run's fresh start).
  (void)util::Fs().Unlink(stage_path);
  (void)util::Fs().Unlink(manifest_path);
  RecordEtlMetrics(stats);
  return stats;
}

}  // namespace griddb::warehouse
