#include "griddb/warehouse/etl.h"

#include <filesystem>

#include "griddb/util/strings.h"

namespace griddb::warehouse {

using storage::ResultSet;
using storage::Row;
using storage::StagedData;
using storage::TableSchema;

const EtlCosts& EtlCosts::Default() {
  static const EtlCosts costs;
  return costs;
}

namespace {

double DiskMs(size_t bytes, double mbps) {
  // mbps is megabits/s to match the network units.
  double bytes_per_ms = mbps * 1e6 / 8.0 / 1000.0;
  return static_cast<double>(bytes) / bytes_per_ms;
}

/// Schema for staged rows: declared column types from the source schema
/// when the extract is a plain SELECT over one table, else inferred from
/// the data.
TableSchema InferSchema(const std::string& name, const ResultSet& rs) {
  std::vector<storage::ColumnDef> columns;
  columns.reserve(rs.columns.size());
  for (size_t c = 0; c < rs.columns.size(); ++c) {
    storage::ColumnDef def;
    def.name = rs.columns[c];
    def.type = storage::DataType::kString;
    for (const Row& row : rs.rows) {
      if (c < row.size() && !row[c].is_null()) {
        def.type = row[c].type();
        break;
      }
    }
    columns.push_back(std::move(def));
  }
  return TableSchema(name, std::move(columns));
}

}  // namespace

EtlPipeline::EtlPipeline(const net::Network* network, net::ServiceCosts costs,
                         EtlCosts etl_costs, std::string etl_host,
                         std::string staging_dir)
    : network_(network),
      costs_(costs),
      etl_costs_(etl_costs),
      etl_host_(std::move(etl_host)),
      staging_dir_(std::move(staging_dir)) {
  std::error_code ec;
  std::filesystem::create_directories(staging_dir_, ec);
}

Result<StagedData> EtlPipeline::Extract(const Job& job, EtlStats& stats) {
  if (!job.source || !job.target) {
    return InvalidArgument("ETL job requires source and target databases");
  }
  GRIDDB_ASSIGN_OR_RETURN(ResultSet rs, job.source->Execute(job.extract_sql));

  // Source-side query + per-row fetch.
  stats.extract_ms += costs_.db_execute_base_ms;
  stats.extract_ms +=
      costs_.db_per_row_ms * static_cast<double>(rs.num_rows());

  // Transform.
  StagedData staged;
  std::string schema_name = job.target_schema_name.empty()
                                ? job.target_table
                                : job.target_schema_name;
  staged.rows.reserve(rs.num_rows());
  if (job.transform) {
    for (const Row& row : rs.rows) {
      GRIDDB_ASSIGN_OR_RETURN(Row transformed, job.transform(row));
      staged.rows.push_back(std::move(transformed));
    }
    // The transform may change arity; synthesize names for added columns.
    ResultSet transformed_view;
    size_t out_width = staged.rows.empty() ? rs.columns.size()
                                           : staged.rows.front().size();
    for (size_t c = 0; c < out_width; ++c) {
      transformed_view.columns.push_back(
          c < rs.columns.size() ? rs.columns[c] : "col_" + std::to_string(c));
    }
    transformed_view.rows = staged.rows;
    staged.schema = InferSchema(schema_name, transformed_view);
    // Prefer the target table's declared schema when available.
    auto target_schema = job.target->GetSchema(job.target_table);
    if (target_schema.ok() &&
        target_schema->num_columns() == staged.schema.num_columns()) {
      staged.schema = TableSchema(schema_name, target_schema->columns());
    }
  } else {
    staged.rows = std::move(rs.rows);
    auto target_schema = job.target->GetSchema(job.target_table);
    if (target_schema.ok() &&
        target_schema->num_columns() == rs.columns.size()) {
      staged.schema = TableSchema(schema_name, target_schema->columns());
    } else {
      ResultSet view;
      view.columns = rs.columns;
      view.rows = staged.rows;
      staged.schema = InferSchema(schema_name, view);
    }
  }

  // Rows travel source -> ETL host, then the stage file is written.
  stats.rows = staged.rows.size();
  stats.staged_bytes = staged.EncodedSize();
  GRIDDB_ASSIGN_OR_RETURN(
      double transfer,
      network_->TransferMs(job.source_host, etl_host_, stats.staged_bytes));
  stats.extract_ms += transfer;
  stats.extract_ms += DiskMs(stats.staged_bytes, etl_costs_.disk_write_mbps);
  return staged;
}

Status EtlPipeline::Load(const Job& job, const StagedData& staged,
                         EtlStats& stats) {
  // Read the file back, ship to the target host, insert, commit.
  stats.load_ms += DiskMs(stats.staged_bytes, etl_costs_.disk_read_mbps);
  GRIDDB_ASSIGN_OR_RETURN(
      double transfer,
      network_->TransferMs(etl_host_, job.target_host, stats.staged_bytes));
  stats.load_ms += transfer;

  if (!job.target->HasTable(job.target_table)) {
    if (!job.create_target) {
      return NotFound("target table '" + job.target_table +
                      "' does not exist (set create_target to create it)");
    }
    TableSchema create_schema(job.target_table, staged.schema.columns(),
                              staged.schema.foreign_keys());
    GRIDDB_RETURN_IF_ERROR(job.target->CreateTable(std::move(create_schema)));
  }
  GRIDDB_RETURN_IF_ERROR(job.target->InsertRows(
      job.target_table, std::vector<Row>(staged.rows)));
  stats.load_ms +=
      etl_costs_.insert_per_row_ms * static_cast<double>(staged.rows.size());
  stats.load_ms += etl_costs_.commit_ms;
  return Status::Ok();
}

Result<EtlStats> EtlPipeline::Run(const Job& job) {
  EtlStats stats;
  GRIDDB_ASSIGN_OR_RETURN(StagedData staged, Extract(job, stats));

  // The staging file genuinely hits the filesystem (round-trip checked),
  // reproducing the prototype's two-hop behaviour.
  std::string path = staging_dir_ + "/stage_" +
                     std::to_string(next_stage_id_++) + ".griddb";
  GRIDDB_RETURN_IF_ERROR(
      storage::WriteStageFile(path, staged.schema, staged.rows));
  GRIDDB_ASSIGN_OR_RETURN(StagedData reloaded, storage::ReadStageFile(path));
  std::error_code ec;
  std::filesystem::remove(path, ec);

  GRIDDB_RETURN_IF_ERROR(Load(job, reloaded, stats));
  return stats;
}

Result<EtlStats> EtlPipeline::RunDirect(const Job& job) {
  EtlStats stats;
  GRIDDB_ASSIGN_OR_RETURN(StagedData staged, Extract(job, stats));
  // No staging file: remove the disk-write charge Extract added and skip
  // the read-back entirely.
  stats.extract_ms -= DiskMs(stats.staged_bytes, etl_costs_.disk_write_mbps);
  GRIDDB_RETURN_IF_ERROR(Load(job, staged, stats));
  stats.load_ms -= DiskMs(stats.staged_bytes, etl_costs_.disk_read_mbps);
  return stats;
}

}  // namespace griddb::warehouse
