// ETL pipeline with temporary-file staging (paper §4.2, §5.1).
//
// The prototype streams data in two hops: extraction writes the
// transformed rows into a temporary staging file, loading reads the file
// into the target database. Figure 4 plots both hops for the
// source->warehouse stage; Figure 5 for warehouse->marts. The staging
// file is a real file on disk here (format: storage::stage_file), and the
// two hop times are modelled separately so the two-curve shape of the
// paper's figures reproduces: loading carries per-row insert + commit
// overhead on top of the same byte volume, so its curve sits above
// extraction's.
#pragma once

#include <functional>
#include <string>

#include "griddb/engine/database.h"
#include "griddb/net/network.h"
#include "griddb/storage/stage_file.h"
#include "griddb/util/cancellation.h"
#include "griddb/util/status.h"

namespace griddb::warehouse {

/// Disk and insert-path constants of the ETL cost model.
struct EtlCosts {
  double disk_write_mbps = 320.0;  ///< Staging file write (MB/s * 8).
  double disk_read_mbps = 480.0;   ///< Staging file read.
  double insert_per_row_ms = 0.025;  ///< Target-side insert cost.
  double commit_ms = 30.0;         ///< Transaction commit at load end.

  static const EtlCosts& Default();
};

/// Per-run measurements; `extract_ms` and `load_ms` are the two curves of
/// figures 4/5 (simulated), `real_ms` is wall-clock of the in-process work.
struct EtlStats {
  size_t rows = 0;
  size_t staged_bytes = 0;
  double extract_ms = 0;  ///< Query source + transform + write temp file.
  double load_ms = 0;     ///< Read temp file + ship + insert into target.
  double total_ms() const { return extract_ms + load_ms; }

  // Resumable-run progress (RunResumable only; zero for plain runs).
  bool resumed = false;        ///< A prior run's manifest was found.
  size_t chunks_total = 0;
  size_t chunks_committed = 0; ///< Chunks newly staged by this run.
  size_t chunks_recovered = 0; ///< Chunks found already staged on entry.
  size_t chunks_loaded = 0;    ///< Chunks newly inserted by this run.
  size_t chunks_deduped = 0;   ///< Chunks skipped because the target's
                               ///< chunk registry already recorded them.
};

/// Optional per-row transform applied during extraction (normalization ->
/// star-schema denormalization). Returning an error aborts the run.
using RowTransform =
    std::function<Result<storage::Row>(const storage::Row&)>;

/// Name of the per-target bookkeeping table RunResumable uses for
/// idempotence: one (run_id, chunk_id) row per applied chunk, written in
/// the same engine operation window as the chunk's rows.
inline constexpr char kEtlChunkRegistry[] = "etl_chunk_registry";

class EtlPipeline {
 public:
  /// `etl_host` is where the pipeline (and its staging files) run.
  /// The network is non-const because the resumable path advances the
  /// virtual clock as transfer/disk cost accrues (so FaultPlan
  /// down-windows can open and close mid-run).
  EtlPipeline(net::Network* network, net::ServiceCosts costs,
              EtlCosts etl_costs, std::string etl_host,
              std::string staging_dir);

  struct Job {
    engine::Database* source = nullptr;
    std::string source_host;
    std::string extract_sql;        ///< In the source's dialect.
    engine::Database* target = nullptr;
    std::string target_host;
    std::string target_table;       ///< Must exist unless create_target.
    bool create_target = false;     ///< CREATE the target table from the
                                    ///< staged schema if absent.
    RowTransform transform;         ///< Optional.
    std::string target_schema_name; ///< Table name recorded in the stage
                                    ///< file; defaults to target_table.
    /// Cooperative cancellation: checked per transform row-batch and per
    /// staged/loaded chunk, so a long ETL run can be stopped (deadline or
    /// operator abort) without waiting for the full scan. The resumable
    /// path keeps its stage file + manifest on cancellation, so a
    /// cancelled run resumes like a crashed one. Inert by default.
    CancelToken cancel;
  };

  /// Two-hop run through a staging file (the prototype's behaviour).
  Result<EtlStats> Run(const Job& job);

  /// Direct streaming source->target, no staging file (the "cleaner way"
  /// the paper says it is working on; ablation A1).
  Result<EtlStats> RunDirect(const Job& job);

  /// Crash-consistent resumable run.
  struct ResumeOptions {
    std::string run_id;      ///< Stable id naming the stage/manifest
                             ///< files; a rerun with the same id resumes.
    size_t chunk_rows = 512; ///< Rows per staged chunk.
  };

  /// Chunked, checkpointed two-hop run. Rows are staged in framed chunks
  /// (per-chunk MD5, sidecar manifest journal updated via temp+rename
  /// after every chunk) and loaded chunk-at-a-time with digest
  /// verification and chunk-id dedupe against the target's
  /// `etl_chunk_registry` table, so a run interrupted by a fault (the
  /// network charges go through WireTransferMs and advance the virtual
  /// clock) resumes from the last committed chunk without duplicating
  /// rows. On success the stage file and manifest are removed; on
  /// failure they are kept as the resume point.
  Result<EtlStats> RunResumable(const Job& job, const ResumeOptions& opts);

  const std::string& staging_dir() const { return staging_dir_; }

 private:
  Result<storage::StagedData> Extract(const Job& job, EtlStats& stats);
  Status Load(const Job& job, const storage::StagedData& staged,
              EtlStats& stats);
  /// The query+transform part of Extract: no transfer/disk charges (the
  /// resumable path charges per chunk instead).
  Result<storage::StagedData> ExtractRows(const Job& job, EtlStats& stats);
  /// WireTransferMs + virtual-clock advance, accumulated into `ms`.
  Status ChargeWire(const std::string& from, const std::string& to,
                    size_t bytes, double* ms);
  /// Disk throughput charge that also advances the virtual clock.
  void ChargeDisk(size_t bytes, double mbps, double* ms);

  net::Network* network_;
  net::ServiceCosts costs_;
  EtlCosts etl_costs_;
  std::string etl_host_;
  std::string staging_dir_;
  int next_stage_id_ = 1;
};

}  // namespace griddb::warehouse
