// ETL pipeline with temporary-file staging (paper §4.2, §5.1).
//
// The prototype streams data in two hops: extraction writes the
// transformed rows into a temporary staging file, loading reads the file
// into the target database. Figure 4 plots both hops for the
// source->warehouse stage; Figure 5 for warehouse->marts. The staging
// file is a real file on disk here (format: storage::stage_file), and the
// two hop times are modelled separately so the two-curve shape of the
// paper's figures reproduces: loading carries per-row insert + commit
// overhead on top of the same byte volume, so its curve sits above
// extraction's.
#pragma once

#include <functional>
#include <string>

#include "griddb/engine/database.h"
#include "griddb/net/network.h"
#include "griddb/storage/stage_file.h"
#include "griddb/util/status.h"

namespace griddb::warehouse {

/// Disk and insert-path constants of the ETL cost model.
struct EtlCosts {
  double disk_write_mbps = 320.0;  ///< Staging file write (MB/s * 8).
  double disk_read_mbps = 480.0;   ///< Staging file read.
  double insert_per_row_ms = 0.025;  ///< Target-side insert cost.
  double commit_ms = 30.0;         ///< Transaction commit at load end.

  static const EtlCosts& Default();
};

/// Per-run measurements; `extract_ms` and `load_ms` are the two curves of
/// figures 4/5 (simulated), `real_ms` is wall-clock of the in-process work.
struct EtlStats {
  size_t rows = 0;
  size_t staged_bytes = 0;
  double extract_ms = 0;  ///< Query source + transform + write temp file.
  double load_ms = 0;     ///< Read temp file + ship + insert into target.
  double total_ms() const { return extract_ms + load_ms; }
};

/// Optional per-row transform applied during extraction (normalization ->
/// star-schema denormalization). Returning an error aborts the run.
using RowTransform =
    std::function<Result<storage::Row>(const storage::Row&)>;

class EtlPipeline {
 public:
  /// `etl_host` is where the pipeline (and its staging files) run.
  EtlPipeline(const net::Network* network, net::ServiceCosts costs,
              EtlCosts etl_costs, std::string etl_host,
              std::string staging_dir);

  struct Job {
    engine::Database* source = nullptr;
    std::string source_host;
    std::string extract_sql;        ///< In the source's dialect.
    engine::Database* target = nullptr;
    std::string target_host;
    std::string target_table;       ///< Must exist unless create_target.
    bool create_target = false;     ///< CREATE the target table from the
                                    ///< staged schema if absent.
    RowTransform transform;         ///< Optional.
    std::string target_schema_name; ///< Table name recorded in the stage
                                    ///< file; defaults to target_table.
  };

  /// Two-hop run through a staging file (the prototype's behaviour).
  Result<EtlStats> Run(const Job& job);

  /// Direct streaming source->target, no staging file (the "cleaner way"
  /// the paper says it is working on; ablation A1).
  Result<EtlStats> RunDirect(const Job& job);

  const std::string& staging_dir() const { return staging_dir_; }

 private:
  Result<storage::StagedData> Extract(const Job& job, EtlStats& stats);
  Status Load(const Job& job, const storage::StagedData& staged,
              EtlStats& stats);

  const net::Network* network_;
  net::ServiceCosts costs_;
  EtlCosts etl_costs_;
  std::string etl_host_;
  std::string staging_dir_;
  int next_stage_id_ = 1;
};

}  // namespace griddb::warehouse
