#include "griddb/xml/xml.h"

#include <cctype>

#include "griddb/util/strings.h"

namespace griddb::xml {

const Node* Node::Child(std::string_view child_name) const {
  for (const auto& child : children) {
    if (child->name == child_name) return child.get();
  }
  return nullptr;
}

Node* Node::Child(std::string_view child_name) {
  return const_cast<Node*>(static_cast<const Node*>(this)->Child(child_name));
}

std::vector<const Node*> Node::Children(std::string_view child_name) const {
  std::vector<const Node*> out;
  for (const auto& child : children) {
    if (child->name == child_name) out.push_back(child.get());
  }
  return out;
}

std::string Node::Attribute(std::string_view key) const {
  auto it = attributes.find(std::string(key));
  return it == attributes.end() ? std::string() : it->second;
}

bool Node::HasAttribute(std::string_view key) const {
  return attributes.find(std::string(key)) != attributes.end();
}

std::string Node::ChildText(std::string_view child_name,
                            std::string_view fallback) const {
  const Node* child = Child(child_name);
  return child ? child->text : std::string(fallback);
}

Node& Node::AddChild(std::string child_name) {
  children.push_back(std::make_unique<Node>(std::move(child_name)));
  return *children.back();
}

Node& Node::AddTextChild(std::string child_name, std::string content) {
  Node& child = AddChild(std::move(child_name));
  child.text = std::move(content);
  return child;
}

std::unique_ptr<Node> Node::Clone() const {
  auto copy = std::make_unique<Node>(name);
  copy->attributes = attributes;
  copy->text = text;
  copy->children.reserve(children.size());
  for (const auto& child : children) copy->children.push_back(child->Clone());
  return copy;
}

std::string Escape(std::string_view raw) {
  // Most content (numbers, identifiers) has nothing to escape: one scan,
  // no per-character appends.
  size_t first = raw.find_first_of("&<>\"'");
  if (first == std::string_view::npos) return std::string(raw);
  std::string out;
  out.reserve(raw.size() + 8);
  out.append(raw, 0, first);
  for (char c : raw.substr(first)) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out += c;
    }
  }
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view input) : input_(input) {}

  Result<std::unique_ptr<Node>> ParseDocument() {
    SkipProlog();
    GRIDDB_ASSIGN_OR_RETURN(std::unique_ptr<Node> root, ParseElement());
    SkipMisc();
    if (pos_ != input_.size()) {
      return Error("trailing content after document element");
    }
    return root;
  }

 private:
  Status Error(std::string message) const {
    // Report a 1-based line number for diagnostics.
    size_t line = 1;
    for (size_t i = 0; i < pos_ && i < input_.size(); ++i) {
      if (input_[i] == '\n') ++line;
    }
    return griddb::ParseError("XML line " + std::to_string(line) + ": " +
                              std::move(message));
  }

  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  bool Match(std::string_view s) {
    if (input_.substr(pos_, s.size()) == s) {
      pos_ += s.size();
      return true;
    }
    return false;
  }

  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) ++pos_;
  }

  bool SkipComment() {
    if (!Match("<!--")) return false;
    size_t end = input_.find("-->", pos_);
    pos_ = (end == std::string_view::npos) ? input_.size() : end + 3;
    return true;
  }

  void SkipMisc() {
    while (true) {
      SkipWhitespace();
      if (!SkipComment()) return;
    }
  }

  void SkipProlog() {
    SkipWhitespace();
    if (Match("<?xml")) {
      size_t end = input_.find("?>", pos_);
      pos_ = (end == std::string_view::npos) ? input_.size() : end + 2;
    }
    SkipMisc();
    // <!DOCTYPE ...> (no internal subset support).
    if (Match("<!DOCTYPE")) {
      size_t end = input_.find('>', pos_);
      pos_ = (end == std::string_view::npos) ? input_.size() : end + 1;
    }
    SkipMisc();
  }

  static bool IsNameStart(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  }
  static bool IsNameChar(char c) {
    return IsNameStart(c) || std::isdigit(static_cast<unsigned char>(c)) ||
           c == '-' || c == '.';
  }

  Result<std::string> ParseName() {
    if (AtEnd() || !IsNameStart(Peek())) return Error("expected name");
    size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) ++pos_;
    return std::string(input_.substr(start, pos_ - start));
  }

  Result<std::string> DecodeEntities(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    for (size_t i = 0; i < raw.size();) {
      if (raw[i] != '&') {
        out += raw[i++];
        continue;
      }
      size_t semi = raw.find(';', i);
      if (semi == std::string_view::npos) return Error("unterminated entity");
      std::string_view entity = raw.substr(i + 1, semi - i - 1);
      if (entity == "amp") out += '&';
      else if (entity == "lt") out += '<';
      else if (entity == "gt") out += '>';
      else if (entity == "quot") out += '"';
      else if (entity == "apos") out += '\'';
      else if (!entity.empty() && entity[0] == '#') {
        int64_t code = 0;
        bool parsed =
            (entity.size() > 1 && (entity[1] == 'x' || entity[1] == 'X'))
                ? [&] {
                    code = std::strtoll(std::string(entity.substr(2)).c_str(),
                                        nullptr, 16);
                    return true;
                  }()
                : ParseInt64(entity.substr(1), &code);
        if (!parsed || code <= 0 || code > 0x10FFFF) {
          return Error("bad character reference &" + std::string(entity) + ";");
        }
        // Encode as UTF-8.
        uint32_t cp = static_cast<uint32_t>(code);
        if (cp < 0x80) {
          out += static_cast<char>(cp);
        } else if (cp < 0x800) {
          out += static_cast<char>(0xC0 | (cp >> 6));
          out += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
          out += static_cast<char>(0xE0 | (cp >> 12));
          out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
          out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
          out += static_cast<char>(0xF0 | (cp >> 18));
          out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
          out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
          out += static_cast<char>(0x80 | (cp & 0x3F));
        }
      } else {
        return Error("unknown entity &" + std::string(entity) + ";");
      }
      i = semi + 1;
    }
    return out;
  }

  Result<std::unique_ptr<Node>> ParseElement() {
    if (!Match("<")) return Error("expected '<'");
    GRIDDB_ASSIGN_OR_RETURN(std::string name, ParseName());
    auto node = std::make_unique<Node>(name);

    // Attributes.
    while (true) {
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated start tag <" + name);
      if (Match("/>")) return node;
      if (Match(">")) break;
      GRIDDB_ASSIGN_OR_RETURN(std::string attr_name, ParseName());
      SkipWhitespace();
      if (!Match("=")) return Error("expected '=' after attribute name");
      SkipWhitespace();
      if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
        return Error("expected quoted attribute value");
      }
      char quote = Peek();
      ++pos_;
      size_t start = pos_;
      while (!AtEnd() && Peek() != quote) ++pos_;
      if (AtEnd()) return Error("unterminated attribute value");
      GRIDDB_ASSIGN_OR_RETURN(
          std::string value, DecodeEntities(input_.substr(start, pos_ - start)));
      ++pos_;  // closing quote
      node->attributes[attr_name] = std::move(value);
    }

    // Content: text, children, comments, CDATA.
    std::string text;
    while (true) {
      if (AtEnd()) return Error("unterminated element <" + name + ">");
      if (Match("<![CDATA[")) {
        size_t end = input_.find("]]>", pos_);
        if (end == std::string_view::npos) return Error("unterminated CDATA");
        text.append(input_.substr(pos_, end - pos_));
        pos_ = end + 3;
        continue;
      }
      if (SkipComment()) continue;
      if (input_.substr(pos_, 2) == "</") {
        pos_ += 2;
        GRIDDB_ASSIGN_OR_RETURN(std::string close_name, ParseName());
        if (close_name != name) {
          return Error("mismatched close tag </" + close_name +
                       "> for <" + name + ">");
        }
        SkipWhitespace();
        if (!Match(">")) return Error("expected '>' in close tag");
        node->text = std::string(Trim(text));
        return node;
      }
      if (Peek() == '<') {
        GRIDDB_ASSIGN_OR_RETURN(std::unique_ptr<Node> child, ParseElement());
        node->children.push_back(std::move(child));
        continue;
      }
      size_t start = pos_;
      while (!AtEnd() && Peek() != '<') ++pos_;
      GRIDDB_ASSIGN_OR_RETURN(
          std::string decoded, DecodeEntities(input_.substr(start, pos_ - start)));
      text += decoded;
    }
  }

  std::string_view input_;
  size_t pos_ = 0;
};

void WriteNode(const Node& node, const WriteOptions& options, int depth,
               std::string& out) {
  std::string indent =
      options.pretty ? std::string(static_cast<size_t>(depth) *
                                       static_cast<size_t>(options.indent_width),
                                   ' ')
                     : std::string();
  out += indent;
  out += '<';
  out += node.name;
  for (const auto& [key, value] : node.attributes) {
    out += ' ';
    out += key;
    out += "=\"";
    out += Escape(value);
    out += '"';
  }
  if (node.children.empty() && node.text.empty()) {
    out += "/>";
    if (options.pretty) out += '\n';
    return;
  }
  out += '>';
  if (node.children.empty()) {
    out += Escape(node.text);
  } else {
    if (options.pretty) out += '\n';
    if (!node.text.empty()) {
      out += indent;
      out += Escape(node.text);
      if (options.pretty) out += '\n';
    }
    for (const auto& child : node.children) {
      WriteNode(*child, options, depth + 1, out);
    }
    out += indent;
  }
  out += "</";
  out += node.name;
  out += '>';
  if (options.pretty) out += '\n';
}

}  // namespace

Result<std::unique_ptr<Node>> Parse(std::string_view input) {
  Parser parser(input);
  return parser.ParseDocument();
}

std::string Write(const Node& root, const WriteOptions& options) {
  std::string out;
  if (options.declaration) out += "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  WriteNode(root, options, 0, out);
  return out;
}

}  // namespace griddb::xml
