// Minimal XML document model, parser and writer.
//
// Used for two wire formats in the system: XSpec schema-specification
// files (paper §4.4) and Clarens-style XML-RPC messages (paper §4.5 / the
// web-service interface). Supports elements, attributes, character data,
// comments and the standard five entities. It does not support DTDs,
// namespaces or processing instructions beyond the XML declaration, which
// is skipped; none of those appear in either wire format.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "griddb/util/status.h"

namespace griddb::xml {

/// An XML element. Character data is normalized into `text` (concatenation
/// of all text nodes directly under this element, entity-decoded).
class Node {
 public:
  std::string name;
  std::map<std::string, std::string> attributes;
  std::string text;
  std::vector<std::unique_ptr<Node>> children;

  Node() = default;
  explicit Node(std::string element_name) : name(std::move(element_name)) {}

  /// First direct child with the given element name, or nullptr.
  const Node* Child(std::string_view child_name) const;
  Node* Child(std::string_view child_name);

  /// All direct children with the given element name.
  std::vector<const Node*> Children(std::string_view child_name) const;

  /// Attribute value or empty string when absent.
  std::string Attribute(std::string_view key) const;
  bool HasAttribute(std::string_view key) const;

  /// Text content of a direct child, or `fallback` when the child is absent.
  std::string ChildText(std::string_view child_name,
                        std::string_view fallback = "") const;

  /// Appends a new child element and returns a reference to it.
  Node& AddChild(std::string child_name);
  /// Appends a child carrying only text content.
  Node& AddTextChild(std::string child_name, std::string content);

  /// Deep copy.
  std::unique_ptr<Node> Clone() const;
};

/// Parses a complete XML document; returns its root element.
/// Leading XML declarations, comments and whitespace are skipped.
Result<std::unique_ptr<Node>> Parse(std::string_view input);

struct WriteOptions {
  bool pretty = true;        ///< Indent children, one element per line.
  int indent_width = 2;
  bool declaration = true;   ///< Emit <?xml version="1.0"?> header.
};

/// Serializes the tree rooted at `root`. Inverse of Parse for trees where
/// no element mixes text with child elements.
std::string Write(const Node& root, const WriteOptions& options = {});

/// Escapes &, <, >, ", ' for use in attribute values / character data.
std::string Escape(std::string_view raw);

}  // namespace griddb::xml
