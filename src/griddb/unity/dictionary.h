// Data dictionary of logical names (paper §4.4).
//
// "The client is provided this data dictionary of logical names, and he
// uses these logical names without any knowledge of the physical location
// of the data and their actual names." Built from the upper-level XSpec
// plus each database's lower-level XSpec; consulted by the planner to map
// logical table/column names to (database, physical name) pairs.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "griddb/unity/xspec.h"
#include "griddb/util/status.h"

namespace griddb::unity {

struct ColumnBinding {
  std::string logical;
  std::string physical;
  storage::DataType type = storage::DataType::kString;
};

/// One location of a logical table: which database hosts it and under
/// what physical name. Replicated tables have several locations.
struct TableBinding {
  std::string logical;
  std::string physical;
  std::string database_name;
  std::string connection;  ///< Connection string from the upper XSpec.
  std::string driver;
  std::vector<ColumnBinding> columns;

  const ColumnBinding* FindLogicalColumn(std::string_view logical_col) const;
  bool HasLogicalColumn(std::string_view logical_col) const {
    return FindLogicalColumn(logical_col) != nullptr;
  }
};

class DataDictionary {
 public:
  /// Registers every table of a database. Fails if the database name is
  /// already registered (use Replace for schema updates).
  Status AddDatabase(const UpperXSpecEntry& upper, const LowerXSpec& lower);
  /// Atomically swaps a database's schema (schema-change tracking, §4.9).
  Status ReplaceDatabase(const UpperXSpecEntry& upper, const LowerXSpec& lower);
  Status RemoveDatabase(const std::string& database_name);
  bool HasDatabase(const std::string& database_name) const;

  /// All locations of a logical table (replicas across marts).
  std::vector<TableBinding> Locate(std::string_view logical_table) const;
  bool HasTable(std::string_view logical_table) const;

  /// Sorted logical table names across the whole federation.
  std::vector<std::string> LogicalTables() const;
  std::vector<std::string> DatabaseNames() const;

  /// Schema epoch: a monotonically increasing counter bumped by every
  /// Add/Replace/Remove. Plans record the epoch they were made against;
  /// executing a plan under a newer epoch means the schema changed
  /// mid-flight and the plan must be rebuilt (§4.9 schema-change
  /// tracking).
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

 private:
  Status AddLocked(const UpperXSpecEntry& upper, const LowerXSpec& lower);
  void BumpEpoch() { epoch_.fetch_add(1, std::memory_order_acq_rel); }

  std::atomic<uint64_t> epoch_{1};
  mutable std::shared_mutex mu_;
  // logical table (lower-case) -> locations
  std::map<std::string, std::vector<TableBinding>> tables_;
  std::map<std::string, bool> databases_;
};

}  // namespace griddb::unity
