#include "griddb/unity/semantic.h"

#include <algorithm>
#include <set>

#include "griddb/util/strings.h"

namespace griddb::unity {

double EditSimilarity(std::string_view a_raw, std::string_view b_raw) {
  std::string a = ToLower(a_raw);
  std::string b = ToLower(b_raw);
  if (a.empty() && b.empty()) return 1.0;
  // Classic DP Levenshtein with two rows.
  std::vector<size_t> prev(b.size() + 1), current(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    current[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      size_t substitution = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      current[j] = std::min({prev[j] + 1, current[j - 1] + 1, substitution});
    }
    std::swap(prev, current);
  }
  double distance = static_cast<double>(prev[b.size()]);
  double longest = static_cast<double>(std::max(a.size(), b.size()));
  return 1.0 - distance / longest;
}

double TokenSimilarity(std::string_view a, std::string_view b) {
  auto tokens = [](std::string_view s) {
    std::set<std::string> out;
    for (const std::string& token : SplitTrimmed(ToLower(s), '_')) {
      out.insert(token);
    }
    return out;
  };
  std::set<std::string> ta = tokens(a);
  std::set<std::string> tb = tokens(b);
  if (ta.empty() && tb.empty()) return 1.0;
  size_t intersection = 0;
  for (const std::string& t : ta) intersection += tb.count(t);
  size_t union_size = ta.size() + tb.size() - intersection;
  return union_size == 0
             ? 0.0
             : static_cast<double>(intersection) /
                   static_cast<double>(union_size);
}

double NameSimilarity(std::string_view a, std::string_view b) {
  return std::max(EditSimilarity(a, b), TokenSimilarity(a, b));
}

namespace {

bool TypesCompatible(storage::DataType a, storage::DataType b) {
  if (a == b) return true;
  auto numeric = [](storage::DataType t) {
    return t == storage::DataType::kInt64 || t == storage::DataType::kDouble;
  };
  return numeric(a) && numeric(b);
}

}  // namespace

TableSimilarity SemanticMatcher::Compare(const TableBinding& a,
                                         const TableBinding& b) const {
  TableSimilarity out;
  out.database_a = a.database_name;
  out.table_a = a.logical;
  out.database_b = b.database_name;
  out.table_b = b.logical;
  out.name_score = NameSimilarity(a.logical, b.logical);

  // Greedy best-first column matching: repeatedly take the highest-scoring
  // unmatched pair above the threshold.
  struct Candidate {
    double score;
    size_t i, j;
  };
  std::vector<Candidate> candidates;
  for (size_t i = 0; i < a.columns.size(); ++i) {
    for (size_t j = 0; j < b.columns.size(); ++j) {
      double score = NameSimilarity(a.columns[i].logical,
                                    b.columns[j].logical);
      if (score >= weights_.column_match_threshold) {
        candidates.push_back({score, i, j});
      }
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& x, const Candidate& y) {
              if (x.score != y.score) return x.score > y.score;
              return std::tie(x.i, x.j) < std::tie(y.i, y.j);
            });
  std::vector<bool> used_a(a.columns.size()), used_b(b.columns.size());
  size_t compatible = 0;
  for (const Candidate& c : candidates) {
    if (used_a[c.i] || used_b[c.j]) continue;
    used_a[c.i] = used_b[c.j] = true;
    ColumnMatch match;
    match.column_a = a.columns[c.i].logical;
    match.column_b = b.columns[c.j].logical;
    match.name_score = c.score;
    match.types_compatible =
        TypesCompatible(a.columns[c.i].type, b.columns[c.j].type);
    if (match.types_compatible) ++compatible;
    out.matches.push_back(std::move(match));
  }

  size_t union_size =
      a.columns.size() + b.columns.size() - out.matches.size();
  out.column_score = union_size == 0
                         ? 0.0
                         : static_cast<double>(out.matches.size()) /
                               static_cast<double>(union_size);
  out.type_score = out.matches.empty()
                       ? 0.0
                       : static_cast<double>(compatible) /
                             static_cast<double>(out.matches.size());
  out.score = weights_.table_name * out.name_score +
              weights_.columns * out.column_score +
              weights_.types * out.type_score;
  return out;
}

std::vector<TableSimilarity> SemanticMatcher::FindIntegrationCandidates(
    const DataDictionary& dictionary, double threshold) const {
  // Gather every binding (each replica counts once per database).
  std::vector<TableBinding> bindings;
  for (const std::string& logical : dictionary.LogicalTables()) {
    for (const TableBinding& binding : dictionary.Locate(logical)) {
      bindings.push_back(binding);
    }
  }
  std::vector<TableSimilarity> out;
  for (size_t i = 0; i < bindings.size(); ++i) {
    for (size_t j = i + 1; j < bindings.size(); ++j) {
      if (bindings[i].database_name == bindings[j].database_name) continue;
      TableSimilarity similarity = Compare(bindings[i], bindings[j]);
      if (similarity.score >= threshold) out.push_back(std::move(similarity));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TableSimilarity& x, const TableSimilarity& y) {
              if (x.score != y.score) return x.score > y.score;
              return std::tie(x.table_a, x.table_b) <
                     std::tie(y.table_a, y.table_b);
            });
  return out;
}

}  // namespace griddb::unity
