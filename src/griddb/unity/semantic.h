// Semantic table integration (paper §6, future work):
//
//   "Another interesting extension to the project could be the study of
//    how tables from databases can be integrated with respect to their
//    semantic similarity."
//
// This module scores how likely two tables from *different* databases
// describe the same entity, using only the metadata the federation
// already has (the XSpec-derived data dictionary): logical name
// similarity (edit distance + token overlap), column-name-set Jaccard
// similarity with per-column matching, and type compatibility of the
// matched columns. The output is a ranked list of integration candidates
// an administrator can turn into replicated-table registrations or view
// mappings.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "griddb/unity/dictionary.h"

namespace griddb::unity {

/// Normalized Levenshtein similarity in [0, 1]; 1 = equal strings
/// (case-insensitive).
double EditSimilarity(std::string_view a, std::string_view b);

/// Jaccard similarity of the '_'-token sets of two identifiers, in [0, 1]
/// ("run_quality" vs "quality_of_run" share {run, quality}).
double TokenSimilarity(std::string_view a, std::string_view b);

/// Identifier similarity: max of edit and token similarity.
double NameSimilarity(std::string_view a, std::string_view b);

/// One matched column pair between two tables.
struct ColumnMatch {
  std::string column_a;
  std::string column_b;
  double name_score = 0;
  bool types_compatible = false;
};

/// The comparison result for a pair of tables.
struct TableSimilarity {
  std::string database_a, table_a;
  std::string database_b, table_b;
  double name_score = 0;     ///< Table-name similarity.
  double column_score = 0;   ///< Greedy-matched column-name Jaccard.
  double type_score = 0;     ///< Fraction of matched columns type-compatible.
  double score = 0;          ///< Weighted combination.
  std::vector<ColumnMatch> matches;
};

struct SemanticWeights {
  double table_name = 0.35;
  double columns = 0.45;
  double types = 0.20;
  /// A column pair below this name similarity is not matched at all.
  double column_match_threshold = 0.55;
};

class SemanticMatcher {
 public:
  explicit SemanticMatcher(SemanticWeights weights = {})
      : weights_(weights) {}

  /// Scores one pair of table bindings.
  TableSimilarity Compare(const TableBinding& a, const TableBinding& b) const;

  /// All cross-database pairs in the dictionary scoring at or above
  /// `threshold`, ranked best first. Same-database pairs are skipped: the
  /// integration question only arises across databases.
  std::vector<TableSimilarity> FindIntegrationCandidates(
      const DataDictionary& dictionary, double threshold = 0.6) const;

 private:
  SemanticWeights weights_;
};

}  // namespace griddb::unity
