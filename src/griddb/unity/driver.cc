#include "griddb/unity/driver.h"

#include <future>

#include "griddb/obs/metrics.h"
#include "griddb/sql/parser.h"
#include "griddb/sql/render.h"

namespace griddb::unity {

using storage::ResultSet;

namespace {
/// Client queries are written against the virtual (logical) schema; the
/// permissive SQLite dialect accepts every quoting style plus LIMIT.
const sql::Dialect& ClientDialect() {
  return sql::Dialect::For(sql::Vendor::kSqlite);
}

obs::Counter& PlansCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("griddb.unity.plans");
  return *c;
}
obs::Counter& SubqueriesCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("griddb.unity.subqueries");
  return *c;
}
}  // namespace

UnityDriver::UnityDriver(const ral::DatabaseCatalog* catalog,
                         const net::Network* network, net::ServiceCosts costs,
                         UnityDriverOptions options)
    : catalog_(catalog),
      network_(network),
      costs_(costs),
      options_(std::move(options)),
      pool_(options_.max_threads) {}

Status UnityDriver::AddDatabase(const UpperXSpecEntry& upper,
                                const LowerXSpec& lower) {
  return dictionary_.AddDatabase(upper, lower);
}

Status UnityDriver::ReplaceDatabase(const UpperXSpecEntry& upper,
                                    const LowerXSpec& lower) {
  return dictionary_.ReplaceDatabase(upper, lower);
}

Status UnityDriver::RemoveDatabase(const std::string& database_name) {
  return dictionary_.RemoveDatabase(database_name);
}

Result<QueryPlan> UnityDriver::Plan(const std::string& sql_text) const {
  GRIDDB_ASSIGN_OR_RETURN(std::unique_ptr<sql::SelectStmt> stmt,
                          sql::ParseSelect(sql_text, ClientDialect()));
  return Plan(*stmt);
}

Result<QueryPlan> UnityDriver::Plan(const sql::SelectStmt& stmt) const {
  PlansCounter().Add(1);
  PlannerOptions planner_options;
  planner_options.allow_cross_database_joins = options_.enhanced;
  planner_options.projection_pushdown =
      options_.enhanced && options_.projection_pushdown;
  planner_options.predicate_pushdown =
      options_.enhanced && options_.predicate_pushdown;
  planner_options.prefer_host = options_.client_host;
  planner_options.replica_filter = replica_filter_;
  return PlanSelect(stmt, dictionary_, planner_options);
}

Result<ral::JdbcConnection*> UnityDriver::ConnectionFor(
    const std::string& connection, net::Cost* cost) {
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    auto it = connections_.find(connection);
    if (it != connections_.end()) return it->second.get();
  }
  GRIDDB_ASSIGN_OR_RETURN(
      std::unique_ptr<ral::JdbcConnection> conn,
      ral::JdbcConnection::Open(catalog_, network_, costs_, connection,
                                options_.user, options_.password,
                                options_.client_host, cost));
  std::lock_guard<std::mutex> lock(conn_mu_);
  auto [it, inserted] = connections_.emplace(connection, std::move(conn));
  (void)inserted;  // a racing open wins; both connections are equivalent
  return it->second.get();
}

Status UnityDriver::WarmConnection(const std::string& connection) {
  GRIDDB_ASSIGN_OR_RETURN(ral::JdbcConnection * conn,
                          ConnectionFor(connection, nullptr));
  (void)conn;
  return Status::Ok();
}

Result<ResultSet> UnityDriver::ExecuteSubQuery(const SubQuery& sub,
                                               net::Cost* cost) {
  SubqueriesCounter().Add(1);
  GRIDDB_ASSIGN_OR_RETURN(ral::JdbcConnection * conn,
                          ConnectionFor(sub.table.connection, cost));
  const sql::Dialect& dialect = conn->database()->dialect();
  return conn->ExecuteQuery(sub.RenderSql(dialect), cost);
}

Result<ResultSet> UnityDriver::ExecuteSubQueryRendered(
    const SubQuery& sub, const std::string& rendered_sql, net::Cost* cost) {
  SubqueriesCounter().Add(1);
  GRIDDB_ASSIGN_OR_RETURN(ral::JdbcConnection * conn,
                          ConnectionFor(sub.table.connection, cost));
  return conn->ExecuteQuery(rendered_sql, cost);
}

Result<ResultSet> UnityDriver::ExecuteDirect(const QueryPlan& plan,
                                             net::Cost* cost) {
  if (!plan.single_database || !plan.direct_stmt) {
    return Internal("ExecuteDirect requires a single-database plan");
  }
  GRIDDB_ASSIGN_OR_RETURN(ral::JdbcConnection * conn,
                          ConnectionFor(plan.connection, cost));
  const sql::Dialect& dialect = conn->database()->dialect();
  return conn->ExecuteQuery(sql::RenderSelect(*plan.direct_stmt, dialect),
                            cost);
}

Result<ResultSet> UnityDriver::ExecuteDirectRendered(
    const QueryPlan& plan, const std::string& rendered_sql, net::Cost* cost) {
  if (!plan.single_database || !plan.direct_stmt) {
    return Internal("ExecuteDirect requires a single-database plan");
  }
  GRIDDB_ASSIGN_OR_RETURN(ral::JdbcConnection * conn,
                          ConnectionFor(plan.connection, cost));
  return conn->ExecuteQuery(rendered_sql, cost);
}

Result<ResultSet> UnityDriver::Query(const std::string& sql_text,
                                     net::Cost* cost,
                                     const CancelToken* cancel) {
  if (cost) cost->AddMs(costs_.query_parse_ms);
  if (cancel) GRIDDB_RETURN_IF_ERROR(cancel->Check());
  GRIDDB_ASSIGN_OR_RETURN(QueryPlan plan, Plan(sql_text));

  if (plan.single_database) return ExecuteDirect(plan, cost);

  // Multi-database: execute sub-queries, then merge.
  std::vector<std::pair<std::string, ResultSet>> partials(
      plan.subqueries.size());
  std::vector<net::Cost> branch_costs(plan.subqueries.size());

  if (options_.enhanced && options_.parallel_subqueries &&
      plan.subqueries.size() > 1) {
    std::vector<std::future<Status>> futures;
    futures.reserve(plan.subqueries.size());
    for (size_t i = 0; i < plan.subqueries.size(); ++i) {
      futures.push_back(pool_.Submit([this, &plan, &partials, &branch_costs,
                                      cancel, i]() -> Status {
        // Every branch shares the query's token: the first sibling to
        // observe expiry cancels the rest before they start work.
        if (cancel) GRIDDB_RETURN_IF_ERROR(cancel->Check());
        auto rs = ExecuteSubQuery(plan.subqueries[i], &branch_costs[i]);
        if (!rs.ok()) return rs.status();
        partials[i] = {plan.subqueries[i].effective_name, std::move(*rs)};
        return Status::Ok();
      }));
    }
    Status first_error = Status::Ok();
    for (auto& f : futures) {
      Status s = f.get();
      if (!s.ok() && first_error.ok()) first_error = s;
    }
    GRIDDB_RETURN_IF_ERROR(first_error);
    if (cost) cost->AddParallel(branch_costs);
  } else {
    for (size_t i = 0; i < plan.subqueries.size(); ++i) {
      if (cancel) GRIDDB_RETURN_IF_ERROR(cancel->Check());
      GRIDDB_ASSIGN_OR_RETURN(ResultSet rs,
                              ExecuteSubQuery(plan.subqueries[i],
                                              &branch_costs[i]));
      partials[i] = {plan.subqueries[i].effective_name, std::move(rs)};
      if (cost) cost->AddSequential(branch_costs[i]);
    }
  }

  GRIDDB_ASSIGN_OR_RETURN(ResultSet merged,
                          MergePartials(*plan.merge_stmt, std::move(partials),
                                        cancel));
  if (cost) {
    cost->AddMs(costs_.integrate_per_row_ms *
                static_cast<double>(merged.num_rows()));
  }
  return merged;
}

}  // namespace griddb::unity
