// Federated query planning: logical SELECT -> per-database sub-queries +
// a middleware-side merge plan (paper §4.5 / §4.6).
//
// The data access layer "looks for the tables from which data is
// requested by the client ... and divides [the query] into sub-queries,
// which are then distributed on to the underlying databases"; the
// enhanced Unity driver then "appl[ies] joins on rows extracted from
// multiple databases" and merges everything "into a single 2-D vector".
//
// Plan shape:
//  - single-database queries are rewritten wholesale to physical names
//    and shipped as one statement (fast path);
//  - multi-database queries produce one SubQuery per table reference
//    (projection and single-table predicates pushed down, re-rendered in
//    the target vendor's dialect) plus a merge statement executed by the
//    middleware over the partial results.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "griddb/engine/select_executor.h"
#include "griddb/sql/ast.h"
#include "griddb/sql/dialect.h"
#include "griddb/unity/dictionary.h"
#include "griddb/util/status.h"

namespace griddb::unity {

/// Chooses among replicas of a logical table. Default: a binding whose
/// connection host equals `prefer_host` if any, else the first.
using ReplicaSelector = std::function<const TableBinding*(
    const std::vector<TableBinding>& replicas)>;

struct PlannerOptions {
  /// Enhanced-driver behaviour. When false (baseline Unity), planning a
  /// query whose tables span databases fails with kUnsupported.
  bool allow_cross_database_joins = true;
  /// Fetch only the columns the query references (vs whole tables — the
  /// baseline behaviour whose memory overload the paper §3 calls out).
  bool projection_pushdown = true;
  /// Push single-table WHERE conjuncts into the sub-queries.
  bool predicate_pushdown = true;
  /// Host whose replicas are preferred (the querying server's host).
  std::string prefer_host;
  /// Custom replica choice; overrides prefer_host when set.
  ReplicaSelector selector;
  /// Routing eligibility predicate applied BEFORE replica selection;
  /// bindings for which it returns false (e.g. quarantined replicas, see
  /// core/integrity_monitor) are invisible to the selector. When every
  /// replica of a table is filtered out, planning fails with kNotFound
  /// ("no usable replica"), which the failover path treats as
  /// failover-worthy.
  std::function<bool(const TableBinding&)> replica_filter;
};

/// One per-database sub-query: fetch `fields` of `table`, filtered by
/// `where` (all names physical), registered at merge under
/// `effective_name`.
struct SubQuery {
  TableBinding table;
  std::string effective_name;
  /// (physical column, logical output alias) pairs.
  std::vector<std::pair<std::string, std::string>> fields;
  sql::ExprPtr where;  ///< Physical, unqualified; may be null.

  /// Full SELECT text in the target dialect.
  std::string RenderSql(const sql::Dialect& dialect) const;
  /// The POOL-RAL wrapper form: select-field strings ("P AS l"),
  /// table list and where-clause text.
  std::vector<std::string> FieldStrings(const sql::Dialect& dialect) const;
  std::string WhereString(const sql::Dialect& dialect) const;
};

struct QueryPlan {
  /// True when every referenced table lives in one database.
  bool single_database = false;

  // Single-database fast path: the whole statement, physical names,
  // executable directly on `connection`.
  std::string connection;
  std::unique_ptr<sql::SelectStmt> direct_stmt;

  // Multi-database path.
  std::vector<SubQuery> subqueries;
  std::unique_ptr<sql::SelectStmt> merge_stmt;

  /// Logical tables the statement references (for RLS publication checks).
  std::vector<std::string> logical_tables;

  /// Dictionary epoch the plan was made against. Executors compare this
  /// with the dictionary's current epoch and refuse to run a stale plan.
  uint64_t epoch = 0;
};

/// Plans a logical SELECT against the dictionary. Returns kNotFound when a
/// referenced table is not in the dictionary (callers fall back to RLS).
Result<QueryPlan> PlanSelect(const sql::SelectStmt& stmt,
                             const DataDictionary& dictionary,
                             const PlannerOptions& options);

/// Executes the merge statement over named partial results. `cancel`,
/// when given, is checked at row-batch granularity inside the merge join
/// (see engine::ExecuteSelect).
Result<storage::ResultSet> MergePartials(
    const sql::SelectStmt& merge_stmt,
    std::vector<std::pair<std::string, storage::ResultSet>> partials,
    const CancelToken* cancel = nullptr);

/// Human-readable plan description (EXPLAIN-style): the single-database
/// statement with its target, or every sub-query in its target dialect
/// plus the middleware merge statement.
std::string DescribePlan(const QueryPlan& plan);

}  // namespace griddb::unity
