#include "griddb/unity/planner.h"

#include <algorithm>
#include <set>

#include "griddb/ral/catalog.h"
#include "griddb/sql/render.h"
#include "griddb/util/strings.h"

namespace griddb::unity {

using sql::Expr;
using sql::ExprPtr;
using sql::SelectStmt;
using sql::TableRef;

// ---------- SubQuery rendering ----------

std::vector<std::string> SubQuery::FieldStrings(
    const sql::Dialect& dialect) const {
  std::vector<std::string> out;
  out.reserve(fields.size());
  for (const auto& [physical, logical] : fields) {
    std::string field = dialect.QuoteIdentifier(physical);
    if (!EqualsIgnoreCase(physical, logical)) {
      field += " AS " + dialect.QuoteIdentifier(logical);
    }
    out.push_back(std::move(field));
  }
  return out;
}

std::string SubQuery::WhereString(const sql::Dialect& dialect) const {
  return where ? sql::RenderExpr(*where, dialect) : std::string();
}

std::string SubQuery::RenderSql(const sql::Dialect& dialect) const {
  std::string out =
      "SELECT " + Join(FieldStrings(dialect), ", ") + " FROM " +
      dialect.QuoteIdentifier(table.physical);
  std::string where_text = WhereString(dialect);
  if (!where_text.empty()) out += " WHERE " + where_text;
  return out;
}

namespace {

/// Applies `fn` to every expression tree hanging off the statement.
void ForEachExpr(const SelectStmt& stmt,
                 const std::function<void(const Expr&)>& fn) {
  for (const sql::SelectItem& item : stmt.items) fn(*item.expr);
  for (const sql::Join& join : stmt.joins) {
    if (join.on) fn(*join.on);
  }
  if (stmt.where) fn(*stmt.where);
  for (const ExprPtr& g : stmt.group_by) fn(*g);
  if (stmt.having) fn(*stmt.having);
  for (const sql::OrderItem& o : stmt.order_by) fn(*o.expr);
}

/// Mutable expression walk.
void MutateExprs(Expr& expr, const std::function<void(Expr&)>& fn) {
  fn(expr);
  for (ExprPtr& child : expr.children) MutateExprs(*child, fn);
}

void MutateStmtExprs(SelectStmt& stmt, const std::function<void(Expr&)>& fn) {
  for (sql::SelectItem& item : stmt.items) MutateExprs(*item.expr, fn);
  for (sql::Join& join : stmt.joins) {
    if (join.on) MutateExprs(*join.on, fn);
  }
  if (stmt.where) MutateExprs(*stmt.where, fn);
  for (ExprPtr& g : stmt.group_by) MutateExprs(*g, fn);
  if (stmt.having) MutateExprs(*stmt.having, fn);
  for (sql::OrderItem& o : stmt.order_by) MutateExprs(*o.expr, fn);
}

/// A bound table reference: the AST node plus its dictionary binding.
struct BoundTable {
  const TableRef* ref;
  TableBinding binding;
  std::string effective;  // alias or logical table name
};

/// Owner resolution of a column reference among the bound tables.
/// ORDER BY may also name select-list aliases; `output_aliases` suppresses
/// the unknown-column error for those.
Result<int> ResolveOwner(const sql::ColumnRef& ref,
                         const std::vector<BoundTable>& tables,
                         const std::set<std::string>& output_aliases) {
  if (!ref.table.empty()) {
    for (size_t i = 0; i < tables.size(); ++i) {
      if (EqualsIgnoreCase(tables[i].effective, ref.table)) {
        if (!tables[i].binding.HasLogicalColumn(ref.column)) {
          return NotFound("table '" + ref.table + "' has no column '" +
                          ref.column + "' in the data dictionary");
        }
        return static_cast<int>(i);
      }
    }
    return NotFound("unknown table qualifier '" + ref.table + "'");
  }
  int found = -1;
  for (size_t i = 0; i < tables.size(); ++i) {
    if (tables[i].binding.HasLogicalColumn(ref.column)) {
      if (found >= 0) {
        return InvalidArgument("ambiguous column '" + ref.column +
                               "' (qualify it with a table name)");
      }
      found = static_cast<int>(i);
    }
  }
  if (found < 0) {
    if (output_aliases.count(ToLower(ref.column))) return -1;  // alias ref
    return NotFound("unknown column '" + ref.column +
                    "' in the data dictionary");
  }
  return found;
}

/// Positions of ORDER BY integer literals (they reference output columns,
/// not tables) -- they never need ownership resolution.
bool IsPositionalOrderRef(const Expr& e) {
  return e.kind == Expr::Kind::kLiteral &&
         e.literal.type() == storage::DataType::kInt64;
}

const TableBinding* DefaultSelector(const std::vector<TableBinding>& replicas,
                                    const std::string& prefer_host) {
  if (replicas.empty()) return nullptr;
  if (!prefer_host.empty()) {
    for (const TableBinding& b : replicas) {
      auto conn = ral::ConnectionString::Parse(b.connection);
      if (conn.ok() && conn->host == prefer_host) return &b;
    }
  }
  return &replicas.front();
}

}  // namespace

Result<QueryPlan> PlanSelect(const SelectStmt& stmt,
                             const DataDictionary& dictionary,
                             const PlannerOptions& options) {
  QueryPlan plan;
  // Captured before any dictionary read so a schema change racing with
  // planning is detected at execution time, never silently absorbed.
  plan.epoch = dictionary.epoch();

  // ---- bind table references ----
  std::vector<BoundTable> tables;
  std::vector<std::vector<TableBinding>> replica_sets;
  for (const TableRef* ref : stmt.AllTables()) {
    std::vector<TableBinding> replicas = dictionary.Locate(ref->table);
    if (replicas.empty()) {
      return NotFound("table '" + ref->table +
                      "' is not registered in the data dictionary");
    }
    if (options.replica_filter) {
      replicas.erase(std::remove_if(replicas.begin(), replicas.end(),
                                    [&](const TableBinding& b) {
                                      return !options.replica_filter(b);
                                    }),
                     replicas.end());
    }
    const TableBinding* chosen =
        options.selector ? options.selector(replicas)
                         : DefaultSelector(replicas, options.prefer_host);
    if (!chosen) {
      return NotFound("no usable replica for table '" + ref->table + "'");
    }
    tables.push_back({ref, *chosen, ref->EffectiveName()});
    replica_sets.push_back(std::move(replicas));
    plan.logical_tables.push_back(ToLower(ref->table));
  }

  // Duplicate effective names break merge registration and the executor.
  for (size_t i = 0; i < tables.size(); ++i) {
    for (size_t j = i + 1; j < tables.size(); ++j) {
      if (EqualsIgnoreCase(tables[i].effective, tables[j].effective)) {
        return InvalidArgument("duplicate table name/alias '" +
                               tables[i].effective + "'");
      }
    }
  }

  std::set<std::string> output_aliases;
  for (const sql::SelectItem& item : stmt.items) {
    if (!item.alias.empty()) output_aliases.insert(ToLower(item.alias));
  }

  // ---- validate every column reference & star qualifier ----
  Status first_error = Status::Ok();
  ForEachExpr(stmt, [&](const Expr& root) {
    std::vector<const Expr*> stack = {&root};
    while (!stack.empty()) {
      const Expr* e = stack.back();
      stack.pop_back();
      if (e->kind == Expr::Kind::kColumn && first_error.ok() &&
          !IsPositionalOrderRef(*e)) {
        auto owner = ResolveOwner(e->column_ref, tables, output_aliases);
        if (!owner.ok()) first_error = owner.status();
      }
      if (e->kind == Expr::Kind::kStar && !e->column_ref.table.empty() &&
          first_error.ok()) {
        bool known = false;
        for (const BoundTable& t : tables) {
          if (EqualsIgnoreCase(t.effective, e->column_ref.table)) known = true;
        }
        if (!known) {
          first_error = NotFound("unknown table qualifier '" +
                                 e->column_ref.table + "' in '" +
                                 e->column_ref.table + ".*'");
        }
      }
      for (const ExprPtr& child : e->children) stack.push_back(child.get());
    }
  });
  GRIDDB_RETURN_IF_ERROR(first_error);

  // ---- single-database fast path ----
  bool single_db = true;
  for (size_t i = 1; i < tables.size(); ++i) {
    if (tables[i].binding.connection != tables[0].binding.connection) {
      single_db = false;
      break;
    }
  }

  auto owner_of = [&](const sql::ColumnRef& ref) -> int {
    auto owner = ResolveOwner(ref, tables, output_aliases);
    return owner.ok() ? *owner : -1;
  };

  if (single_db) {
    plan.single_database = true;
    plan.connection = tables[0].binding.connection;
    plan.direct_stmt = stmt.Clone();

    // Expand stars to explicit columns with logical aliases so output
    // column names stay logical regardless of vendor physical names.
    std::vector<sql::SelectItem> expanded;
    for (sql::SelectItem& item : plan.direct_stmt->items) {
      if (item.expr->kind != Expr::Kind::kStar) {
        expanded.push_back({std::move(item.expr), item.alias});
        continue;
      }
      const std::string& qualifier = item.expr->column_ref.table;
      for (const BoundTable& t : tables) {
        if (!qualifier.empty() && !EqualsIgnoreCase(t.effective, qualifier)) {
          continue;
        }
        for (const ColumnBinding& col : t.binding.columns) {
          expanded.push_back(
              {sql::MakeColumn(t.effective, col.logical), col.logical});
        }
      }
    }
    plan.direct_stmt->items = std::move(expanded);

    // Bare column items keep their logical name as the output alias so the
    // vendor's physical column names never leak to the client.
    for (sql::SelectItem& item : plan.direct_stmt->items) {
      if (item.alias.empty() && item.expr->kind == Expr::Kind::kColumn) {
        item.alias = ToLower(item.expr->column_ref.column);
      }
    }

    // Rewrite table names to physical; keep the logical effective name as
    // the alias so qualified references continue to resolve.
    auto rewrite_ref = [&](TableRef& ref, const BoundTable& bound) {
      ref.table = bound.binding.physical;
      ref.alias = bound.effective;
    };
    size_t table_index = 0;
    for (TableRef& ref : plan.direct_stmt->from) {
      rewrite_ref(ref, tables[table_index++]);
    }
    for (sql::Join& join : plan.direct_stmt->joins) {
      rewrite_ref(join.table, tables[table_index++]);
    }

    // Rewrite column references to physical names, qualifying unqualified
    // ones with their owner's effective name.
    MutateStmtExprs(*plan.direct_stmt, [&](Expr& e) {
      if (e.kind != Expr::Kind::kColumn || IsPositionalOrderRef(e)) return;
      int owner = owner_of(e.column_ref);
      if (owner < 0) return;  // select-list alias (ORDER BY n DESC etc.)
      const BoundTable& t = tables[static_cast<size_t>(owner)];
      const ColumnBinding* col =
          t.binding.FindLogicalColumn(e.column_ref.column);
      if (!col) return;
      e.column_ref.table = t.effective;
      e.column_ref.column = col->physical;
    });
    return plan;
  }

  // ---- multi-database plan ----
  if (!options.allow_cross_database_joins) {
    return Unsupported(
        "query spans multiple databases; the baseline Unity driver does not "
        "support cross-database joins");
  }

  // Referenced logical columns per table (for projection pushdown).
  std::vector<std::set<std::string>> referenced(tables.size());
  std::vector<bool> wants_all(tables.size(), false);
  ForEachExpr(stmt, [&](const Expr& root) {
    std::vector<const Expr*> stack = {&root};
    while (!stack.empty()) {
      const Expr* e = stack.back();
      stack.pop_back();
      if (e->kind == Expr::Kind::kColumn && !IsPositionalOrderRef(*e)) {
        int owner = owner_of(e->column_ref);
        if (owner >= 0) {
          referenced[static_cast<size_t>(owner)].insert(
              ToLower(e->column_ref.column));
        }
      }
      if (e->kind == Expr::Kind::kStar) {
        if (e->column_ref.table.empty()) {
          std::fill(wants_all.begin(), wants_all.end(), true);
        } else {
          for (size_t i = 0; i < tables.size(); ++i) {
            if (EqualsIgnoreCase(tables[i].effective, e->column_ref.table)) {
              wants_all[i] = true;
            }
          }
        }
      }
      for (const ExprPtr& child : e->children) stack.push_back(child.get());
    }
  });

  // WHERE conjuncts owned entirely by one table get pushed down — except
  // for tables on the nullable (right) side of a LEFT JOIN: reducing such
  // a table's rows changes which left rows get NULL-padded, so a
  // NULL-sensitive predicate (IS NULL, IS NOT NULL over padded columns)
  // evaluated at merge would see different rows than the reference.
  std::vector<bool> left_join_nullable(tables.size(), false);
  {
    size_t index = stmt.from.size();
    for (const sql::Join& join : stmt.joins) {
      if (join.type == sql::JoinType::kLeft) left_join_nullable[index] = true;
      ++index;
    }
  }
  std::vector<std::vector<const Expr*>> pushed(tables.size());
  if (options.predicate_pushdown && stmt.where) {
    for (const Expr* conjunct : sql::SplitConjuncts(stmt.where.get())) {
      std::vector<const sql::ColumnRef*> refs;
      sql::CollectColumnRefs(*conjunct, refs);
      if (refs.empty()) continue;
      int owner = -1;
      bool single_owner = true;
      for (const sql::ColumnRef* ref : refs) {
        int this_owner = owner_of(*ref);
        if (this_owner < 0 || (owner >= 0 && this_owner != owner)) {
          single_owner = false;
          break;
        }
        owner = this_owner;
      }
      if (single_owner && owner >= 0 &&
          !left_join_nullable[static_cast<size_t>(owner)]) {
        pushed[static_cast<size_t>(owner)].push_back(conjunct);
      }
    }
  }

  for (size_t i = 0; i < tables.size(); ++i) {
    const BoundTable& t = tables[i];
    SubQuery sub;
    sub.table = t.binding;
    sub.effective_name = t.effective;

    bool all = wants_all[i] || !options.projection_pushdown;
    if (all) {
      for (const ColumnBinding& col : t.binding.columns) {
        sub.fields.emplace_back(col.physical, col.logical);
      }
    } else {
      for (const std::string& logical : referenced[i]) {
        const ColumnBinding* col = t.binding.FindLogicalColumn(logical);
        if (col) sub.fields.emplace_back(col->physical, col->logical);
      }
      // A table referenced only for its row count (SELECT COUNT(*) FROM a,b)
      // still needs one column to preserve multiplicity.
      if (sub.fields.empty() && !t.binding.columns.empty()) {
        sub.fields.emplace_back(t.binding.columns[0].physical,
                                t.binding.columns[0].logical);
      }
    }

    // Pushed-down predicate, rewritten to unqualified physical names.
    std::vector<ExprPtr> physical_conjuncts;
    for (const Expr* conjunct : pushed[i]) {
      ExprPtr copy = conjunct->Clone();
      MutateExprs(*copy, [&](Expr& e) {
        if (e.kind != Expr::Kind::kColumn) return;
        const ColumnBinding* col =
            t.binding.FindLogicalColumn(e.column_ref.column);
        if (col) {
          e.column_ref.table.clear();
          e.column_ref.column = col->physical;
        }
      });
      physical_conjuncts.push_back(std::move(copy));
    }
    sub.where = sql::ConjunctionOf(std::move(physical_conjuncts));
    plan.subqueries.push_back(std::move(sub));
  }

  // Merge statement: the original logical query with each table reference
  // renamed to its effective name (the key partial results register under).
  plan.merge_stmt = stmt.Clone();
  size_t table_index = 0;
  for (TableRef& ref : plan.merge_stmt->from) {
    ref.table = tables[table_index++].effective;
    ref.alias.clear();
  }
  for (sql::Join& join : plan.merge_stmt->joins) {
    join.table.table = tables[table_index++].effective;
    join.table.alias.clear();
  }
  return plan;
}

std::string DescribePlan(const QueryPlan& plan) {
  std::string out;
  if (plan.single_database) {
    out += "single-database plan -> " + plan.connection + "\n";
    auto conn = ral::ConnectionString::Parse(plan.connection);
    const sql::Dialect& dialect =
        sql::Dialect::For(conn.ok() ? conn->vendor : sql::Vendor::kSqlite);
    out += "  " + sql::RenderSelect(*plan.direct_stmt, dialect) + "\n";
    return out;
  }
  out += "federated plan, " + std::to_string(plan.subqueries.size()) +
         " sub-queries:\n";
  for (const SubQuery& sub : plan.subqueries) {
    auto conn = ral::ConnectionString::Parse(sub.table.connection);
    const sql::Dialect& dialect =
        sql::Dialect::For(conn.ok() ? conn->vendor : sql::Vendor::kSqlite);
    out += "  [" + sub.effective_name + " @ " + sub.table.connection + ", " +
           dialect.name() + "]\n";
    out += "    " + sub.RenderSql(dialect) + "\n";
  }
  out += "  [merge @ middleware]\n    " +
         sql::RenderSelect(*plan.merge_stmt,
                           sql::Dialect::For(sql::Vendor::kSqlite)) +
         "\n";
  return out;
}

Result<storage::ResultSet> MergePartials(
    const SelectStmt& merge_stmt,
    std::vector<std::pair<std::string, storage::ResultSet>> partials,
    const CancelToken* cancel) {
  engine::MapTableSource source;
  for (auto& [name, rs] : partials) {
    source.Add(std::move(name), std::move(rs));
  }
  return engine::ExecuteSelect(merge_stmt, source, cancel);
}

}  // namespace griddb::unity
