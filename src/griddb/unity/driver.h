// The Unity federated driver (paper §3, §4.6).
//
// Baseline behaviour (the Unity JDBC driver the paper builds on): resolve
// logical names through XSpec metadata, ship a whole query to the single
// database that holds its tables, return a 2-D result. No cross-database
// joins, sub-queries executed serially.
//
// Enhanced behaviour (the paper's contribution at the driver level):
// cross-database joins via decomposition + middleware merge, sub-queries
// executed in parallel, projection/predicate pushdown.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "griddb/net/network.h"
#include "griddb/ral/catalog.h"
#include "griddb/ral/jdbc.h"
#include "griddb/unity/planner.h"
#include "griddb/unity/xspec.h"
#include "griddb/util/thread_pool.h"

namespace griddb::unity {

struct UnityDriverOptions {
  bool enhanced = true;             ///< Master switch for the paper's driver
                                    ///< enhancements (joins + parallelism).
  bool parallel_subqueries = true;  ///< Only meaningful when enhanced.
  bool projection_pushdown = true;
  bool predicate_pushdown = true;
  size_t max_threads = 8;
  std::string client_host = "localhost";  ///< Host the driver runs on.
  std::string user;                       ///< Credentials presented to DBs.
  std::string password;
};

class UnityDriver {
 public:
  UnityDriver(const ral::DatabaseCatalog* catalog, const net::Network* network,
              net::ServiceCosts costs, UnityDriverOptions options);

  /// Registers a database from its XSpec pair.
  Status AddDatabase(const UpperXSpecEntry& upper, const LowerXSpec& lower);
  /// Re-registers after a schema change (swaps the dictionary entries).
  Status ReplaceDatabase(const UpperXSpecEntry& upper, const LowerXSpec& lower);
  Status RemoveDatabase(const std::string& database_name);

  const DataDictionary& dictionary() const { return dictionary_; }
  const UnityDriverOptions& options() const { return options_; }

  /// Parses (permissive dialect) and plans a query without executing it.
  Result<QueryPlan> Plan(const std::string& sql_text) const;
  Result<QueryPlan> Plan(const sql::SelectStmt& stmt) const;

  /// Installs a routing eligibility predicate copied into every plan's
  /// PlannerOptions (see PlannerOptions::replica_filter). Install once at
  /// startup; the predicate itself may consult mutable state (e.g. the
  /// quarantine set) under its own lock.
  void SetReplicaFilter(std::function<bool(const TableBinding&)> filter) {
    replica_filter_ = std::move(filter);
  }

  /// Full federated query: plan, execute sub-queries (JDBC), merge.
  /// `cancel`, when given, is checked before each sub-query (branches the
  /// fan-out has not started yet are skipped once a sibling cancels) and
  /// at row-batch granularity inside the middleware merge join.
  Result<storage::ResultSet> Query(const std::string& sql_text,
                                   net::Cost* cost = nullptr,
                                   const CancelToken* cancel = nullptr);

  /// Executes one planned sub-query over JDBC. Public so the data access
  /// layer can route sub-queries itself (POOL-RAL vs JDBC).
  Result<storage::ResultSet> ExecuteSubQuery(const SubQuery& sub,
                                             net::Cost* cost);
  /// Same, with the dialect rendering already done (plan-cache path: the
  /// statement text is memoized per plan, so repeat executions and
  /// failover re-attempts skip rendering).
  Result<storage::ResultSet> ExecuteSubQueryRendered(
      const SubQuery& sub, const std::string& rendered_sql, net::Cost* cost);

  /// Executes a single-database plan directly.
  Result<storage::ResultSet> ExecuteDirect(const QueryPlan& plan,
                                           net::Cost* cost);
  /// Same, with the statement text pre-rendered.
  Result<storage::ResultSet> ExecuteDirectRendered(
      const QueryPlan& plan, const std::string& rendered_sql, net::Cost* cost);

  /// Opens and caches the JDBC connection without charging simulated cost
  /// (registration-time connect: the server connects to a database once
  /// when it is registered/plugged in, paper §4.10).
  Status WarmConnection(const std::string& connection);

 private:
  Result<ral::JdbcConnection*> ConnectionFor(const std::string& connection,
                                             net::Cost* cost);

  const ral::DatabaseCatalog* catalog_;
  const net::Network* network_;
  net::ServiceCosts costs_;
  UnityDriverOptions options_;
  std::function<bool(const TableBinding&)> replica_filter_;
  DataDictionary dictionary_;
  ThreadPool pool_;
  std::mutex conn_mu_;
  std::map<std::string, std::unique_ptr<ral::JdbcConnection>> connections_;
};

}  // namespace griddb::unity
