// XSpec ("XML Specification") files, paper §4.4.
//
// Lower-level XSpec: one per database, generated from the live database;
// carries the schema (tables, columns, relationships) plus the logical
// names that form the data dictionary clients program against.
//
// Upper-level XSpec: one per federation, written by the administrator;
// lists each database's URL (connection string), driver and the name of
// its lower-level XSpec.
#pragma once

#include <string>
#include <vector>

#include "griddb/engine/database.h"
#include "griddb/storage/value.h"
#include "griddb/util/status.h"

namespace griddb::unity {

struct XSpecColumn {
  std::string physical_name;
  std::string logical_name;
  storage::DataType type = storage::DataType::kString;
  bool primary_key = false;
  bool not_null = false;
};

struct XSpecTable {
  std::string physical_name;
  std::string logical_name;
  std::vector<XSpecColumn> columns;
};

/// A foreign-key edge, recorded so the planner can reason about joins.
struct XSpecRelationship {
  std::string from_table;   // physical names
  std::string from_column;
  std::string to_table;
  std::string to_column;
};

struct LowerXSpec {
  std::string database_name;
  std::string vendor;  ///< Dialect name: oracle / mysql / mssql / sqlite.
  std::vector<XSpecTable> tables;
  std::vector<XSpecRelationship> relationships;

  std::string ToXml() const;
  static Result<LowerXSpec> FromXml(std::string_view text);

  const XSpecTable* FindTableByLogical(std::string_view logical) const;
};

struct UpperXSpecEntry {
  std::string database_name;
  std::string url;        ///< Connection string, e.g. mysql://caltech/mart1.
  std::string driver;     ///< Driver name, e.g. "mysql-jdbc".
  std::string lower_spec; ///< File name / identifier of the lower XSpec.
};

struct UpperXSpec {
  std::vector<UpperXSpecEntry> entries;

  std::string ToXml() const;
  static Result<UpperXSpec> FromXml(std::string_view text);
};

/// Generates a lower-level XSpec from a live database (the Unity tooling
/// the paper runs against each data source). Logical names are the
/// lower-cased physical names by default.
LowerXSpec GenerateXSpec(const engine::Database& db);

}  // namespace griddb::unity
