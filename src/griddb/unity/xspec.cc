#include "griddb/unity/xspec.h"

#include "griddb/util/strings.h"
#include "griddb/xml/xml.h"

namespace griddb::unity {

namespace {

const char* TypeTag(storage::DataType type) {
  switch (type) {
    case storage::DataType::kInt64: return "integer";
    case storage::DataType::kDouble: return "double";
    case storage::DataType::kString: return "string";
    case storage::DataType::kBool: return "boolean";
    case storage::DataType::kNull: return "null";
  }
  return "?";
}

Result<storage::DataType> TypeFromTag(const std::string& tag) {
  if (tag == "integer") return storage::DataType::kInt64;
  if (tag == "double") return storage::DataType::kDouble;
  if (tag == "string") return storage::DataType::kString;
  if (tag == "boolean") return storage::DataType::kBool;
  return ParseError("unknown XSpec column type '" + tag + "'");
}

}  // namespace

const XSpecTable* LowerXSpec::FindTableByLogical(
    std::string_view logical) const {
  for (const XSpecTable& table : tables) {
    if (EqualsIgnoreCase(table.logical_name, logical)) return &table;
  }
  return nullptr;
}

std::string LowerXSpec::ToXml() const {
  xml::Node root("xspec");
  root.attributes["database"] = database_name;
  root.attributes["vendor"] = vendor;
  for (const XSpecTable& table : tables) {
    xml::Node& table_node = root.AddChild("table");
    table_node.attributes["name"] = table.physical_name;
    table_node.attributes["logical"] = table.logical_name;
    for (const XSpecColumn& col : table.columns) {
      xml::Node& col_node = table_node.AddChild("column");
      col_node.attributes["name"] = col.physical_name;
      col_node.attributes["logical"] = col.logical_name;
      col_node.attributes["type"] = TypeTag(col.type);
      if (col.primary_key) col_node.attributes["pk"] = "true";
      if (col.not_null) col_node.attributes["notnull"] = "true";
    }
  }
  for (const XSpecRelationship& rel : relationships) {
    xml::Node& rel_node = root.AddChild("relationship");
    rel_node.attributes["fromTable"] = rel.from_table;
    rel_node.attributes["fromColumn"] = rel.from_column;
    rel_node.attributes["toTable"] = rel.to_table;
    rel_node.attributes["toColumn"] = rel.to_column;
  }
  return xml::Write(root);
}

Result<LowerXSpec> LowerXSpec::FromXml(std::string_view text) {
  GRIDDB_ASSIGN_OR_RETURN(std::unique_ptr<xml::Node> doc, xml::Parse(text));
  if (doc->name != "xspec") return ParseError("expected <xspec> root");
  LowerXSpec spec;
  spec.database_name = doc->Attribute("database");
  spec.vendor = doc->Attribute("vendor");
  if (spec.database_name.empty()) {
    return ParseError("<xspec> missing database attribute");
  }
  for (const xml::Node* table_node : doc->Children("table")) {
    XSpecTable table;
    table.physical_name = table_node->Attribute("name");
    table.logical_name = table_node->Attribute("logical");
    if (table.physical_name.empty()) {
      return ParseError("<table> missing name attribute");
    }
    if (table.logical_name.empty()) {
      table.logical_name = ToLower(table.physical_name);
    }
    for (const xml::Node* col_node : table_node->Children("column")) {
      XSpecColumn col;
      col.physical_name = col_node->Attribute("name");
      col.logical_name = col_node->Attribute("logical");
      if (col.physical_name.empty()) {
        return ParseError("<column> missing name attribute");
      }
      if (col.logical_name.empty()) {
        col.logical_name = ToLower(col.physical_name);
      }
      GRIDDB_ASSIGN_OR_RETURN(col.type, TypeFromTag(col_node->Attribute("type")));
      col.primary_key = col_node->Attribute("pk") == "true";
      col.not_null = col_node->Attribute("notnull") == "true";
      table.columns.push_back(std::move(col));
    }
    spec.tables.push_back(std::move(table));
  }
  for (const xml::Node* rel_node : doc->Children("relationship")) {
    spec.relationships.push_back({rel_node->Attribute("fromTable"),
                                  rel_node->Attribute("fromColumn"),
                                  rel_node->Attribute("toTable"),
                                  rel_node->Attribute("toColumn")});
  }
  return spec;
}

std::string UpperXSpec::ToXml() const {
  xml::Node root("upperXSpec");
  for (const UpperXSpecEntry& entry : entries) {
    xml::Node& db_node = root.AddChild("database");
    db_node.attributes["name"] = entry.database_name;
    db_node.AddTextChild("url", entry.url);
    db_node.AddTextChild("driver", entry.driver);
    db_node.AddTextChild("xspec", entry.lower_spec);
  }
  return xml::Write(root);
}

Result<UpperXSpec> UpperXSpec::FromXml(std::string_view text) {
  GRIDDB_ASSIGN_OR_RETURN(std::unique_ptr<xml::Node> doc, xml::Parse(text));
  if (doc->name != "upperXSpec") return ParseError("expected <upperXSpec> root");
  UpperXSpec spec;
  for (const xml::Node* db_node : doc->Children("database")) {
    UpperXSpecEntry entry;
    entry.database_name = db_node->Attribute("name");
    entry.url = db_node->ChildText("url");
    entry.driver = db_node->ChildText("driver");
    entry.lower_spec = db_node->ChildText("xspec");
    if (entry.database_name.empty() || entry.url.empty()) {
      return ParseError("<database> entry missing name or url");
    }
    spec.entries.push_back(std::move(entry));
  }
  return spec;
}

LowerXSpec GenerateXSpec(const engine::Database& db) {
  LowerXSpec spec;
  spec.database_name = db.name();
  spec.vendor = sql::VendorName(db.vendor());
  for (const std::string& table_name : db.TableNames()) {
    auto schema = db.GetSchema(table_name);
    if (!schema.ok()) continue;  // table dropped concurrently
    XSpecTable table;
    table.physical_name = table_name;
    table.logical_name = ToLower(table_name);
    for (const storage::ColumnDef& col : schema->columns()) {
      table.columns.push_back({col.name, ToLower(col.name), col.type,
                               col.primary_key, col.not_null});
    }
    spec.tables.push_back(std::move(table));
    for (const storage::ForeignKey& fk : schema->foreign_keys()) {
      for (size_t i = 0; i < fk.columns.size(); ++i) {
        std::string to_column = i < fk.referenced_columns.size()
                                    ? fk.referenced_columns[i]
                                    : fk.columns[i];
        spec.relationships.push_back(
            {table_name, fk.columns[i], fk.referenced_table, to_column});
      }
    }
  }
  // Views are exported as tables (read-only access is all Unity needs).
  for (const std::string& view_name : db.ViewNames()) {
    auto schema = db.GetSchema(view_name);
    if (!schema.ok()) continue;
    XSpecTable table;
    table.physical_name = view_name;
    table.logical_name = ToLower(view_name);
    for (const storage::ColumnDef& col : schema->columns()) {
      table.columns.push_back({col.name, ToLower(col.name), col.type,
                               col.primary_key, col.not_null});
    }
    spec.tables.push_back(std::move(table));
  }
  return spec;
}

}  // namespace griddb::unity
