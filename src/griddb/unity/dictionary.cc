#include "griddb/unity/dictionary.h"

#include <algorithm>
#include <mutex>

#include "griddb/util/strings.h"

namespace griddb::unity {

const ColumnBinding* TableBinding::FindLogicalColumn(
    std::string_view logical_col) const {
  for (const ColumnBinding& col : columns) {
    if (EqualsIgnoreCase(col.logical, logical_col)) return &col;
  }
  return nullptr;
}

Status DataDictionary::AddLocked(const UpperXSpecEntry& upper,
                                 const LowerXSpec& lower) {
  databases_[upper.database_name] = true;
  for (const XSpecTable& table : lower.tables) {
    TableBinding binding;
    binding.logical = ToLower(table.logical_name);
    binding.physical = table.physical_name;
    binding.database_name = upper.database_name;
    binding.connection = upper.url;
    binding.driver = upper.driver;
    for (const XSpecColumn& col : table.columns) {
      binding.columns.push_back(
          {ToLower(col.logical_name), col.physical_name, col.type});
    }
    tables_[binding.logical].push_back(std::move(binding));
  }
  BumpEpoch();
  return Status::Ok();
}

Status DataDictionary::AddDatabase(const UpperXSpecEntry& upper,
                                   const LowerXSpec& lower) {
  std::unique_lock lock(mu_);
  if (databases_.count(upper.database_name)) {
    return AlreadyExists("database '" + upper.database_name +
                         "' already in dictionary");
  }
  return AddLocked(upper, lower);
}

Status DataDictionary::ReplaceDatabase(const UpperXSpecEntry& upper,
                                       const LowerXSpec& lower) {
  std::unique_lock lock(mu_);
  for (auto it = tables_.begin(); it != tables_.end();) {
    auto& locations = it->second;
    locations.erase(std::remove_if(locations.begin(), locations.end(),
                                   [&](const TableBinding& b) {
                                     return b.database_name ==
                                            upper.database_name;
                                   }),
                    locations.end());
    it = locations.empty() ? tables_.erase(it) : std::next(it);
  }
  databases_.erase(upper.database_name);
  return AddLocked(upper, lower);
}

Status DataDictionary::RemoveDatabase(const std::string& database_name) {
  std::unique_lock lock(mu_);
  if (!databases_.erase(database_name)) {
    return NotFound("database '" + database_name + "' not in dictionary");
  }
  for (auto it = tables_.begin(); it != tables_.end();) {
    auto& locations = it->second;
    locations.erase(std::remove_if(locations.begin(), locations.end(),
                                   [&](const TableBinding& b) {
                                     return b.database_name == database_name;
                                   }),
                    locations.end());
    it = locations.empty() ? tables_.erase(it) : std::next(it);
  }
  BumpEpoch();
  return Status::Ok();
}

bool DataDictionary::HasDatabase(const std::string& database_name) const {
  std::shared_lock lock(mu_);
  return databases_.count(database_name) > 0;
}

std::vector<TableBinding> DataDictionary::Locate(
    std::string_view logical_table) const {
  std::shared_lock lock(mu_);
  auto it = tables_.find(ToLower(logical_table));
  if (it == tables_.end()) return {};
  return it->second;
}

bool DataDictionary::HasTable(std::string_view logical_table) const {
  std::shared_lock lock(mu_);
  return tables_.count(ToLower(logical_table)) > 0;
}

std::vector<std::string> DataDictionary::LogicalTables() const {
  std::shared_lock lock(mu_);
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [logical, locations] : tables_) {
    (void)locations;
    out.push_back(logical);
  }
  return out;
}

std::vector<std::string> DataDictionary::DatabaseNames() const {
  std::shared_lock lock(mu_);
  std::vector<std::string> out;
  out.reserve(databases_.size());
  for (const auto& [name, unused] : databases_) {
    (void)unused;
    out.push_back(name);
  }
  return out;
}

}  // namespace griddb::unity
