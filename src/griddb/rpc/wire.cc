#include "griddb/rpc/wire.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdlib>
#include <cstring>

#include "griddb/engine/column_vector.h"
#include "griddb/obs/metrics.h"

namespace griddb::rpc::wire {

using storage::DataType;
using storage::Value;

namespace {

obs::Counter& BinaryResponses() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "griddb.wire.binary_responses");
  return *c;
}
obs::Counter& BytesSaved() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("griddb.wire.bytes_saved");
  return *c;
}
obs::Counter& ChunksStreamed() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("griddb.wire.chunks_streamed");
  return *c;
}
obs::Counter& CorruptFrames() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("griddb.wire.corrupt_frames");
  return *c;
}
obs::Gauge& CompressionRatio() {
  static obs::Gauge* g = obs::MetricsRegistry::Default().GetGauge(
      "griddb.wire.compression_ratio");
  return *g;
}

// Cumulative raw/compressed byte totals behind the compression_ratio
// gauge (ratio of everything compressed so far, not just the last frame).
std::atomic<uint64_t> g_compress_raw{0};
std::atomic<uint64_t> g_compress_wire{0};

// ---- little-endian + varint primitives ----

void AppendLE32(uint32_t v, std::string* out) {
  char buf[4] = {static_cast<char>(v & 0xff), static_cast<char>(v >> 8 & 0xff),
                 static_cast<char>(v >> 16 & 0xff),
                 static_cast<char>(v >> 24 & 0xff)};
  out->append(buf, 4);
}

void AppendLE64(uint64_t v, std::string* out) {
  AppendLE32(static_cast<uint32_t>(v & 0xffffffffu), out);
  AppendLE32(static_cast<uint32_t>(v >> 32), out);
}

uint32_t ReadLE32(const char* p) {
  return static_cast<uint32_t>(static_cast<uint8_t>(p[0])) |
         static_cast<uint32_t>(static_cast<uint8_t>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<uint8_t>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<uint8_t>(p[3])) << 24;
}

uint64_t ReadLE64(const char* p) {
  return static_cast<uint64_t>(ReadLE32(p)) |
         static_cast<uint64_t>(ReadLE32(p + 4)) << 32;
}

void AppendVarint(uint64_t v, std::string* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>(v & 0x7f | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

Result<uint64_t> ReadVarint(std::string_view in, size_t* offset) {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (*offset >= in.size() || shift > 63) {
      return Corruption("truncated varint in binary frame");
    }
    uint8_t b = static_cast<uint8_t>(in[(*offset)++]);
    v |= static_cast<uint64_t>(b & 0x7f) << shift;
    if (!(b & 0x80)) return v;
    shift += 7;
  }
}

uint64_t ZigzagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}

int64_t ZigzagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

void AppendDoubleBits(double d, std::string* out) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  AppendLE64(bits, out);
}

Result<double> ReadDoubleBits(std::string_view in, size_t* offset) {
  if (*offset + 8 > in.size()) {
    return Corruption("truncated double in binary frame");
  }
  uint64_t bits = ReadLE64(in.data() + *offset);
  *offset += 8;
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

Result<std::string_view> ReadBytes(std::string_view in, size_t* offset,
                                   size_t n) {
  if (n > in.size() || *offset > in.size() - n) {
    return Corruption("truncated byte run in binary frame");
  }
  std::string_view s = in.substr(*offset, n);
  *offset += n;
  return s;
}

uint64_t Fnv1a(const char* p, size_t n, uint64_t h) {
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<uint8_t>(p[i]);
    h *= 1099511628211ull;
  }
  return h;
}
constexpr uint64_t kFnvSeed = 1469598103934665603ull;

// ---- TLV tags ----

enum Tag : uint8_t {
  kTagNil = 0,
  kTagInt = 1,
  kTagDouble = 2,
  kTagTrue = 3,
  kTagFalse = 4,
  kTagString = 5,
  kTagArray = 6,
  kTagStruct = 7,
  kTagResultSet = 8,
  // Placeholder for a result set whose rows follow in chunk frames; the
  // payload carries only the column schema.
  kTagStreamStub = 9,
};

enum ColRep : uint8_t {
  kColAllNull = 0,
  kColInt64 = 1,
  kColDouble = 2,
  kColBool = 3,
  kColString = 4,
  kColMixed = 5,
};

// Sanity ceilings applied before any allocation sized from decoded
// counts: the digest makes damaged frames overwhelmingly likely to be
// rejected before decode, but a count must never be trusted to size a
// container beyond what the input could actually hold.
constexpr uint64_t kMaxDecodeCount = 1u << 28;

/// Ceiling on nrows x ncols for a columnar block in which EVERY column
/// is all-null. Such a block carries no per-row bytes at all, so unlike
/// every other shape its row count cannot be anchored to the payload
/// size; a crafted tiny frame could otherwise declare kMaxDecodeCount
/// rows and drive that many null appends per column. 4M cells is far
/// beyond anything the encoder emits in one frame (streams chunk at
/// ~1024 rows) while keeping decode work bounded.
constexpr uint64_t kMaxAllNullOnlyCells = 1u << 22;

Status CheckCount(uint64_t n, size_t remaining_bytes) {
  if (n > kMaxDecodeCount || n > remaining_bytes) {
    return Corruption("implausible element count in binary frame");
  }
  return Status::Ok();
}

bool RowsAreRectangular(const storage::ResultSet& rs) {
  for (const storage::Row& row : rs.rows) {
    if (row.size() != rs.columns.size()) return false;
  }
  return true;
}

void AppendSchema(const storage::ResultSet& rs, std::string* out) {
  AppendVarint(rs.columns.size(), out);
  for (const std::string& c : rs.columns) {
    AppendVarint(c.size(), out);
    out->append(c);
  }
}

Result<std::vector<std::string>> ReadSchema(std::string_view in,
                                            size_t* offset) {
  GRIDDB_ASSIGN_OR_RETURN(uint64_t ncols, ReadVarint(in, offset));
  GRIDDB_RETURN_IF_ERROR(CheckCount(ncols, in.size() - *offset + 1));
  std::vector<std::string> columns;
  columns.reserve(ncols);
  for (uint64_t c = 0; c < ncols; ++c) {
    GRIDDB_ASSIGN_OR_RETURN(uint64_t len, ReadVarint(in, offset));
    GRIDDB_RETURN_IF_ERROR(CheckCount(len, in.size() - *offset));
    GRIDDB_ASSIGN_OR_RETURN(std::string_view name, ReadBytes(in, offset, len));
    columns.emplace_back(name);
  }
  return columns;
}

// ---- value codec ----

struct EncodeCtx {
  /// When set, the FIRST occurrence of this exact result set encodes as
  /// a kTagStreamStub (its rows travel separately in chunk frames); the
  /// field is cleared after that emit, so a response embedding the same
  /// shared set twice encodes later occurrences whole — the decoder
  /// accepts exactly one stub per stream.
  const storage::ResultSet* stream_target = nullptr;
};

struct DecodeCtx {
  std::shared_ptr<storage::ResultSet>* stream_slot = nullptr;
};

void EncodeValueImpl(const XmlRpcValue& value, EncodeCtx& ctx,
                     std::string* out);

void EncodeResultSetTlv(const storage::ResultSet& rs, std::string* out) {
  out->push_back(static_cast<char>(kTagResultSet));
  AppendSchema(rs, out);
  if (RowsAreRectangular(rs)) {
    out->push_back(0);  // columnar layout
    Status ok = EncodeRowsColumnar(rs, 0, rs.rows.size(), out);
    (void)ok;  // rectangular by the check above; cannot fail
    return;
  }
  // Ragged rows (a hand-built set whose rows disagree with the schema)
  // fall back to the generic row-wise layout.
  out->push_back(1);
  AppendVarint(rs.rows.size(), out);
  EncodeCtx none;
  for (const storage::Row& row : rs.rows) {
    AppendVarint(row.size(), out);
    for (const Value& cell : row) {
      switch (cell.type()) {
        case DataType::kNull: EncodeValueImpl(XmlRpcValue(), none, out); break;
        case DataType::kInt64:
          EncodeValueImpl(XmlRpcValue(cell.AsInt64Strict()), none, out);
          break;
        case DataType::kDouble:
          EncodeValueImpl(XmlRpcValue(cell.AsDoubleStrict()), none, out);
          break;
        case DataType::kBool:
          EncodeValueImpl(XmlRpcValue(cell.AsBoolStrict()), none, out);
          break;
        case DataType::kString:
          EncodeValueImpl(XmlRpcValue(cell.AsStringStrict()), none, out);
          break;
      }
    }
  }
}

void EncodeValueImpl(const XmlRpcValue& value, EncodeCtx& ctx,
                     std::string* out) {
  if (value.is_empty()) {
    out->push_back(static_cast<char>(kTagNil));
    return;
  }
  if (value.is_int()) {
    out->push_back(static_cast<char>(kTagInt));
    AppendVarint(ZigzagEncode(value.AsInt().value()), out);
    return;
  }
  if (value.is_double()) {
    out->push_back(static_cast<char>(kTagDouble));
    AppendDoubleBits(value.AsDouble().value(), out);
    return;
  }
  if (value.is_bool()) {
    out->push_back(
        static_cast<char>(value.AsBool().value() ? kTagTrue : kTagFalse));
    return;
  }
  if (value.is_string()) {
    const std::string s = value.AsString().value();
    out->push_back(static_cast<char>(kTagString));
    AppendVarint(s.size(), out);
    out->append(s);
    return;
  }
  if (value.is_array()) {
    const XmlRpcArray& items = *value.AsArray().value();
    out->push_back(static_cast<char>(kTagArray));
    AppendVarint(items.size(), out);
    for (const XmlRpcValue& item : items) EncodeValueImpl(item, ctx, out);
    return;
  }
  if (value.is_struct()) {
    const XmlRpcStruct& record = *value.AsStruct().value();
    out->push_back(static_cast<char>(kTagStruct));
    AppendVarint(record.size(), out);
    for (const auto& [key, member] : record) {
      AppendVarint(key.size(), out);
      out->append(key);
      EncodeValueImpl(member, ctx, out);
    }
    return;
  }
  const storage::ResultSet* rs = value.result_set();
  if (rs == ctx.stream_target && rs != nullptr) {
    ctx.stream_target = nullptr;  // One stub per stream; duplicates encode whole.
    out->push_back(static_cast<char>(kTagStreamStub));
    AppendSchema(*rs, out);
    return;
  }
  EncodeResultSetTlv(*rs, out);
}

Result<XmlRpcValue> DecodeValueImpl(std::string_view in, size_t* offset,
                                    const DecodeCtx& ctx);

Result<XmlRpcValue> DecodeResultSetTlv(std::string_view in, size_t* offset) {
  auto rs = std::make_shared<storage::ResultSet>();
  GRIDDB_ASSIGN_OR_RETURN(rs->columns, ReadSchema(in, offset));
  if (*offset >= in.size()) return Corruption("truncated result-set layout");
  uint8_t layout = static_cast<uint8_t>(in[(*offset)++]);
  if (layout == 0) {
    GRIDDB_RETURN_IF_ERROR(
        DecodeRowsColumnar(in, offset, rs->columns.size(), &rs->rows));
    return XmlRpcValue(std::move(rs));
  }
  if (layout != 1) return Corruption("unknown result-set layout");
  GRIDDB_ASSIGN_OR_RETURN(uint64_t nrows, ReadVarint(in, offset));
  GRIDDB_RETURN_IF_ERROR(CheckCount(nrows, in.size() - *offset + 1));
  rs->rows.reserve(nrows);
  DecodeCtx none;
  for (uint64_t r = 0; r < nrows; ++r) {
    GRIDDB_ASSIGN_OR_RETURN(uint64_t ncells, ReadVarint(in, offset));
    GRIDDB_RETURN_IF_ERROR(CheckCount(ncells, in.size() - *offset + 1));
    storage::Row row;
    row.reserve(ncells);
    for (uint64_t c = 0; c < ncells; ++c) {
      GRIDDB_ASSIGN_OR_RETURN(XmlRpcValue cell, DecodeValueImpl(in, offset, none));
      if (cell.is_empty()) {
        row.push_back(Value::Null());
      } else if (cell.is_int()) {
        row.push_back(Value(cell.AsInt().value()));
      } else if (cell.is_double()) {
        row.push_back(Value(cell.AsDouble().value()));
      } else if (cell.is_bool()) {
        row.push_back(Value(cell.AsBool().value()));
      } else if (cell.is_string()) {
        row.push_back(Value(cell.AsString().value()));
      } else {
        return Corruption("non-scalar cell in row-wise result block");
      }
    }
    rs->rows.push_back(std::move(row));
  }
  return XmlRpcValue(std::move(rs));
}

Result<XmlRpcValue> DecodeValueImpl(std::string_view in, size_t* offset,
                                    const DecodeCtx& ctx) {
  if (*offset >= in.size()) return Corruption("truncated binary value");
  uint8_t tag = static_cast<uint8_t>(in[(*offset)++]);
  switch (tag) {
    case kTagNil:
      return XmlRpcValue();
    case kTagInt: {
      GRIDDB_ASSIGN_OR_RETURN(uint64_t raw, ReadVarint(in, offset));
      return XmlRpcValue(ZigzagDecode(raw));
    }
    case kTagDouble: {
      GRIDDB_ASSIGN_OR_RETURN(double d, ReadDoubleBits(in, offset));
      return XmlRpcValue(d);
    }
    case kTagTrue:
      return XmlRpcValue(true);
    case kTagFalse:
      return XmlRpcValue(false);
    case kTagString: {
      GRIDDB_ASSIGN_OR_RETURN(uint64_t len, ReadVarint(in, offset));
      GRIDDB_RETURN_IF_ERROR(CheckCount(len, in.size() - *offset));
      GRIDDB_ASSIGN_OR_RETURN(std::string_view s, ReadBytes(in, offset, len));
      return XmlRpcValue(std::string(s));
    }
    case kTagArray: {
      GRIDDB_ASSIGN_OR_RETURN(uint64_t count, ReadVarint(in, offset));
      GRIDDB_RETURN_IF_ERROR(CheckCount(count, in.size() - *offset + 1));
      XmlRpcArray items;
      items.reserve(count);
      for (uint64_t i = 0; i < count; ++i) {
        GRIDDB_ASSIGN_OR_RETURN(XmlRpcValue item,
                                DecodeValueImpl(in, offset, ctx));
        items.push_back(std::move(item));
      }
      return XmlRpcValue(std::move(items));
    }
    case kTagStruct: {
      GRIDDB_ASSIGN_OR_RETURN(uint64_t count, ReadVarint(in, offset));
      GRIDDB_RETURN_IF_ERROR(CheckCount(count, in.size() - *offset + 1));
      XmlRpcStruct record;
      for (uint64_t i = 0; i < count; ++i) {
        GRIDDB_ASSIGN_OR_RETURN(uint64_t len, ReadVarint(in, offset));
        GRIDDB_RETURN_IF_ERROR(CheckCount(len, in.size() - *offset));
        GRIDDB_ASSIGN_OR_RETURN(std::string_view key,
                                ReadBytes(in, offset, len));
        GRIDDB_ASSIGN_OR_RETURN(XmlRpcValue member,
                                DecodeValueImpl(in, offset, ctx));
        record[std::string(key)] = std::move(member);
      }
      return XmlRpcValue(std::move(record));
    }
    case kTagResultSet:
      return DecodeResultSetTlv(in, offset);
    case kTagStreamStub: {
      if (ctx.stream_slot == nullptr || *ctx.stream_slot != nullptr) {
        return Corruption("unexpected stream stub in binary value");
      }
      auto rs = std::make_shared<storage::ResultSet>();
      GRIDDB_ASSIGN_OR_RETURN(rs->columns, ReadSchema(in, offset));
      *ctx.stream_slot = rs;
      return XmlRpcValue(std::move(rs));
    }
    default:
      return Corruption("unknown binary value tag " + std::to_string(tag));
  }
}

}  // namespace

// ---- capabilities ----

std::string CapsToString(uint32_t caps) {
  std::string out;
  auto add = [&](const char* word) {
    if (!out.empty()) out += ',';
    out += word;
  };
  if (caps & kCapBinary) add("binary");
  if (caps & kCapLz4) add("lz4");
  if (caps & kCapStream) add("stream");
  return out;
}

uint32_t CapsFromString(std::string_view text) {
  // Runs on every request the server decodes (the <wireAccept> header),
  // so it scans in place instead of splitting into allocated words.
  uint32_t caps = 0;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find(',', pos);
    if (end == std::string_view::npos) end = text.size();
    std::string_view word = text.substr(pos, end - pos);
    while (!word.empty() &&
           std::isspace(static_cast<unsigned char>(word.front()))) {
      word.remove_prefix(1);
    }
    while (!word.empty() &&
           std::isspace(static_cast<unsigned char>(word.back()))) {
      word.remove_suffix(1);
    }
    if (word == "binary") caps |= kCapBinary;
    if (word == "lz4") caps |= kCapLz4;
    if (word == "stream") caps |= kCapStream;
    pos = end + 1;
  }
  // Compression and streaming only mean anything on binary frames.
  if (!(caps & kCapBinary)) return 0;
  return caps;
}

uint32_t EnvWirePreference() {
  const char* env = std::getenv("GRIDDB_WIRE");
  if (env != nullptr && std::string_view(env) == "binary") return kAllCaps;
  return 0;
}

// ---- frames ----

bool LooksBinary(std::string_view raw) {
  return raw.size() >= 4 && std::memcmp(raw.data(), kFrameMagic, 4) == 0;
}

void AppendFrame(FrameKind kind, uint32_t seq, std::string_view payload,
                 bool allow_compress, std::string* out) {
  std::string packed;
  std::string_view body = payload;
  bool compressed = false;
  if (allow_compress && payload.size() >= kCompressMinBytes) {
    BlockCompress(payload, &packed);
    if (packed.size() < payload.size()) {
      body = packed;
      compressed = true;
      uint64_t raw_total =
          g_compress_raw.fetch_add(payload.size()) + payload.size();
      uint64_t wire_total =
          g_compress_wire.fetch_add(packed.size()) + packed.size();
      CompressionRatio().Set(static_cast<double>(raw_total) /
                             static_cast<double>(wire_total));
    }
  }
  size_t base = out->size();
  out->reserve(base + kFrameHeaderSize + body.size());
  out->append(kFrameMagic, 4);
  out->push_back(static_cast<char>(kind));
  out->push_back(static_cast<char>(compressed ? 1 : 0));
  AppendLE32(seq, out);
  AppendLE32(static_cast<uint32_t>(payload.size()), out);
  AppendLE32(static_cast<uint32_t>(body.size()), out);
  uint64_t digest = Fnv1a(out->data() + base + 4, 14, kFnvSeed);
  digest = Fnv1a(body.data(), body.size(), digest);
  AppendLE64(digest, out);
  out->append(body);
}

Result<std::vector<std::pair<size_t, size_t>>> SplitFrames(
    std::string_view raw) {
  std::vector<std::pair<size_t, size_t>> frames;
  size_t offset = 0;
  while (offset < raw.size()) {
    if (raw.size() - offset < kFrameHeaderSize ||
        std::memcmp(raw.data() + offset, kFrameMagic, 4) != 0) {
      return Corruption("malformed binary frame boundary");
    }
    size_t wire_len = ReadLE32(raw.data() + offset + 14);
    size_t frame_len = kFrameHeaderSize + wire_len;
    if (wire_len > raw.size() - offset - kFrameHeaderSize) {
      return Corruption("binary frame length exceeds the response body");
    }
    frames.emplace_back(offset, frame_len);
    offset += frame_len;
  }
  if (frames.empty()) return Corruption("empty binary response body");
  return frames;
}

Result<Frame> ParseFrame(std::string_view raw) {
  auto damaged = [](const char* what) {
    CorruptFrames().Add(1);
    return Corruption(std::string("binary frame corrupted in transit (") +
                      what + ")");
  };
  if (raw.size() < kFrameHeaderSize ||
      std::memcmp(raw.data(), kFrameMagic, 4) != 0) {
    return damaged("bad magic");
  }
  uint8_t kind = static_cast<uint8_t>(raw[4]);
  uint8_t flags = static_cast<uint8_t>(raw[5]);
  if (kind > static_cast<uint8_t>(FrameKind::kStreamTrailer) || flags > 1) {
    return damaged("bad header");
  }
  size_t raw_len = ReadLE32(raw.data() + 10);
  size_t wire_len = ReadLE32(raw.data() + 14);
  if (wire_len != raw.size() - kFrameHeaderSize) return damaged("bad length");
  uint64_t digest = Fnv1a(raw.data() + 4, 14, kFnvSeed);
  digest = Fnv1a(raw.data() + kFrameHeaderSize, wire_len, digest);
  if (digest != ReadLE64(raw.data() + 18)) return damaged("digest mismatch");

  Frame frame;
  frame.kind = static_cast<FrameKind>(kind);
  frame.seq = ReadLE32(raw.data() + 6);
  frame.compressed = flags & 1;
  std::string_view body = raw.substr(kFrameHeaderSize);
  if (frame.compressed) {
    auto unpacked = BlockDecompress(body, raw_len);
    // The digest already vouched for the bytes; a decompression failure
    // here means a framing bug, but report it as corruption either way.
    if (!unpacked.ok()) return damaged("bad compressed block");
    frame.payload = std::move(*unpacked);
  } else {
    if (raw_len != wire_len) return damaged("length mismatch");
    frame.payload.assign(body);
  }
  return frame;
}

// ---- block compression ----

void BlockCompress(std::string_view in, std::string* out) {
  out->clear();
  const size_t n = in.size();
  const auto* src = reinterpret_cast<const uint8_t*>(in.data());
  auto emit_len = [&](size_t v) {
    while (v >= 255) {
      out->push_back(static_cast<char>(255));
      v -= 255;
    }
    out->push_back(static_cast<char>(v));
  };
  auto emit = [&](size_t lit_start, size_t lit_len, size_t match_len,
                  size_t offset) {
    size_t mcode = match_len >= 4 ? match_len - 4 : 0;
    uint8_t token =
        static_cast<uint8_t>(std::min<size_t>(lit_len, 15) << 4 |
                             std::min<size_t>(mcode, 15));
    out->push_back(static_cast<char>(token));
    if (lit_len >= 15) emit_len(lit_len - 15);
    out->append(in.data() + lit_start, lit_len);
    if (match_len >= 4) {
      out->push_back(static_cast<char>(offset & 0xff));
      out->push_back(static_cast<char>(offset >> 8 & 0xff));
      if (mcode >= 15) emit_len(mcode - 15);
    }
  };
  if (n < 16) {
    if (n > 0) emit(0, n, 0, 0);
    return;
  }
  std::vector<int32_t> table(1u << 13, -1);
  auto hash4 = [&](size_t p) {
    uint32_t v;
    std::memcpy(&v, src + p, 4);
    return (v * 2654435761u) >> 19;
  };
  size_t anchor = 0;
  size_t i = 0;
  const size_t limit = n - 4;
  while (i <= limit) {
    uint32_t h = hash4(i);
    int32_t cand = table[h];
    table[h] = static_cast<int32_t>(i);
    if (cand >= 0 && i - static_cast<size_t>(cand) <= 65535 &&
        std::memcmp(src + cand, src + i, 4) == 0) {
      size_t match_len = 4;
      while (i + match_len < n &&
             src[static_cast<size_t>(cand) + match_len] == src[i + match_len]) {
        ++match_len;
      }
      emit(anchor, i - anchor, match_len, i - static_cast<size_t>(cand));
      i += match_len;
      anchor = i;
    } else {
      ++i;
    }
  }
  if (n > anchor) emit(anchor, n - anchor, 0, 0);
}

Result<std::string> BlockDecompress(std::string_view in, size_t raw_len) {
  if (raw_len > kMaxDecodeCount) {
    return Corruption("implausible decompressed length");
  }
  std::string out;
  out.reserve(raw_len);
  size_t pos = 0;
  auto extend = [&](size_t nibble) -> Result<size_t> {
    size_t v = nibble;
    if (nibble == 15) {
      uint8_t b;
      do {
        if (pos >= in.size()) return Corruption("truncated run length");
        b = static_cast<uint8_t>(in[pos++]);
        v += b;
      } while (b == 255);
    }
    return v;
  };
  while (out.size() < raw_len) {
    if (pos >= in.size()) return Corruption("truncated compressed block");
    uint8_t token = static_cast<uint8_t>(in[pos++]);
    GRIDDB_ASSIGN_OR_RETURN(size_t lit_len, extend(token >> 4));
    if (lit_len > in.size() - pos || out.size() + lit_len > raw_len) {
      return Corruption("literal run out of range");
    }
    out.append(in.data() + pos, lit_len);
    pos += lit_len;
    if (out.size() >= raw_len) break;
    if (pos + 2 > in.size()) return Corruption("truncated match offset");
    size_t offset = static_cast<uint8_t>(in[pos]) |
                    static_cast<size_t>(static_cast<uint8_t>(in[pos + 1])) << 8;
    pos += 2;
    if (offset == 0 || offset > out.size()) {
      return Corruption("match offset out of range");
    }
    GRIDDB_ASSIGN_OR_RETURN(size_t mcode, extend(token & 15));
    size_t match_len = mcode + 4;
    if (out.size() + match_len > raw_len) {
      return Corruption("match run out of range");
    }
    size_t from = out.size() - offset;
    for (size_t k = 0; k < match_len; ++k) out.push_back(out[from + k]);
  }
  if (pos != in.size()) {
    return Corruption("compressed block has trailing bytes");
  }
  return out;
}

// ---- columnar row blocks ----

Status EncodeRowsColumnar(const storage::ResultSet& rs, size_t start,
                          size_t len, std::string* out) {
  for (size_t r = start; r < start + len && r < rs.rows.size(); ++r) {
    if (rs.rows[r].size() != rs.columns.size()) {
      return FailedPrecondition("ragged rows cannot use the columnar layout");
    }
  }
  engine::RowBatch batch;
  batch.cols.resize(rs.columns.size());
  GRIDDB_RETURN_IF_ERROR(engine::AppendRowsToBatch(rs.rows, start, len, batch));
  AppendVarint(len, out);
  for (const engine::ColumnVector& col : batch.cols) {
    const size_t n = col.size();
    if (col.rep() == engine::ColumnVector::Rep::kNone) {
      out->push_back(static_cast<char>(kColAllNull));
      continue;
    }
    uint8_t rep = kColMixed;
    switch (col.rep()) {
      case engine::ColumnVector::Rep::kInt64: rep = kColInt64; break;
      case engine::ColumnVector::Rep::kDouble: rep = kColDouble; break;
      case engine::ColumnVector::Rep::kBool: rep = kColBool; break;
      case engine::ColumnVector::Rep::kString: rep = kColString; break;
      default: rep = kColMixed; break;
    }
    out->push_back(static_cast<char>(rep));
    AppendVarint(col.null_count(), out);
    if (col.null_count() > 0) {
      // Packed bit-per-row null map, little-endian within each byte.
      size_t bytes = (n + 7) / 8;
      size_t base = out->size();
      out->append(bytes, '\0');
      for (size_t r = 0; r < n; ++r) {
        if (col.IsNull(r)) {
          (*out)[base + (r >> 3)] |= static_cast<char>(1u << (r & 7));
        }
      }
    }
    switch (rep) {
      case kColInt64: {
        const int64_t* vals = col.ints();
        for (size_t r = 0; r < n; ++r) {
          if (!col.IsNull(r)) AppendVarint(ZigzagEncode(vals[r]), out);
        }
        break;
      }
      case kColDouble: {
        const double* vals = col.doubles();
        for (size_t r = 0; r < n; ++r) {
          if (!col.IsNull(r)) AppendDoubleBits(vals[r], out);
        }
        break;
      }
      case kColBool: {
        const uint8_t* vals = col.bools();
        uint8_t acc = 0;
        int bit = 0;
        for (size_t r = 0; r < n; ++r) {
          if (col.IsNull(r)) continue;
          if (vals[r]) acc |= static_cast<uint8_t>(1u << bit);
          if (++bit == 8) {
            out->push_back(static_cast<char>(acc));
            acc = 0;
            bit = 0;
          }
        }
        if (bit > 0) out->push_back(static_cast<char>(acc));
        break;
      }
      case kColString: {
        const std::string* vals = col.strings();
        for (size_t r = 0; r < n; ++r) {
          if (col.IsNull(r)) continue;
          AppendVarint(vals[r].size(), out);
          out->append(vals[r]);
        }
        break;
      }
      default: {  // kColMixed: per-cell tagged scalars
        const Value* vals = col.values();
        for (size_t r = 0; r < n; ++r) {
          if (col.IsNull(r)) continue;
          const Value& v = vals[r];
          switch (v.type()) {
            case DataType::kInt64:
              out->push_back(static_cast<char>(kColInt64));
              AppendVarint(ZigzagEncode(v.AsInt64Strict()), out);
              break;
            case DataType::kDouble:
              out->push_back(static_cast<char>(kColDouble));
              AppendDoubleBits(v.AsDoubleStrict(), out);
              break;
            case DataType::kBool:
              out->push_back(static_cast<char>(kColBool));
              out->push_back(v.AsBoolStrict() ? 1 : 0);
              break;
            case DataType::kString: {
              const std::string& s = v.AsStringStrict();
              out->push_back(static_cast<char>(kColString));
              AppendVarint(s.size(), out);
              out->append(s);
              break;
            }
            case DataType::kNull:
              // Unreachable: nulls are excluded by IsNull above; keep the
              // stream decodable anyway.
              out->push_back(static_cast<char>(kColAllNull));
              break;
          }
        }
        break;
      }
    }
  }
  return Status::Ok();
}

Status DecodeRowsColumnar(std::string_view in, size_t* offset, size_t num_cols,
                          std::vector<storage::Row>* out) {
  GRIDDB_ASSIGN_OR_RETURN(uint64_t nrows, ReadVarint(in, offset));
  GRIDDB_RETURN_IF_ERROR(CheckCount(nrows, kMaxDecodeCount));
  if (nrows > 0 && num_cols == 0) {
    return Corruption("columnar block with rows but no columns");
  }
  engine::RowBatch batch;
  batch.cols.resize(num_cols);
  batch.rows = nrows;
  const size_t n = nrows;
  // All-null columns occupy one byte regardless of n, so their O(n)
  // expansion is deferred until some other column has anchored n to the
  // payload size (its bitmap or values must physically fit in the
  // remaining bytes). A block where every column is all-null has no
  // such anchor and is held to kMaxAllNullOnlyCells instead.
  std::vector<size_t> all_null_cols;
  bool rows_byte_anchored = false;
  for (size_t c = 0; c < num_cols; ++c) {
    engine::ColumnVector& col = batch.cols[c];
    if (*offset >= in.size()) return Corruption("truncated column block");
    uint8_t rep = static_cast<uint8_t>(in[(*offset)++]);
    if (rep == kColAllNull) {
      all_null_cols.push_back(c);
      continue;
    }
    if (rep > kColMixed) return Corruption("unknown column representation");
    GRIDDB_ASSIGN_OR_RETURN(uint64_t null_count, ReadVarint(in, offset));
    if (null_count > n) return Corruption("null count exceeds row count");
    std::string_view bitmap;
    if (null_count > 0) {
      GRIDDB_ASSIGN_OR_RETURN(bitmap, ReadBytes(in, offset, (n + 7) / 8));
    }
    // Before any per-row work: the remaining payload must at least hold
    // this column's minimal footprint (one bit per present bool, one
    // byte per present value otherwise), so a tiny frame declaring a
    // huge row count fails in O(1) instead of driving n appends.
    const size_t present = n - static_cast<size_t>(null_count);
    const size_t min_bytes = rep == kColBool ? (present + 7) / 8 : present;
    if (in.size() - *offset < min_bytes) {
      return Corruption("column block shorter than its row count implies");
    }
    col.Reserve(n);
    rows_byte_anchored = true;
    auto is_null = [&](size_t r) {
      return null_count > 0 &&
             (static_cast<uint8_t>(bitmap[r >> 3]) >> (r & 7) & 1);
    };
    switch (rep) {
      case kColInt64:
        for (size_t r = 0; r < n; ++r) {
          if (is_null(r)) {
            col.AppendNull();
          } else {
            GRIDDB_ASSIGN_OR_RETURN(uint64_t raw, ReadVarint(in, offset));
            col.AppendInt64(ZigzagDecode(raw));
          }
        }
        break;
      case kColDouble:
        for (size_t r = 0; r < n; ++r) {
          if (is_null(r)) {
            col.AppendNull();
          } else {
            GRIDDB_ASSIGN_OR_RETURN(double d, ReadDoubleBits(in, offset));
            col.AppendDouble(d);
          }
        }
        break;
      case kColBool: {
        size_t present = n - static_cast<size_t>(null_count);
        GRIDDB_ASSIGN_OR_RETURN(std::string_view bits,
                                ReadBytes(in, offset, (present + 7) / 8));
        size_t k = 0;
        for (size_t r = 0; r < n; ++r) {
          if (is_null(r)) {
            col.AppendNull();
          } else {
            col.AppendBool(static_cast<uint8_t>(bits[k >> 3]) >> (k & 7) & 1);
            ++k;
          }
        }
        break;
      }
      case kColString:
        for (size_t r = 0; r < n; ++r) {
          if (is_null(r)) {
            col.AppendNull();
          } else {
            GRIDDB_ASSIGN_OR_RETURN(uint64_t len, ReadVarint(in, offset));
            GRIDDB_RETURN_IF_ERROR(CheckCount(len, in.size() - *offset));
            GRIDDB_ASSIGN_OR_RETURN(std::string_view s,
                                    ReadBytes(in, offset, len));
            col.AppendString(std::string(s));
          }
        }
        break;
      default:  // kColMixed
        for (size_t r = 0; r < n; ++r) {
          if (is_null(r)) {
            col.AppendNull();
            continue;
          }
          if (*offset >= in.size()) return Corruption("truncated mixed cell");
          uint8_t cell_tag = static_cast<uint8_t>(in[(*offset)++]);
          switch (cell_tag) {
            case kColInt64: {
              GRIDDB_ASSIGN_OR_RETURN(uint64_t raw, ReadVarint(in, offset));
              col.Append(Value(ZigzagDecode(raw)));
              break;
            }
            case kColDouble: {
              GRIDDB_ASSIGN_OR_RETURN(double d, ReadDoubleBits(in, offset));
              col.Append(Value(d));
              break;
            }
            case kColBool: {
              if (*offset >= in.size()) {
                return Corruption("truncated mixed bool");
              }
              col.Append(Value(in[(*offset)++] != 0));
              break;
            }
            case kColString: {
              GRIDDB_ASSIGN_OR_RETURN(uint64_t len, ReadVarint(in, offset));
              GRIDDB_RETURN_IF_ERROR(CheckCount(len, in.size() - *offset));
              GRIDDB_ASSIGN_OR_RETURN(std::string_view s,
                                      ReadBytes(in, offset, len));
              col.Append(Value(std::string(s)));
              break;
            }
            case kColAllNull:
              col.Append(Value::Null());
              break;
            default:
              return Corruption("unknown mixed cell tag");
          }
        }
        break;
    }
  }
  if (!all_null_cols.empty()) {
    if (!rows_byte_anchored &&
        nrows * static_cast<uint64_t>(num_cols) > kMaxAllNullOnlyCells) {
      return Corruption("implausible all-null columnar block");
    }
    for (size_t c : all_null_cols) {
      engine::ColumnVector& col = batch.cols[c];
      col.Reserve(n);
      for (size_t r = 0; r < n; ++r) col.AppendNull();
    }
  }
  engine::MaterializeRows(batch, *out);
  return Status::Ok();
}

// ---- value codec (public wrappers) ----

void EncodeValue(const XmlRpcValue& value, std::string* out) {
  EncodeCtx ctx;
  EncodeValueImpl(value, ctx, out);
}

Result<XmlRpcValue> DecodeValue(std::string_view in, size_t* offset) {
  return DecodeValueImpl(in, offset, DecodeCtx{});
}

// ---- response codec ----

std::string EncodeBinaryResponse(const XmlRpcValue& value, uint32_t caps,
                                 size_t chunk_rows, size_t xml_size_hint) {
  const bool compress = (caps & kCapLz4) != 0;
  if (chunk_rows == 0) chunk_rows = 1024;

  // Pick the streaming candidate: the largest result set embedded either
  // as the response itself or as a direct struct member, big enough to
  // span more than one chunk. Ragged sets (rows disagreeing with the
  // schema) never stream — chunk decode needs the column count.
  const storage::ResultSet* target = nullptr;
  if (caps & kCapStream) {
    auto consider = [&](const XmlRpcValue& v) {
      const storage::ResultSet* rs = v.result_set();
      if (rs == nullptr || rs->rows.size() <= chunk_rows) return;
      if (!RowsAreRectangular(*rs)) return;
      if (target == nullptr || rs->rows.size() > target->rows.size()) {
        target = rs;
      }
    };
    consider(value);
    if (value.is_struct()) {
      for (const auto& [key, member] : *value.AsStruct().value()) {
        (void)key;
        consider(member);
      }
    }
  }

  std::string out;
  if (target == nullptr) {
    std::string payload;
    EncodeCtx plain;
    EncodeValueImpl(value, plain, &payload);
    AppendFrame(FrameKind::kWhole, 0, payload, compress, &out);
  } else {
    EncodeCtx ctx;
    ctx.stream_target = target;
    std::string header;
    EncodeValueImpl(value, ctx, &header);
    AppendFrame(FrameKind::kStreamHeader, 0, header, compress, &out);
    uint32_t seq = 1;
    const size_t total = target->rows.size();
    for (size_t start = 0; start < total; start += chunk_rows) {
      size_t len = std::min(chunk_rows, total - start);
      std::string block;
      Status ok = EncodeRowsColumnar(*target, start, len, &block);
      (void)ok;  // rectangular by the eligibility check; cannot fail
      AppendFrame(FrameKind::kStreamChunk, seq++, block, compress, &out);
      ChunksStreamed().Add(1);
    }
    std::string trailer;
    AppendVarint(total, &trailer);
    AppendVarint(seq - 1, &trailer);
    AppendFrame(FrameKind::kStreamTrailer, seq, trailer, compress, &out);
  }
  BinaryResponses().Add(1);
  if (xml_size_hint > out.size()) {
    BytesSaved().Add(xml_size_hint - out.size());
  }
  return out;
}

Status ResponseDecoder::Consume(Frame frame, storage::ResultSet* chunk,
                                bool* is_chunk) {
  *is_chunk = false;
  if (done_) return Corruption("frame after end of binary response");
  if (frame.seq != next_seq_) {
    return Corruption("binary frame out of sequence");
  }
  ++next_seq_;
  size_t offset = 0;
  switch (frame.kind) {
    case FrameKind::kWhole: {
      if (have_envelope_) return Corruption("second envelope frame");
      GRIDDB_ASSIGN_OR_RETURN(
          envelope_, DecodeValueImpl(frame.payload, &offset, DecodeCtx{}));
      if (offset != frame.payload.size()) {
        return Corruption("trailing bytes after binary response value");
      }
      have_envelope_ = true;
      done_ = true;
      return Status::Ok();
    }
    case FrameKind::kStreamHeader: {
      if (have_envelope_) return Corruption("second envelope frame");
      DecodeCtx ctx;
      ctx.stream_slot = &stream_slot_;
      GRIDDB_ASSIGN_OR_RETURN(envelope_,
                              DecodeValueImpl(frame.payload, &offset, ctx));
      if (offset != frame.payload.size()) {
        return Corruption("trailing bytes after stream header");
      }
      if (stream_slot_ == nullptr) {
        return Corruption("stream header without a streamed member");
      }
      columns_ = stream_slot_->columns;
      have_envelope_ = true;
      return Status::Ok();
    }
    case FrameKind::kStreamChunk: {
      if (!have_envelope_ || stream_slot_ == nullptr) {
        return Corruption("stream chunk before header");
      }
      chunk->columns = columns_;
      chunk->rows.clear();
      GRIDDB_RETURN_IF_ERROR(DecodeRowsColumnar(frame.payload, &offset,
                                                columns_.size(), &chunk->rows));
      if (offset != frame.payload.size()) {
        return Corruption("trailing bytes after stream chunk");
      }
      rows_seen_ += chunk->rows.size();
      *is_chunk = true;
      return Status::Ok();
    }
    case FrameKind::kStreamTrailer: {
      if (!have_envelope_ || stream_slot_ == nullptr) {
        return Corruption("stream trailer before header");
      }
      GRIDDB_ASSIGN_OR_RETURN(uint64_t total_rows,
                              ReadVarint(frame.payload, &offset));
      GRIDDB_ASSIGN_OR_RETURN(uint64_t total_chunks,
                              ReadVarint(frame.payload, &offset));
      if (offset != frame.payload.size()) {
        return Corruption("trailing bytes after stream trailer");
      }
      if (total_rows != rows_seen_ || total_chunks + 2 != next_seq_) {
        return Corruption("stream trailer disagrees with delivered chunks");
      }
      done_ = true;
      return Status::Ok();
    }
  }
  return Corruption("unknown frame kind");
}

Result<XmlRpcValue> ResponseDecoder::Finish(bool attach_rows,
                                            std::vector<storage::Row> rows) {
  if (!done_ || !have_envelope_) {
    return Corruption("binary response ended before its trailer");
  }
  if (stream_slot_ != nullptr && attach_rows) {
    stream_slot_->rows = std::move(rows);
  }
  return envelope_;
}

}  // namespace griddb::rpc::wire
