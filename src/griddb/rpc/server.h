// Clarens-style RPC endpoint: transport registry, server, call context.
//
// Servers bind to URLs ("clarens://cern-tier1:8080/clarens") on a shared
// Transport; clients resolve a URL and exchange encoded XML-RPC messages.
// The Transport charges the simulated network for every message by its
// actual encoded byte size, and the server charges per-operation service
// costs into the call's Cost accumulator. Authentication follows the
// Clarens session model: a login handshake issues a session token that
// subsequent calls carry.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>

#include "griddb/net/network.h"
#include "griddb/rpc/xmlrpc_value.h"
#include "griddb/util/status.h"

namespace griddb::rpc {

/// Parsed service URL: scheme://host[:port]/path
struct Url {
  std::string scheme;
  std::string host;
  int port = 8080;
  std::string path;

  std::string ToString() const;
  static Result<Url> Parse(std::string_view text);
};

class RpcServer;

/// Shared endpoint registry over the simulated network.
class Transport {
 public:
  Transport(net::Network* network, net::ServiceCosts costs)
      : network_(network), costs_(costs) {}

  Status Bind(const std::string& url, RpcServer* server);
  void Unbind(const std::string& url);
  Result<RpcServer*> Resolve(const std::string& url) const;

  net::Network* network() const { return network_; }
  const net::ServiceCosts& costs() const { return costs_; }

 private:
  net::Network* network_;
  net::ServiceCosts costs_;
  mutable std::shared_mutex mu_;
  std::map<std::string, RpcServer*> endpoints_;
};

/// Per-call state threaded through method handlers.
struct CallContext {
  std::string client_host;
  std::string server_host;
  std::string authenticated_user;  ///< Empty for anonymous calls.
  net::Cost cost;                  ///< Server-side simulated cost.
  Transport* transport = nullptr;  ///< For handlers that call out (RLS,
                                   ///< remote JClarens forwarding).
  int forward_depth = 0;           ///< Guards against forwarding loops.
};

using MethodHandler =
    std::function<Result<XmlRpcValue>(const XmlRpcArray&, CallContext&)>;

class RpcServer {
 public:
  /// Binds the server to `url` on `transport`. The URL's host must exist
  /// in the transport's network.
  RpcServer(std::string url, Transport* transport);
  ~RpcServer();

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  const std::string& url() const { return url_; }
  const std::string& host() const { return host_; }
  Transport* transport() const { return transport_; }

  Status RegisterMethod(const std::string& name, MethodHandler handler);
  std::vector<std::string> MethodNames() const;

  /// Adds a credential; once any credential exists, non-login calls
  /// require a valid session token.
  void AddUser(const std::string& user, const std::string& password);
  bool auth_required() const;

  /// Validates credentials and issues a session token ("system.login" is
  /// also exposed as an RPC method).
  Result<std::string> Login(const std::string& user,
                            const std::string& password);

  /// Server side of one exchange: decode, authenticate, dispatch, encode.
  /// Service costs (parse/dispatch + handler-added) accumulate into `cost`.
  std::string HandleRaw(std::string_view raw_request,
                        const std::string& client_host, net::Cost* cost,
                        int forward_depth = 0);

 private:
  std::string url_;
  std::string host_;
  Transport* transport_;
  mutable std::shared_mutex mu_;
  std::map<std::string, MethodHandler> methods_;
  std::map<std::string, std::string> users_;     // user -> password
  std::map<std::string, std::string> sessions_;  // token -> user
  int next_session_ = 1;
};

/// Client-side proxy. Connection setup (resolve + authenticate) happens
/// lazily on the first call and its cost is charged once, mirroring the
/// paper's "connecting and authenticating with several databases or
/// servers" penalty; later calls reuse the session. Thread-safe: parallel
/// sub-query fan-out may share one cached client per remote server.
class RpcClient {
 public:
  RpcClient(Transport* transport, std::string client_host,
            std::string server_url, std::string user = "",
            std::string password = "");

  /// Explicit connect (optional; Call connects on demand).
  Status Connect(net::Cost* cost);
  bool connected() const { return connected_; }

  /// Overrides the one-time connection-setup charge. The RLS client sets
  /// this to 0: Globus RLS is a lightweight connectionless catalog
  /// protocol, so only the per-lookup cost applies.
  void set_connect_cost_ms(double ms) { connect_cost_ms_ = ms; }

  /// One RPC. Network transfer both ways + server-side handler cost are
  /// added to `cost` (which may be null when the caller doesn't account).
  Result<XmlRpcValue> Call(const std::string& method, XmlRpcArray params,
                           net::Cost* cost, int forward_depth = 0);

  const std::string& server_url() const { return server_url_; }

 private:
  Transport* transport_;
  std::string client_host_;
  std::string server_url_;
  std::string user_;
  std::string password_;
  std::mutex connect_mu_;          ///< Serializes the connect handshake.
  bool connected_ = false;
  double connect_cost_ms_ = -1.0;  ///< <0 = use transport default.
  std::string session_token_;
};

}  // namespace griddb::rpc
