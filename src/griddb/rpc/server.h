// Clarens-style RPC endpoint: transport registry, server, call context.
//
// Servers bind to URLs ("clarens://cern-tier1:8080/clarens") on a shared
// Transport; clients resolve a URL and exchange encoded XML-RPC messages.
// The Transport charges the simulated network for every message by its
// actual encoded byte size, and the server charges per-operation service
// costs into the call's Cost accumulator. Authentication follows the
// Clarens session model: a login handshake issues a session token that
// subsequent calls carry.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>

#include "griddb/net/network.h"
#include "griddb/obs/trace.h"
#include "griddb/rpc/wire.h"
#include "griddb/rpc/xmlrpc_value.h"
#include "griddb/util/cancellation.h"
#include "griddb/util/rng.h"
#include "griddb/util/status.h"

namespace griddb::rpc {

/// True when a failed call may succeed if simply retried: the failure was
/// a transient transport or availability condition (kUnavailable,
/// kTimeout, kCorruption) or a shed-under-overload rejection
/// (kResourceExhausted, which carries a retry-after hint) rather than a
/// permanent error such as kNotFound (unknown host, missing method/table)
/// or kPermissionDenied. kDeadlineExceeded is deliberately NOT retryable:
/// the caller's budget is spent, retrying cannot help.
bool IsRetryable(StatusCode code);

/// Extracts the "retry_after_ms=<N>" hint an overloaded server embeds in
/// its kResourceExhausted fault message; 0 when absent/malformed. The
/// retry loop waits at least this long before the next attempt.
double RetryAfterHintMs(const std::string& message);

/// Retry behaviour of one RpcClient: bounded attempts with exponential
/// backoff + deterministic jitter, and a per-attempt deadline on the
/// virtual clock. Backoff and timeout waits are charged to the call's
/// Cost and advance the network clock, so retries interact correctly with
/// host down-windows.
struct RetryPolicy {
  int max_attempts = 1;             ///< 1 = never retry.
  double initial_backoff_ms = 50.0;
  double backoff_multiplier = 2.0;
  double max_backoff_ms = 1600.0;
  double jitter_fraction = 0.2;     ///< +/- fraction of the backoff, seeded.
  /// Virtual-clock budget for one attempt (transfer + server work +
  /// injected delays). A dropped message costs the full budget — the
  /// client waits it out before concluding kTimeout. <= 0 disables the
  /// deadline (the seed behaviour).
  double attempt_timeout_ms = 0;
  /// Virtual-clock budget for the whole call: attempts PLUS the backoff
  /// waits between them. Once spent, the loop stops retrying (returning
  /// the last failure) and backoff waits are clipped so the call never
  /// outlives the caller's total budget. <= 0 disables the overall
  /// deadline (the seed behaviour, where max_attempts * attempt_timeout
  /// bounded attempts but backoff could still stretch the call).
  double overall_timeout_ms = 0;
  uint64_t jitter_seed = 0x5eed;

  /// Seed behaviour: one attempt, no deadline.
  static RetryPolicy None() { return {}; }
  /// 4 attempts, 50 ms initial backoff doubling to 1.6 s, 1 s deadline.
  static RetryPolicy Default() {
    RetryPolicy policy;
    policy.max_attempts = 4;
    policy.attempt_timeout_ms = 1000.0;
    return policy;
  }
};

/// Per-call outcome counters (attempts includes the first try).
struct CallStats {
  int attempts = 0;
  int retries = 0;
  /// True when the call failed with a permanent (non-retryable) status:
  /// the retry loop stopped without burning backoff, e.g. on
  /// kPermissionDenied from a plan-time grant check.
  bool non_retryable = false;
  /// Wire accounting of the call (accumulated across attempts for the
  /// request; the response fields reflect the successful attempt).
  size_t request_bytes = 0;
  size_t response_bytes = 0;
  /// Simulated ms the response spent on the wire (for a streamed response
  /// this is the whole pipelined leg: transfers overlapped with chunk
  /// consumption).
  double response_transfer_ms = 0;
  /// Chunk frames delivered on the streamed path (0 = not streamed).
  int streamed_chunks = 0;
  /// Call-relative virtual ms at which the first streamed chunk had been
  /// transferred AND consumed; < 0 when the response did not stream.
  double first_chunk_ms = -1;
};

/// Parsed service URL: scheme://host[:port]/path
struct Url {
  std::string scheme;
  std::string host;
  int port = 8080;
  std::string path;

  std::string ToString() const;
  static Result<Url> Parse(std::string_view text);
};

class RpcServer;

/// Shared endpoint registry over the simulated network.
class Transport {
 public:
  Transport(net::Network* network, net::ServiceCosts costs)
      : network_(network), costs_(costs) {}

  Status Bind(const std::string& url, RpcServer* server);
  void Unbind(const std::string& url);
  Result<RpcServer*> Resolve(const std::string& url) const;

  net::Network* network() const { return network_; }
  const net::ServiceCosts& costs() const { return costs_; }

 private:
  net::Network* network_;
  net::ServiceCosts costs_;
  mutable std::shared_mutex mu_;
  std::map<std::string, RpcServer*> endpoints_;
};

/// Per-call state threaded through method handlers.
struct CallContext {
  std::string client_host;
  std::string server_host;
  std::string authenticated_user;  ///< Empty for anonymous calls.
  net::Cost cost;                  ///< Server-side simulated cost.
  Transport* transport = nullptr;  ///< For handlers that call out (RLS,
                                   ///< remote JClarens forwarding).
  int forward_depth = 0;           ///< Guards against forwarding loops.
  std::string forward_path;        ///< " -> "-separated server URLs already
                                   ///< visited (loop diagnostics).
  /// Caller's distributed-trace context (invalid when the request carried
  /// none). Handlers that trace open their server-side span under it and
  /// ship the resulting child spans back in the response.
  obs::SpanContext trace_parent;
  /// Remaining query budget the request carried (<deadlineMs> header);
  /// 0 = the caller set no deadline. Handlers that do real work derive a
  /// CancelToken from it so a forwarded query never outlives its caller.
  double deadline_budget_ms = 0;
  /// Tenant identity of the request; empty for the default anonymous
  /// tenant. On an authenticated client-facing hop this is derived from
  /// the session user's tenant binding (a <tenant> header that disagrees
  /// is rejected, so a client cannot impersonate another community); on
  /// server-to-server forwards (forward_depth > 0) and unauthenticated
  /// servers the raw <tenant> header is adopted. Handlers thread it into
  /// the QueryContext so grants and admission lanes follow the original
  /// requester across forwards.
  std::string tenant;
};

using MethodHandler =
    std::function<Result<XmlRpcValue>(const XmlRpcArray&, CallContext&)>;

class RpcServer {
 public:
  /// Binds the server to `url` on `transport`. The URL's host must exist
  /// in the transport's network.
  RpcServer(std::string url, Transport* transport);
  ~RpcServer();

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  const std::string& url() const { return url_; }
  const std::string& host() const { return host_; }
  Transport* transport() const { return transport_; }

  Status RegisterMethod(const std::string& name, MethodHandler handler);
  std::vector<std::string> MethodNames() const;

  /// Adds a credential; once any credential exists, non-login calls
  /// require a valid session token. `tenant` binds the login to a tenant
  /// community: requests on the user's sessions run as that tenant, and a
  /// <tenant> wire header naming anyone else is rejected (impersonation).
  /// Empty = the user name doubles as its tenant identity.
  void AddUser(const std::string& user, const std::string& password,
               const std::string& tenant = "");
  bool auth_required() const;

  /// Validates credentials and issues a session token ("system.login" is
  /// also exposed as an RPC method).
  Result<std::string> Login(const std::string& user,
                            const std::string& password);

  /// Server side of one exchange: decode, authenticate, dispatch, encode.
  /// Service costs (parse/dispatch + handler-added) accumulate into `cost`.
  std::string HandleRaw(std::string_view raw_request,
                        const std::string& client_host, net::Cost* cost,
                        int forward_depth = 0,
                        const std::string& forward_path = "");

  /// Wire capabilities this server advertises at connect time (setup-time
  /// knob; configure before serving). Defaults to everything this build
  /// supports; 0 simulates an old XML-only server for the fallback matrix.
  void set_wire_caps(uint32_t caps) { wire_caps_ = caps; }
  uint32_t wire_caps() const { return wire_caps_; }

  /// Rows per chunk frame on streamed binary responses (setup-time knob).
  void set_stream_chunk_rows(size_t rows) { stream_chunk_rows_ = rows; }
  size_t stream_chunk_rows() const { return stream_chunk_rows_; }

 private:
  std::string url_;
  std::string host_;
  Transport* transport_;
  mutable std::shared_mutex mu_;
  std::map<std::string, MethodHandler> methods_;
  std::map<std::string, std::string> users_;     // user -> password
  std::map<std::string, std::string> user_tenants_;  // user -> bound tenant
  std::map<std::string, std::string> sessions_;  // token -> user
  int next_session_ = 1;
  uint32_t wire_caps_ = wire::kAllCaps;
  size_t stream_chunk_rows_ = 1024;
};

/// Client-side proxy. Connection setup (resolve + authenticate) happens
/// lazily on the first call and its cost is charged once, mirroring the
/// paper's "connecting and authenticating with several databases or
/// servers" penalty; later calls reuse the session. Thread-safe: parallel
/// sub-query fan-out may share one cached client per remote server.
class RpcClient {
 public:
  RpcClient(Transport* transport, std::string client_host,
            std::string server_url, std::string user = "",
            std::string password = "");

  /// Explicit connect (optional; Call connects on demand).
  Status Connect(net::Cost* cost);
  bool connected() const { return connected_; }

  /// Overrides the one-time connection-setup charge. The RLS client sets
  /// this to 0: Globus RLS is a lightweight connectionless catalog
  /// protocol, so only the per-lookup cost applies.
  void set_connect_cost_ms(double ms) { connect_cost_ms_ = ms; }

  /// Retry behaviour for Call. Defaults to RetryPolicy::None(). Reseeds
  /// the jitter stream from the policy, so retry schedules replay
  /// deterministically.
  void set_retry_policy(const RetryPolicy& policy);
  const RetryPolicy& retry_policy() const { return retry_policy_; }

  /// Attaches a tracer: every Call opens an "rpc.call" span (parented to
  /// the calling thread's current span) and puts its context on the wire
  /// so the server continues the trace. Null (the default) disables both.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }
  obs::Tracer* tracer() const { return tracer_; }

  /// One RPC. Network transfer both ways + server-side handler cost are
  /// added to `cost` (which may be null when the caller doesn't account).
  /// Transient failures (see IsRetryable) are retried per the client's
  /// RetryPolicy; backoff waits are charged to `cost` and advance the
  /// network's virtual clock. `call_stats`, when given, receives the
  /// attempt/retry counts of this call.
  ///
  /// `cancel`, when given and active, bounds the call end to end: each
  /// attempt carries the remaining budget on the wire (<deadlineMs>), the
  /// per-attempt deadline is clipped to what is left, backoff never
  /// stretches past expiry, and a cancelled token fails the call
  /// immediately between attempts. Retries and failover re-attempts
  /// therefore spend the caller's budget rather than extending it.
  ///
  /// `tenant`, when non-empty, rides each attempt as the sparse <tenant>
  /// header (overriding set_tenant's default); empty falls back to the
  /// client default. Per-call so fan-out paths can share one cached
  /// client per remote server across tenants.
  /// `sink`, when given, consumes streamed chunk frames as they arrive
  /// (the coordinator's early merge); the streamed member of the returned
  /// envelope then carries only the column schema. Without a sink the
  /// client reassembles the full result transparently. A retried attempt
  /// calls sink->OnRestart() first.
  Result<XmlRpcValue> Call(const std::string& method, XmlRpcArray params,
                           net::Cost* cost, int forward_depth = 0,
                           const std::string& forward_path = "",
                           CallStats* call_stats = nullptr,
                           const CancelToken* cancel = nullptr,
                           const std::string& tenant = "",
                           wire::StreamSink* sink = nullptr);

  /// Default tenant identity stamped on every Call without an explicit
  /// per-call tenant. Empty (the default) sends no <tenant> header.
  void set_tenant(const std::string& tenant) { default_tenant_ = tenant; }
  const std::string& tenant() const { return default_tenant_; }

  /// Wire capabilities this client ASKS for (setup-time knob; configure
  /// before the first Call). Defaults to the GRIDDB_WIRE env toggle,
  /// i.e. 0 = plain XML-RPC unless the environment opts in. The connect
  /// handshake intersects this with what the server advertises.
  void set_wire_preference(uint32_t caps) { wire_preference_ = caps; }
  uint32_t wire_preference() const { return wire_preference_; }
  /// Capabilities agreed at connect time (0 before Connect / when either
  /// side stayed XML-only).
  uint32_t negotiated_caps() const { return negotiated_caps_; }

  /// Flow-control window: chunk frames in flight before the next transfer
  /// waits for consumer credit (setup-time knob; minimum 1).
  void set_stream_window(size_t window) {
    stream_window_ = window < 1 ? 1 : window;
  }
  size_t stream_window() const { return stream_window_; }

  const std::string& server_url() const { return server_url_; }

 private:
  /// `attempt_budget_ms` <= 0 means "no deadline this attempt";
  /// `wire_deadline_ms` > 0 rides the request as <deadlineMs>.
  Result<XmlRpcValue> CallOnce(const std::string& method,
                               const XmlRpcArray& params, net::Cost* cost,
                               int forward_depth,
                               const std::string& forward_path,
                               const obs::SpanContext& trace_ctx,
                               double attempt_budget_ms,
                               double wire_deadline_ms,
                               const std::string& tenant,
                               CallStats* call_stats, wire::StreamSink* sink);
  /// Client side of a framed binary response: per-frame simulated
  /// delivery under the flow-control window, digest checks, chunk
  /// hand-off to `sink` (or transparent reassembly).
  Result<XmlRpcValue> ReceiveBinary(
      const std::string& server_host, std::string_view raw_response,
      net::Cost* cost, CallStats* call_stats, wire::StreamSink* sink,
      const std::function<bool(double)>& over_deadline,
      const std::function<Status(const char*)>& abort_deadline,
      const std::function<void(double)>& charge_leg,
      const std::function<Status(const Status&)>& wait_out);
  /// Charges `ms` to `cost` (when non-null) and advances the virtual clock.
  void Charge(net::Cost* cost, double ms);

  Transport* transport_;
  std::string client_host_;
  std::string server_url_;
  std::string user_;
  std::string password_;
  std::mutex connect_mu_;          ///< Serializes the connect handshake.
  bool connected_ = false;
  double connect_cost_ms_ = -1.0;  ///< <0 = use transport default.
  std::string session_token_;
  std::string default_tenant_;
  uint32_t wire_preference_ = wire::EnvWirePreference();
  uint32_t negotiated_caps_ = 0;
  std::string wire_accept_;  // CapsToString(negotiated_caps_), cached at Connect.
  size_t stream_window_ = 4;
  RetryPolicy retry_policy_;
  obs::Tracer* tracer_ = nullptr;
  std::mutex jitter_mu_;           ///< Guards the jitter RNG stream.
  Rng jitter_rng_{0x5eed};
};

}  // namespace griddb::rpc
