// Negotiated binary wire protocol: columnar framing, block compression,
// chunked result streaming (DESIGN.md §16).
//
// XML-RPC stays the verbatim default — every fault-free response of a
// non-negotiated exchange is byte-identical to the text codec the paper
// describes. When a client asks for more at connect time (the capability
// exchange rides the existing connect/auth handshake) and the server
// agrees, successful responses switch to length-prefixed, digest-checked
// binary frames:
//
//   [4B magic "GBF1"][1B kind][1B flags][4B seq][4B raw_len][4B wire_len]
//   [8B FNV-1a-64 digest][payload ...]
//
// The payload is a TLV encoding of the response value in which result
// sets travel as typed *columns* built straight from the vectorized
// executor's ColumnVector batches — int64s as zigzag varints, doubles as
// 8-byte IEEE, bools bit-packed, strings length-prefixed, plus a packed
// null bitmap per column — instead of one <value> element per cell.
// Frames optionally carry an LZ4-style compressed payload (greedy
// hash-match block format, self-contained, no external dependency) when
// that actually shrinks them. The digest lets the client detect frames
// corrupted in transit by net::FaultPlan and fail the attempt with
// kCorruption, which the existing RetryPolicy already retries.
//
// Large results additionally stream as header + N chunk frames + trailer
// so the consumer starts integrating rows while later chunks are still
// on the wire; rpc::RpcClient models the overlap with a bounded window
// of in-flight chunks refilled by consumer credit (see server.cc).
//
// Faults and requests always stay XML: the first bytes of a response
// ('<' vs "GBF1") select the decoder, so an old client talking to a new
// server — or the reverse — degrades to plain XML-RPC transparently.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "griddb/rpc/xmlrpc_value.h"
#include "griddb/storage/result_set.h"
#include "griddb/util/status.h"

namespace griddb::rpc::wire {

// ---- capabilities ----

enum WireCap : uint32_t {
  kCapBinary = 1u << 0,  ///< TLV/columnar binary response framing.
  kCapLz4 = 1u << 1,     ///< Per-frame block compression (needs kCapBinary).
  kCapStream = 1u << 2,  ///< Chunked result streaming (needs kCapBinary).
};
inline constexpr uint32_t kAllCaps = kCapBinary | kCapLz4 | kCapStream;

/// "binary,lz4,stream" (subset, in that order); "" for 0.
std::string CapsToString(uint32_t caps);
/// Inverse of CapsToString; unrecognized tokens are ignored, which is
/// what makes the handshake forward-compatible (a newer peer may
/// advertise words this build has never heard of).
uint32_t CapsFromString(std::string_view text);

/// Client-side default wire preference from the GRIDDB_WIRE environment
/// toggle: "binary" = kAllCaps, anything else (or unset) = 0 (XML-RPC,
/// the seed behaviour). Read per call so tests can flip it.
uint32_t EnvWirePreference();

// ---- frames ----

enum class FrameKind : uint8_t {
  kWhole = 0,          ///< Entire response value in one payload.
  kStreamHeader = 1,   ///< Response envelope; streamed member is a stub.
  kStreamChunk = 2,    ///< One columnar block of rows.
  kStreamTrailer = 3,  ///< Total row/chunk counts (end-of-stream marker).
};

inline constexpr size_t kFrameHeaderSize = 26;
inline constexpr char kFrameMagic[4] = {'G', 'B', 'F', '1'};

/// A decoded (digest-checked, decompressed) frame.
struct Frame {
  FrameKind kind = FrameKind::kWhole;
  uint32_t seq = 0;
  bool compressed = false;
  std::string payload;
};

/// True when `raw` starts with the binary frame magic (an XML response
/// starts with '<'; the two cannot collide).
bool LooksBinary(std::string_view raw);

/// Appends one framed payload to `out`. With `allow_compress` the payload
/// is LZ4-compressed when that shrinks it (>= kCompressMinBytes).
void AppendFrame(FrameKind kind, uint32_t seq, std::string_view payload,
                 bool allow_compress, std::string* out);

/// Byte ranges of the frames packed in `raw` (offset, length). Fails on
/// malformed framing; runs on the server-side pristine bytes, before any
/// simulated transfer can damage them.
Result<std::vector<std::pair<size_t, size_t>>> SplitFrames(
    std::string_view raw);

/// Verifies and unpacks one frame (as delivered, possibly damaged in
/// transit). A digest mismatch — or framing too mangled to read — fails
/// with kCorruption, which IsRetryable() already covers.
Result<Frame> ParseFrame(std::string_view raw);

// ---- block compression (LZ4-style token/literal/match format) ----

inline constexpr size_t kCompressMinBytes = 128;

/// Greedy single-pass compressor; `out` is overwritten. The format is
/// self-framing given the raw length (carried in the frame header).
void BlockCompress(std::string_view in, std::string* out);
/// Inverse; bounds-checked so damaged input fails (kCorruption) instead
/// of reading out of range.
Result<std::string> BlockDecompress(std::string_view in, size_t raw_len);

// ---- value codec (TLV) ----

void EncodeValue(const XmlRpcValue& value, std::string* out);
Result<XmlRpcValue> DecodeValue(std::string_view in, size_t* offset);

/// Columnar block for rows[start, start+len) of `rs` (no schema; the
/// column count frames the block). Fails kFailedPrecondition on ragged
/// rows — callers fall back to the row-wise TLV layout.
Status EncodeRowsColumnar(const storage::ResultSet& rs, size_t start,
                          size_t len, std::string* out);
Status DecodeRowsColumnar(std::string_view in, size_t* offset, size_t num_cols,
                          std::vector<storage::Row>* out);

// ---- response codec ----

/// Encodes a successful response under the negotiated `caps`: one kWhole
/// frame, or header + chunk(s) + trailer when kCapStream is set and the
/// largest directly-embedded result set has more than `chunk_rows` rows.
/// `xml_size_hint` (the size EncodeResponse would have produced; 0 =
/// unknown) feeds the griddb.wire.bytes_saved metric.
std::string EncodeBinaryResponse(const XmlRpcValue& value, uint32_t caps,
                                 size_t chunk_rows, size_t xml_size_hint);

/// Consumer of streamed chunks. The return value of OnChunk is the
/// simulated milliseconds the consumer spends integrating the chunk;
/// the client's flow-control window uses it as the credit-grant delay
/// (a slow consumer stalls the producer). Errors abort the call.
class StreamSink {
 public:
  virtual ~StreamSink() = default;
  /// A retry re-delivers the stream from the top; drop partial state.
  virtual void OnRestart() {}
  virtual Result<double> OnChunk(storage::ResultSet&& chunk, size_t seq) = 0;
};

/// Reassembles a framed response on the client. Feed frames in order via
/// Consume; chunk frames hand their decoded rows back through `chunk`
/// (columns filled from the stream header). Finish returns the response
/// envelope — with the accumulated rows attached to the streamed member
/// when `attach_rows` is set (no external sink), or with the streamed
/// member holding only the column schema when the sink consumed them.
class ResponseDecoder {
 public:
  /// `*is_chunk` reports whether `chunk` received rows.
  Status Consume(Frame frame, storage::ResultSet* chunk, bool* is_chunk);
  Result<XmlRpcValue> Finish(bool attach_rows, std::vector<storage::Row> rows);
  bool done() const { return done_; }
  size_t num_columns() const { return columns_.size(); }

 private:
  XmlRpcValue envelope_;
  bool have_envelope_ = false;
  bool done_ = false;
  std::shared_ptr<storage::ResultSet> stream_slot_;
  std::vector<std::string> columns_;
  uint32_t next_seq_ = 0;
  size_t rows_seen_ = 0;
};

}  // namespace griddb::rpc::wire
