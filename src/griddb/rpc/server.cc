#include "griddb/rpc/server.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <iterator>
#include <limits>
#include <mutex>
#include <string_view>

#include "griddb/obs/metrics.h"
#include "griddb/util/logging.h"
#include "griddb/util/strings.h"

namespace griddb::rpc {

namespace {
// Function-local-static instrument handles keep the hot path allocation-free:
// the registry lookup happens once per process, later hits are a pointer read.
obs::Counter& ServerRequests() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("griddb.rpc.server.requests");
  return *c;
}
obs::Counter& ServerFaults() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("griddb.rpc.server.faults");
  return *c;
}
obs::Counter& ClientCalls() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("griddb.rpc.client.calls");
  return *c;
}
obs::Counter& ClientRetries() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("griddb.rpc.client.retries");
  return *c;
}
obs::Counter& ClientFailures() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("griddb.rpc.client.failures");
  return *c;
}
obs::Histogram& ClientCallMs() {
  static obs::Histogram* h =
      obs::MetricsRegistry::Default().GetHistogram("griddb.rpc.client.call_ms");
  return *h;
}
obs::Counter& HandshakeFallbacks() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "griddb.wire.handshake_fallbacks");
  return *c;
}
}  // namespace

bool IsRetryable(StatusCode code) {
  // Corruption is transient like a drop: the next transmission of the
  // same message draws a fresh fate, so it is worth retrying rather than
  // burning the whole call. A shed (kResourceExhausted) is transient by
  // definition — the server asked the client to come back later.
  return code == StatusCode::kUnavailable || code == StatusCode::kTimeout ||
         code == StatusCode::kCorruption ||
         code == StatusCode::kResourceExhausted;
}

double RetryAfterHintMs(const std::string& message) {
  static constexpr std::string_view kKey = "retry_after_ms=";
  size_t pos = message.find(kKey);
  if (pos == std::string::npos) return 0;
  size_t start = pos + kKey.size();
  size_t end = start;
  while (end < message.size() &&
         (std::isdigit(static_cast<unsigned char>(message[end])) ||
          message[end] == '.')) {
    ++end;
  }
  double hint = 0;
  if (!ParseDouble(std::string_view(message).substr(start, end - start),
                   &hint) ||
      hint < 0) {
    return 0;
  }
  return hint;
}

// ---------- Url ----------

std::string Url::ToString() const {
  return scheme + "://" + host + ":" + std::to_string(port) + path;
}

Result<Url> Url::Parse(std::string_view text) {
  Url url;
  size_t scheme_end = text.find("://");
  if (scheme_end == std::string_view::npos) {
    return ParseError("URL '" + std::string(text) + "' missing scheme");
  }
  url.scheme = std::string(text.substr(0, scheme_end));
  std::string_view rest = text.substr(scheme_end + 3);
  size_t path_start = rest.find('/');
  std::string_view authority =
      path_start == std::string_view::npos ? rest : rest.substr(0, path_start);
  url.path = path_start == std::string_view::npos
                 ? "/"
                 : std::string(rest.substr(path_start));
  size_t colon = authority.find(':');
  if (colon == std::string_view::npos) {
    url.host = std::string(authority);
  } else {
    url.host = std::string(authority.substr(0, colon));
    int64_t port = 0;
    if (!ParseInt64(authority.substr(colon + 1), &port) || port <= 0 ||
        port > 65535) {
      return ParseError("bad port in URL '" + std::string(text) + "'");
    }
    url.port = static_cast<int>(port);
  }
  if (url.host.empty()) {
    return ParseError("URL '" + std::string(text) + "' missing host");
  }
  return url;
}

// ---------- Transport ----------

namespace {
/// Endpoints are keyed by normalized URL (explicit port, no trailing '/').
Result<std::string> NormalizeUrl(const std::string& url) {
  GRIDDB_ASSIGN_OR_RETURN(Url parsed, Url::Parse(url));
  std::string path = parsed.path;
  while (path.size() > 1 && path.back() == '/') path.pop_back();
  parsed.path = path;
  return parsed.ToString();
}
}  // namespace

Status Transport::Bind(const std::string& url, RpcServer* server) {
  // Binding does not require the host to exist yet (fixtures commonly bind
  // before topology setup); an unknown host surfaces at call time as a
  // NotFound from Network::WireTransferMs naming the host.
  GRIDDB_ASSIGN_OR_RETURN(std::string key, NormalizeUrl(url));
  std::unique_lock lock(mu_);
  auto [it, inserted] = endpoints_.emplace(key, server);
  (void)it;
  if (!inserted) return AlreadyExists("endpoint '" + key + "' already bound");
  return Status::Ok();
}

void Transport::Unbind(const std::string& url) {
  auto key = NormalizeUrl(url);
  if (!key.ok()) return;
  std::unique_lock lock(mu_);
  endpoints_.erase(*key);
}

Result<RpcServer*> Transport::Resolve(const std::string& url) const {
  GRIDDB_ASSIGN_OR_RETURN(std::string key, NormalizeUrl(url));
  std::shared_lock lock(mu_);
  auto it = endpoints_.find(key);
  if (it == endpoints_.end()) {
    return Unavailable("no server bound at '" + key + "'");
  }
  return it->second;
}

// ---------- RpcServer ----------

RpcServer::RpcServer(std::string url, Transport* transport)
    : url_(std::move(url)), transport_(transport) {
  auto parsed = Url::Parse(url_);
  host_ = parsed.ok() ? parsed->host : "unknown-host";
  Status bound = transport_->Bind(url_, this);
  if (!bound.ok()) {
    GRIDDB_LOG(Error) << "RpcServer bind failed: " << bound.ToString();
  }
}

RpcServer::~RpcServer() { transport_->Unbind(url_); }

Status RpcServer::RegisterMethod(const std::string& name,
                                 MethodHandler handler) {
  std::unique_lock lock(mu_);
  auto [it, inserted] = methods_.emplace(name, std::move(handler));
  (void)it;
  if (!inserted) return AlreadyExists("method '" + name + "' already registered");
  return Status::Ok();
}

std::vector<std::string> RpcServer::MethodNames() const {
  std::shared_lock lock(mu_);
  std::vector<std::string> names;
  names.reserve(methods_.size());
  for (const auto& [name, handler] : methods_) {
    (void)handler;
    names.push_back(name);
  }
  return names;
}

void RpcServer::AddUser(const std::string& user, const std::string& password,
                        const std::string& tenant) {
  std::unique_lock lock(mu_);
  users_[user] = password;
  if (!tenant.empty()) user_tenants_[user] = tenant;
}

bool RpcServer::auth_required() const {
  std::shared_lock lock(mu_);
  return !users_.empty();
}

Result<std::string> RpcServer::Login(const std::string& user,
                                     const std::string& password) {
  std::unique_lock lock(mu_);
  auto it = users_.find(user);
  if (it == users_.end() || it->second != password) {
    return PermissionDenied("invalid credentials for user '" + user + "'");
  }
  std::string token =
      "sess-" + std::to_string(next_session_++) + "-" + user;
  sessions_[token] = user;
  return token;
}

std::string RpcServer::HandleRaw(std::string_view raw_request,
                                 const std::string& client_host,
                                 net::Cost* cost, int forward_depth,
                                 const std::string& forward_path) {
  CallContext ctx;
  ctx.client_host = client_host;
  ctx.server_host = host_;
  ctx.transport = transport_;
  ctx.forward_depth = forward_depth;
  ctx.forward_path = forward_path;
  ctx.cost.AddMs(transport_->costs().query_parse_ms);
  ServerRequests().Add(1);

  // Faults ALWAYS encode as XML so any client can read them; successful
  // responses switch to binary frames only when the request's
  // <wireAccept> header (set after decode, below) meets this server's
  // own capabilities.
  uint32_t response_caps = 0;
  auto respond = [&](const Result<XmlRpcValue>& result) {
    if (cost) cost->AddSequential(ctx.cost);
    if (!result.ok()) {
      ServerFaults().Add(1);
      return EncodeFault(result.status());
    }
    if (response_caps & wire::kCapBinary) {
      // The hint approximates what EncodeResponse would have produced
      // (envelope + value); it only feeds the bytes_saved metric.
      return wire::EncodeBinaryResponse(*result, response_caps,
                                        stream_chunk_rows_,
                                        result->EstimateXmlSize() + 96);
    }
    return EncodeResponse(*result);
  };

  auto request = DecodeRequest(raw_request);
  if (!request.ok()) return respond(request.status());
  ctx.trace_parent = {request->trace_id, request->parent_span_id};
  ctx.deadline_budget_ms = request->deadline_ms;
  ctx.tenant = request->tenant;
  response_caps = wire::CapsFromString(request->wire_accept) & wire_caps_;

  // Built-in session login.
  if (request->method == "system.login") {
    if (request->params.size() != 2) {
      return respond(InvalidArgument("system.login expects (user, password)"));
    }
    auto user = request->params[0].AsString();
    auto password = request->params[1].AsString();
    if (!user.ok() || !password.ok()) {
      return respond(InvalidArgument("system.login expects string params"));
    }
    auto token = Login(*user, *password);
    if (!token.ok()) return respond(token.status());
    return respond(XmlRpcValue(*token));
  }
  if (request->method == "system.listMethods") {
    XmlRpcArray names;
    for (const std::string& name : MethodNames()) names.emplace_back(name);
    return respond(XmlRpcValue(std::move(names)));
  }

  // Session check. On client-facing hops the tenant identity is BOUND to
  // the authenticated session, never adopted from the wire: a client
  // writing another community's name into the <tenant> header would
  // otherwise inherit that tenant's grants and admission lane. Only
  // server-to-server forwards (forward_depth > 0, which is set in-process
  // by the forwarding server and never decoded from the wire) relay the
  // original requester's tenant verbatim, because the peer already
  // enforced the binding at the edge.
  if (auth_required()) {
    std::shared_lock lock(mu_);
    auto it = sessions_.find(request->session_token);
    if (it == sessions_.end()) {
      return respond(
          PermissionDenied("missing or invalid session token; call "
                           "system.login first"));
    }
    ctx.authenticated_user = it->second;
    if (forward_depth == 0) {
      auto bound = user_tenants_.find(ctx.authenticated_user);
      const std::string& session_tenant = bound != user_tenants_.end()
                                              ? bound->second
                                              : ctx.authenticated_user;
      if (!request->tenant.empty() && request->tenant != session_tenant) {
        return respond(PermissionDenied(
            "tenant '" + request->tenant + "' does not match tenant '" +
            session_tenant + "' bound to session user '" +
            ctx.authenticated_user + "'"));
      }
      ctx.tenant = session_tenant;
    }
  }

  MethodHandler handler;
  {
    std::shared_lock lock(mu_);
    auto it = methods_.find(request->method);
    if (it == methods_.end()) {
      return respond(
          NotFound("no such method '" + request->method + "'"));
    }
    handler = it->second;
  }
  return respond(handler(request->params, ctx));
}

// ---------- RpcClient ----------

RpcClient::RpcClient(Transport* transport, std::string client_host,
                     std::string server_url, std::string user,
                     std::string password)
    : transport_(transport),
      client_host_(std::move(client_host)),
      server_url_(std::move(server_url)),
      user_(std::move(user)),
      password_(std::move(password)) {}

Status RpcClient::Connect(net::Cost* cost) {
  std::lock_guard<std::mutex> lock(connect_mu_);
  if (connected_) return Status::Ok();
  GRIDDB_ASSIGN_OR_RETURN(RpcServer * server,
                          transport_->Resolve(server_url_));
  // TCP + service handshake, then authentication when the server needs it.
  double connect_ms = connect_cost_ms_ >= 0 ? connect_cost_ms_
                                            : transport_->costs().connect_auth_ms;
  if (cost) cost->AddMs(connect_ms);
  if (server->auth_required()) {
    GRIDDB_ASSIGN_OR_RETURN(std::string token, server->Login(user_, password_));
    session_token_ = token;
  }
  // Capability handshake: the server advertises, the client intersects
  // with its own preference. It rides the connect/auth exchange just
  // charged above (like Login, an in-process leg of connection setup),
  // so negotiating costs no extra messages and perturbs no fault-plan
  // draws — the timing of every later call is identical whichever codec
  // wins. An unrecognizable peer simply leaves the intersection empty
  // and the connection falls back to plain XML-RPC.
  negotiated_caps_ =
      wire::CapsFromString(wire::CapsToString(wire_preference_)) &
      server->wire_caps();
  wire_accept_ = wire::CapsToString(negotiated_caps_);
  if ((wire_preference_ & wire::kCapBinary) &&
      !(negotiated_caps_ & wire::kCapBinary)) {
    HandshakeFallbacks().Add(1);
  }
  connected_ = true;
  return Status::Ok();
}

void RpcClient::set_retry_policy(const RetryPolicy& policy) {
  std::lock_guard<std::mutex> lock(jitter_mu_);
  retry_policy_ = policy;
  jitter_rng_ = Rng(policy.jitter_seed);
}

void RpcClient::Charge(net::Cost* cost, double ms) {
  if (ms <= 0) return;
  if (cost) cost->AddMs(ms);
  transport_->network()->AdvanceClockMs(ms);
}

Result<XmlRpcValue> RpcClient::CallOnce(
    const std::string& method, const XmlRpcArray& params, net::Cost* cost,
    int forward_depth, const std::string& forward_path,
    const obs::SpanContext& trace_ctx, double attempt_budget_ms,
    double wire_deadline_ms, const std::string& tenant, CallStats* call_stats,
    wire::StreamSink* sink) {
  GRIDDB_RETURN_IF_ERROR(Connect(cost));
  GRIDDB_ASSIGN_OR_RETURN(RpcServer * server,
                          transport_->Resolve(server_url_));

  RpcRequest request;
  request.method = method;
  request.params = params;
  request.session_token = session_token_;
  request.trace_id = trace_ctx.trace_id;
  request.parent_span_id = trace_ctx.span_id;
  request.deadline_ms = wire_deadline_ms > 0 ? wire_deadline_ms : 0;
  request.tenant = tenant;
  request.wire_accept = wire_accept_;
  std::string raw_request = EncodeRequest(request);
  if (call_stats) call_stats->request_bytes += raw_request.size();

  net::Network* network = transport_->network();
  const double deadline = attempt_budget_ms;
  double attempt_ms = 0;  // Charged toward this attempt's deadline.

  // A lost message is only detected by waiting out the attempt budget.
  auto wait_out = [&](const Status& failure) -> Status {
    if (failure.code() == StatusCode::kTimeout && deadline > 0) {
      Charge(cost, deadline - attempt_ms);
    }
    return failure;
  };
  // The client gives up mid-leg once the budget is spent.
  auto over_deadline = [&](double next_ms) {
    return deadline > 0 && attempt_ms + next_ms > deadline;
  };
  auto abort_deadline = [&](const char* leg) -> Status {
    Charge(cost, deadline - attempt_ms);
    return Timeout(std::string(leg) + " of call '" + method +
                   "' exceeded the " + std::to_string(deadline) +
                   " ms attempt deadline");
  };
  auto charge_leg = [&](double ms) {
    attempt_ms += ms;
    Charge(cost, ms);
  };

  // Request leg (fault injection applies per message direction).
  auto request_ms =
      network->WireTransferMs(client_host_, server->host(), raw_request.size());
  if (!request_ms.ok()) return wait_out(request_ms.status());
  if (over_deadline(*request_ms)) return abort_deadline("request transfer");
  charge_leg(*request_ms);

  net::Cost server_cost;
  std::string raw_response = server->HandleRaw(
      raw_request, client_host_, &server_cost, forward_depth, forward_path);
  if (over_deadline(server_cost.total_ms())) {
    return abort_deadline("server processing");
  }
  charge_leg(server_cost.total_ms());

  // Response leg. Binary responses ("GBF1" magic) deliver frame by frame
  // so corruption is detected by the digest and streamed chunks overlap
  // with their consumption; XML responses keep the one-shot transfer.
  if (wire::LooksBinary(raw_response)) {
    return ReceiveBinary(server->host(), raw_response, cost, call_stats, sink,
                         over_deadline, abort_deadline, charge_leg, wait_out);
  }
  auto response_ms =
      network->WireTransferMs(server->host(), client_host_, raw_response.size());
  if (!response_ms.ok()) return wait_out(response_ms.status());
  if (over_deadline(*response_ms)) return abort_deadline("response transfer");
  charge_leg(*response_ms);
  if (call_stats) {
    call_stats->response_bytes = raw_response.size();
    call_stats->response_transfer_ms = *response_ms;
  }

  return DecodeResponse(raw_response);
}

Result<XmlRpcValue> RpcClient::ReceiveBinary(
    const std::string& server_host, std::string_view raw_response,
    net::Cost* cost, CallStats* call_stats, wire::StreamSink* sink,
    const std::function<bool(double)>& over_deadline,
    const std::function<Status(const char*)>& abort_deadline,
    const std::function<void(double)>& charge_leg,
    const std::function<Status(const Status&)>& wait_out) {
  // Framing runs on the pristine server-side bytes; each frame then
  // suffers its own simulated delivery (fault draws included) below.
  GRIDDB_ASSIGN_OR_RETURN(auto frame_ranges, wire::SplitFrames(raw_response));

  net::Network* network = transport_->network();
  wire::ResponseDecoder decoder;
  std::vector<storage::Row> rows;  // Reassembly buffer when no sink.
  bool used_sink = false;

  // Virtual-time pipeline, all offsets relative to the start of the
  // response leg. The link moves one frame at a time; a delivered chunk
  // is then consumed (sink credit = simulated integration ms); transfer
  // of chunk i+window waits for the credit of chunk i. Elapsed time is
  // charged monotonically as events land so deadline checks stay exact.
  double link_free = 0;
  double consumer_free = 0;
  double charged = 0;
  std::vector<double> chunk_credit;  // Consume-finish time per chunk.
  auto charge_to = [&](double t) -> Status {
    if (t <= charged) return Status::Ok();
    if (over_deadline(t - charged)) return abort_deadline("response transfer");
    charge_leg(t - charged);
    charged = t;
    return Status::Ok();
  };

  for (size_t i = 0; i < frame_ranges.size(); ++i) {
    auto [offset, length] = frame_ranges[i];
    std::string delivered(raw_response.substr(offset, length));
    double start = link_free;
    size_t chunk_index = chunk_credit.size();
    if (chunk_index >= stream_window_) {
      start = std::max(start, chunk_credit[chunk_index - stream_window_]);
    }
    // Frames after the first ride the same established connection, so
    // only the first pays the link latency term.
    auto transfer_ms =
        network->WireDeliverMs(server_host, client_host_, &delivered, i == 0);
    if (!transfer_ms.ok()) {
      GRIDDB_RETURN_IF_ERROR(charge_to(std::max(link_free, consumer_free)));
      return wait_out(transfer_ms.status());
    }
    double arrive = start + *transfer_ms;
    link_free = arrive;
    GRIDDB_RETURN_IF_ERROR(charge_to(arrive));

    // Digest check on the delivered (possibly damaged) bytes.
    GRIDDB_ASSIGN_OR_RETURN(wire::Frame frame, wire::ParseFrame(delivered));
    storage::ResultSet chunk;
    bool is_chunk = false;
    GRIDDB_RETURN_IF_ERROR(decoder.Consume(std::move(frame), &chunk, &is_chunk));
    if (!is_chunk) continue;

    if (call_stats) ++call_stats->streamed_chunks;
    double consume_start = std::max(arrive, consumer_free);
    double consume_ms = 0;
    if (sink != nullptr) {
      used_sink = true;
      GRIDDB_ASSIGN_OR_RETURN(consume_ms,
                              sink->OnChunk(std::move(chunk), chunk_index));
      if (consume_ms < 0) consume_ms = 0;
    } else {
      rows.insert(rows.end(), std::make_move_iterator(chunk.rows.begin()),
                  std::make_move_iterator(chunk.rows.end()));
    }
    consumer_free = consume_start + consume_ms;
    chunk_credit.push_back(consumer_free);
    if (chunk_index == 0) {
      GRIDDB_RETURN_IF_ERROR(charge_to(consumer_free));
      if (call_stats) {
        call_stats->first_chunk_ms =
            cost != nullptr ? cost->total_ms() : charged;
      }
    }
  }
  GRIDDB_RETURN_IF_ERROR(charge_to(std::max(link_free, consumer_free)));
  if (call_stats) {
    call_stats->response_bytes = raw_response.size();
    call_stats->response_transfer_ms = charged;
  }
  return decoder.Finish(!used_sink, std::move(rows));
}

Result<XmlRpcValue> RpcClient::Call(const std::string& method,
                                    XmlRpcArray params, net::Cost* cost,
                                    int forward_depth,
                                    const std::string& forward_path,
                                    CallStats* call_stats,
                                    const CancelToken* cancel,
                                    const std::string& tenant,
                                    wire::StreamSink* sink) {
  const std::string& wire_tenant = tenant.empty() ? default_tenant_ : tenant;
  RetryPolicy policy;
  {
    std::lock_guard<std::mutex> lock(jitter_mu_);
    policy = retry_policy_;
  }
  ClientCalls().Add(1);
  // All charging flows through a local tee so the histogram sees exactly
  // the simulated ms this call cost, whether or not the caller accounts.
  net::Cost local_cost;
  obs::Span span;
  if (tracer_ && tracer_->enabled()) {
    span = tracer_->StartSpan("rpc.call");
    span.AddAttr("method", method);
    span.AddAttr("server", server_url_);
  }
  const obs::SpanContext trace_ctx = span.context();
  auto finish = [&](Result<XmlRpcValue> result) -> Result<XmlRpcValue> {
    if (cost) cost->AddSequential(local_cost);
    ClientCallMs().Observe(local_cost.total_ms());
    if (!result.ok()) {
      ClientFailures().Add(1);
      if (span.active()) span.SetError(result.status().ToString());
    }
    span.End();
    return result;
  };
  // The call's overall budget: the policy's overall deadline, the caller's
  // cancellation token, or both — whichever is tighter at any moment.
  // Spent ms accumulate in local_cost; token expiry is re-read each
  // attempt because other branches of the same query spend it too.
  const bool has_overall = policy.overall_timeout_ms > 0;
  const bool has_token =
      cancel != nullptr && cancel->active() && cancel->has_deadline();
  auto overall_left = [&]() {
    double left = std::numeric_limits<double>::infinity();
    if (has_overall) {
      left = policy.overall_timeout_ms - local_cost.total_ms();
    }
    if (has_token) left = std::min(left, cancel->remaining_ms());
    return left;
  };
  const int max_attempts = std::max(1, policy.max_attempts);
  double backoff = policy.initial_backoff_ms;
  for (int attempt = 1;; ++attempt) {
    if (cancel != nullptr) {
      Status live = cancel->Check();
      if (!live.ok()) return finish(live);
    }
    double left = overall_left();
    if (left <= 0) {
      return finish(has_token && cancel->remaining_ms() <= 0
                        ? DeadlineExceeded("call '" + method +
                                           "' ran out of query budget")
                        : Timeout("call '" + method + "' exceeded the " +
                                  std::to_string(policy.overall_timeout_ms) +
                                  " ms overall deadline"));
    }
    // The attempt may spend at most the per-attempt deadline, clipped to
    // what is left of the overall budget.
    double attempt_budget = policy.attempt_timeout_ms;
    if (std::isfinite(left) && (attempt_budget <= 0 || left < attempt_budget)) {
      attempt_budget = left;
    }
    double wire_deadline =
        has_token ? cancel->remaining_ms() : 0;
    if (call_stats) ++call_stats->attempts;
    // A retry re-delivers any stream from the top; the sink must drop
    // partial state from the failed attempt.
    if (sink != nullptr && attempt > 1) sink->OnRestart();
    if (call_stats && attempt > 1) call_stats->streamed_chunks = 0;
    Result<XmlRpcValue> result = CallOnce(method, params, &local_cost,
                                          forward_depth, forward_path,
                                          trace_ctx, attempt_budget,
                                          wire_deadline, wire_tenant,
                                          call_stats, sink);
    if (result.ok() || !IsRetryable(result.status().code()) ||
        attempt >= max_attempts) {
      if (call_stats && !result.ok() &&
          !IsRetryable(result.status().code())) {
        call_stats->non_retryable = true;
      }
      return finish(std::move(result));
    }
    double jitter = 0;
    {
      std::lock_guard<std::mutex> lock(jitter_mu_);
      jitter = backoff * policy.jitter_fraction *
               (2.0 * jitter_rng_.NextDouble() - 1.0);
    }
    double wait = std::clamp(backoff + jitter, 0.0, policy.max_backoff_ms);
    // An overloaded server's retry-after hint stretches the wait: coming
    // back sooner than asked would just be shed again.
    if (result.status().code() == StatusCode::kResourceExhausted) {
      wait = std::max(wait, RetryAfterHintMs(result.status().message()));
    }
    // Never let backoff itself blow the budget: if waiting would spend the
    // rest of it, give up now with the last real failure.
    double budget_left = overall_left();
    if (std::isfinite(budget_left) && wait >= budget_left) {
      return finish(std::move(result));
    }
    if (call_stats) ++call_stats->retries;
    ClientRetries().Add(1);
    // The backoff wait advances the virtual clock, which is what lets a
    // retry schedule outlast a host down-window.
    Charge(&local_cost, wait);
    backoff = std::min(backoff * policy.backoff_multiplier,
                       policy.max_backoff_ms);
  }
}

}  // namespace griddb::rpc
