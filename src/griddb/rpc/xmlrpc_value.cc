#include "griddb/rpc/xmlrpc_value.h"

#include <cstdio>
#include <string_view>

#include "griddb/util/strings.h"

namespace griddb::rpc {

using storage::DataType;
using storage::Value;

namespace {

/// The classic struct{columns,rows} boxing of a result set (what
/// ResultSetToRpc produced before wrapped sets existed). The XML writer
/// and the equality operator render wrapped sets through this shape, so
/// the text wire format is oblivious to the wrapping.
XmlRpcStruct ResultSetToStruct(const storage::ResultSet& rs) {
  XmlRpcArray columns;
  columns.reserve(rs.columns.size());
  for (const std::string& c : rs.columns) columns.emplace_back(c);

  XmlRpcArray rows;
  rows.reserve(rs.rows.size());
  for (const storage::Row& row : rs.rows) {
    XmlRpcArray cells;
    cells.reserve(row.size());
    for (const Value& cell : row) {
      switch (cell.type()) {
        case DataType::kNull: cells.emplace_back(); break;
        case DataType::kInt64: cells.emplace_back(cell.AsInt64Strict()); break;
        case DataType::kDouble: cells.emplace_back(cell.AsDoubleStrict()); break;
        case DataType::kBool: cells.emplace_back(cell.AsBoolStrict()); break;
        case DataType::kString: cells.emplace_back(cell.AsStringStrict()); break;
      }
    }
    rows.emplace_back(std::move(cells));
  }
  XmlRpcStruct out;
  out["columns"] = std::move(columns);
  out["rows"] = std::move(rows);
  return out;
}

// ---- direct-to-string XML writer ----
//
// The text codec's hot path. Emits exactly what the Node-tree writer
// emits in compact mode, but in one pass over a pre-sized buffer:
// numeric cells append their digits raw (nothing to escape), and string
// content takes a find_first_of fast path that bulk-appends when no
// escapable character occurs.

constexpr std::string_view kXmlSpecials = "&<>\"'";

void AppendEscaped(std::string_view raw, std::string* out) {
  size_t plain = raw.find_first_of(kXmlSpecials);
  if (plain == std::string_view::npos) {
    out->append(raw);
    return;
  }
  out->append(raw, 0, plain);
  for (size_t i = plain; i < raw.size(); ++i) {
    switch (raw[i]) {
      case '&': *out += "&amp;"; break;
      case '<': *out += "&lt;"; break;
      case '>': *out += "&gt;"; break;
      case '"': *out += "&quot;"; break;
      case '\'': *out += "&apos;"; break;
      default: *out += raw[i];
    }
  }
}

void AppendCellXml(const Value& cell, std::string* out) {
  switch (cell.type()) {
    case DataType::kNull:
      out->append("<value><nil/></value>");
      break;
    case DataType::kInt64: {
      char buf[24];
      int n = std::snprintf(buf, sizeof(buf), "%lld",
                            static_cast<long long>(cell.AsInt64Strict()));
      out->append("<value><i4>");
      out->append(buf, static_cast<size_t>(n));
      out->append("</i4></value>");
      break;
    }
    case DataType::kDouble: {
      char buf[40];
      int n = std::snprintf(buf, sizeof(buf), "%.17g", cell.AsDoubleStrict());
      out->append("<value><double>");
      out->append(buf, static_cast<size_t>(n));
      out->append("</double></value>");
      break;
    }
    case DataType::kBool:
      out->append(cell.AsBoolStrict() ? "<value><boolean>1</boolean></value>"
                                      : "<value><boolean>0</boolean></value>");
      break;
    case DataType::kString: {
      const std::string& s = cell.AsStringStrict();
      if (s.empty()) {
        out->append("<value><string/></value>");
      } else {
        out->append("<value><string>");
        AppendEscaped(s, out);
        out->append("</string></value>");
      }
      break;
    }
  }
}

void AppendResultSetXml(const storage::ResultSet& rs, std::string* out) {
  // Identical bytes to ResultSetToStruct -> ToXml -> compact Write; the
  // member order (columns < rows) matches std::map iteration.
  out->append("<value><struct><member><name>columns</name><value><array>");
  if (rs.columns.empty()) {
    out->append("<data/>");
  } else {
    out->append("<data>");
    for (const std::string& c : rs.columns) {
      if (c.empty()) {
        out->append("<value><string/></value>");
      } else {
        out->append("<value><string>");
        AppendEscaped(c, out);
        out->append("</string></value>");
      }
    }
    out->append("</data>");
  }
  out->append("</array></value></member><member><name>rows</name>"
              "<value><array>");
  if (rs.rows.empty()) {
    out->append("<data/>");
  } else {
    out->append("<data>");
    for (const storage::Row& row : rs.rows) {
      out->append("<value><array>");
      if (row.empty()) {
        out->append("<data/>");
      } else {
        out->append("<data>");
        for (const Value& cell : row) AppendCellXml(cell, out);
        out->append("</data>");
      }
      out->append("</array></value>");
    }
    out->append("</data>");
  }
  out->append("</array></value></member></struct></value>");
}

size_t EstimateCellXmlSize(const Value& cell) {
  switch (cell.type()) {
    case DataType::kNull: return 22;
    case DataType::kInt64: return 38;
    case DataType::kDouble: return 52;
    case DataType::kBool: return 36;
    case DataType::kString: return 34 + cell.AsStringStrict().size();
  }
  return 22;
}

}  // namespace

Result<int64_t> XmlRpcValue::AsInt() const {
  if (const auto* v = std::get_if<int64_t>(&data_)) return *v;
  return TypeError("XML-RPC value is not an int");
}

Result<double> XmlRpcValue::AsDouble() const {
  if (const auto* v = std::get_if<double>(&data_)) return *v;
  if (const auto* v = std::get_if<int64_t>(&data_)) {
    return static_cast<double>(*v);
  }
  return TypeError("XML-RPC value is not a double");
}

Result<bool> XmlRpcValue::AsBool() const {
  if (const auto* v = std::get_if<bool>(&data_)) return *v;
  return TypeError("XML-RPC value is not a boolean");
}

Result<std::string> XmlRpcValue::AsString() const {
  if (const auto* v = std::get_if<std::string>(&data_)) return *v;
  return TypeError("XML-RPC value is not a string");
}

Result<const XmlRpcArray*> XmlRpcValue::AsArray() const {
  if (const auto* v = std::get_if<XmlRpcArray>(&data_)) return v;
  return TypeError("XML-RPC value is not an array");
}

Result<const XmlRpcStruct*> XmlRpcValue::AsStruct() const {
  if (const auto* v = std::get_if<XmlRpcStruct>(&data_)) return v;
  return TypeError("XML-RPC value is not a struct");
}

Result<const XmlRpcValue*> XmlRpcValue::Member(const std::string& key) const {
  GRIDDB_ASSIGN_OR_RETURN(const XmlRpcStruct* s, AsStruct());
  auto it = s->find(key);
  if (it == s->end()) return NotFound("struct member '" + key + "' absent");
  return &it->second;
}

xml::Node XmlRpcValue::ToXml() const {
  if (const auto* rs = std::get_if<ResultSetPtr>(&data_)) {
    return XmlRpcValue(ResultSetToStruct(**rs)).ToXml();
  }
  xml::Node value_node("value");
  if (is_empty()) {
    value_node.AddChild("nil");
  } else if (const auto* i = std::get_if<int64_t>(&data_)) {
    value_node.AddTextChild("i4", std::to_string(*i));
  } else if (const auto* d = std::get_if<double>(&data_)) {
    value_node.AddTextChild("double", StrFormat("%.17g", *d));
  } else if (const auto* b = std::get_if<bool>(&data_)) {
    value_node.AddTextChild("boolean", *b ? "1" : "0");
  } else if (const auto* s = std::get_if<std::string>(&data_)) {
    value_node.AddTextChild("string", *s);
  } else if (const auto* array = std::get_if<XmlRpcArray>(&data_)) {
    xml::Node& data = value_node.AddChild("array").AddChild("data");
    for (const XmlRpcValue& item : *array) {
      data.children.push_back(
          std::make_unique<xml::Node>(item.ToXml()));
    }
  } else if (const auto* record = std::get_if<XmlRpcStruct>(&data_)) {
    xml::Node& struct_node = value_node.AddChild("struct");
    for (const auto& [key, member] : *record) {
      xml::Node& member_node = struct_node.AddChild("member");
      member_node.AddTextChild("name", key);
      member_node.children.push_back(
          std::make_unique<xml::Node>(member.ToXml()));
    }
  }
  return value_node;
}

Result<XmlRpcValue> XmlRpcValue::FromXml(const xml::Node& value_node) {
  if (value_node.name != "value") {
    return ParseError("expected <value> element, got <" + value_node.name + ">");
  }
  // Bare text inside <value> is a string per the XML-RPC spec.
  if (value_node.children.empty()) return XmlRpcValue(value_node.text);

  const xml::Node& type_node = *value_node.children[0];
  const std::string& tag = type_node.name;
  if (tag == "nil") return XmlRpcValue();
  if (tag == "i4" || tag == "int") {
    int64_t v = 0;
    if (!ParseInt64(type_node.text, &v)) {
      return ParseError("bad XML-RPC int '" + type_node.text + "'");
    }
    return XmlRpcValue(v);
  }
  if (tag == "double") {
    double v = 0;
    if (!ParseDouble(type_node.text, &v)) {
      return ParseError("bad XML-RPC double '" + type_node.text + "'");
    }
    return XmlRpcValue(v);
  }
  if (tag == "boolean") {
    if (type_node.text == "1") return XmlRpcValue(true);
    if (type_node.text == "0") return XmlRpcValue(false);
    return ParseError("bad XML-RPC boolean '" + type_node.text + "'");
  }
  if (tag == "string") return XmlRpcValue(type_node.text);
  if (tag == "array") {
    const xml::Node* data = type_node.Child("data");
    if (!data) return ParseError("<array> without <data>");
    XmlRpcArray array;
    array.reserve(data->children.size());
    for (const auto& child : data->children) {
      GRIDDB_ASSIGN_OR_RETURN(XmlRpcValue item, FromXml(*child));
      array.push_back(std::move(item));
    }
    return XmlRpcValue(std::move(array));
  }
  if (tag == "struct") {
    XmlRpcStruct record;
    for (const auto& member : type_node.children) {
      if (member->name != "member") {
        return ParseError("<struct> child is not <member>");
      }
      const xml::Node* name = member->Child("name");
      const xml::Node* value = member->Child("value");
      if (!name || !value) return ParseError("<member> missing name/value");
      GRIDDB_ASSIGN_OR_RETURN(XmlRpcValue item, FromXml(*value));
      record[name->text] = std::move(item);
    }
    return XmlRpcValue(std::move(record));
  }
  return ParseError("unknown XML-RPC type <" + tag + ">");
}

void XmlRpcValue::AppendXml(std::string* out) const {
  if (is_empty()) {
    out->append("<value><nil/></value>");
  } else if (const auto* i = std::get_if<int64_t>(&data_)) {
    char buf[24];
    int n = std::snprintf(buf, sizeof(buf), "%lld",
                          static_cast<long long>(*i));
    out->append("<value><i4>");
    out->append(buf, static_cast<size_t>(n));
    out->append("</i4></value>");
  } else if (const auto* d = std::get_if<double>(&data_)) {
    char buf[40];
    int n = std::snprintf(buf, sizeof(buf), "%.17g", *d);
    out->append("<value><double>");
    out->append(buf, static_cast<size_t>(n));
    out->append("</double></value>");
  } else if (const auto* b = std::get_if<bool>(&data_)) {
    out->append(*b ? "<value><boolean>1</boolean></value>"
                   : "<value><boolean>0</boolean></value>");
  } else if (const auto* s = std::get_if<std::string>(&data_)) {
    if (s->empty()) {
      out->append("<value><string/></value>");
    } else {
      out->append("<value><string>");
      AppendEscaped(*s, out);
      out->append("</string></value>");
    }
  } else if (const auto* array = std::get_if<XmlRpcArray>(&data_)) {
    out->append("<value><array>");
    if (array->empty()) {
      out->append("<data/>");
    } else {
      out->append("<data>");
      for (const XmlRpcValue& item : *array) item.AppendXml(out);
      out->append("</data>");
    }
    out->append("</array></value>");
  } else if (const auto* record = std::get_if<XmlRpcStruct>(&data_)) {
    if (record->empty()) {
      out->append("<value><struct/></value>");
    } else {
      out->append("<value><struct>");
      for (const auto& [key, member] : *record) {
        if (key.empty()) {
          out->append("<member><name/>");
        } else {
          out->append("<member><name>");
          AppendEscaped(key, out);
          out->append("</name>");
        }
        member.AppendXml(out);
        out->append("</member>");
      }
      out->append("</struct></value>");
    }
  } else if (const auto* rs = std::get_if<ResultSetPtr>(&data_)) {
    AppendResultSetXml(**rs, out);
  }
}

size_t XmlRpcValue::EstimateXmlSize() const {
  if (const auto* s = std::get_if<std::string>(&data_)) {
    return 34 + s->size() + s->size() / 8;
  }
  if (const auto* array = std::get_if<XmlRpcArray>(&data_)) {
    size_t total = 30;
    for (const XmlRpcValue& item : *array) total += item.EstimateXmlSize();
    return total;
  }
  if (const auto* record = std::get_if<XmlRpcStruct>(&data_)) {
    size_t total = 32;
    for (const auto& [key, member] : *record) {
      total += 30 + key.size() + member.EstimateXmlSize();
    }
    return total;
  }
  if (const auto* rs = std::get_if<ResultSetPtr>(&data_)) {
    size_t total = 140;
    for (const std::string& c : (*rs)->columns) total += 34 + c.size();
    for (const storage::Row& row : (*rs)->rows) {
      total += 30;
      for (const Value& cell : row) total += EstimateCellXmlSize(cell);
    }
    return total;
  }
  return 52;  // nil / int / double / bool upper bound
}

bool XmlRpcValue::operator==(const XmlRpcValue& other) const {
  if (!is_result_set() && !other.is_result_set()) {
    return data_ == other.data_;
  }
  // A wrapped result set and its struct boxing are the same wire value;
  // compare through the canonical serialization.
  std::string a, b;
  AppendXml(&a);
  other.AppendXml(&b);
  return a == b;
}

size_t XmlRpcValue::WireSize() const {
  std::string out;
  out.reserve(EstimateXmlSize());
  AppendXml(&out);
  return out.size();
}

// ---- ResultSet interop ----

XmlRpcValue ResultSetToRpc(const storage::ResultSet& rs) {
  return XmlRpcValue(std::make_shared<storage::ResultSet>(rs));
}

XmlRpcValue ResultSetToRpc(storage::ResultSet&& rs) {
  return XmlRpcValue(std::make_shared<storage::ResultSet>(std::move(rs)));
}

Result<storage::ResultSet> RpcToResultSet(const XmlRpcValue& value) {
  if (const storage::ResultSet* native = value.result_set()) return *native;
  storage::ResultSet rs;
  GRIDDB_ASSIGN_OR_RETURN(const XmlRpcValue* columns, value.Member("columns"));
  GRIDDB_ASSIGN_OR_RETURN(const XmlRpcArray* column_items, columns->AsArray());
  for (const XmlRpcValue& c : *column_items) {
    GRIDDB_ASSIGN_OR_RETURN(std::string name, c.AsString());
    rs.columns.push_back(std::move(name));
  }
  GRIDDB_ASSIGN_OR_RETURN(const XmlRpcValue* rows, value.Member("rows"));
  GRIDDB_ASSIGN_OR_RETURN(const XmlRpcArray* row_items, rows->AsArray());
  for (const XmlRpcValue& row_value : *row_items) {
    GRIDDB_ASSIGN_OR_RETURN(const XmlRpcArray* cells, row_value.AsArray());
    storage::Row row;
    row.reserve(cells->size());
    for (const XmlRpcValue& cell : *cells) {
      if (cell.is_empty()) row.push_back(Value::Null());
      else if (cell.is_int()) row.push_back(Value(cell.AsInt().value()));
      else if (cell.is_double()) row.push_back(Value(cell.AsDouble().value()));
      else if (cell.is_bool()) row.push_back(Value(cell.AsBool().value()));
      else if (cell.is_string()) row.push_back(Value(cell.AsString().value()));
      else return TypeError("unsupported cell type in result set");
    }
    rs.rows.push_back(std::move(row));
  }
  return rs;
}

// ---- message codec ----

namespace {
xml::WriteOptions CompactXml() {
  xml::WriteOptions options;
  options.pretty = false;
  return options;
}
}  // namespace

namespace {
std::string HexU64(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%llx",
                static_cast<unsigned long long>(v));
  return buf;
}

bool ParseHexU64(std::string_view text, uint64_t* out) {
  if (text.empty() || text.size() > 16) return false;
  uint64_t value = 0;
  for (char c : text) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      return false;
    }
    value = (value << 4) | static_cast<uint64_t>(digit);
  }
  *out = value;
  return true;
}
}  // namespace

std::string EncodeRequest(const RpcRequest& request) {
  xml::Node root("methodCall");
  root.AddTextChild("methodName", request.method);
  if (!request.session_token.empty()) {
    root.AddTextChild("sessionToken", request.session_token);
  }
  // Sparse: untraced requests carry no trace element at all.
  if (request.trace_id != 0) {
    root.AddTextChild("traceContext", HexU64(request.trace_id) + ":" +
                                          HexU64(request.parent_span_id));
  }
  // Sparse: calls without a deadline carry no budget element at all.
  if (request.deadline_ms > 0) {
    root.AddTextChild("deadlineMs", StrFormat("%.17g", request.deadline_ms));
  }
  // Sparse: anonymous-tenant calls carry no tenant element at all.
  if (!request.tenant.empty()) {
    root.AddTextChild("tenant", request.tenant);
  }
  // Sparse: clients that never negotiated binary framing carry no
  // wireAccept element at all (the byte-identity invariant again).
  if (!request.wire_accept.empty()) {
    root.AddTextChild("wireAccept", request.wire_accept);
  }
  xml::Node& params = root.AddChild("params");
  for (const XmlRpcValue& param : request.params) {
    xml::Node& param_node = params.AddChild("param");
    param_node.children.push_back(std::make_unique<xml::Node>(param.ToXml()));
  }
  return xml::Write(root, CompactXml());
}

Result<RpcRequest> DecodeRequest(std::string_view raw) {
  GRIDDB_ASSIGN_OR_RETURN(std::unique_ptr<xml::Node> doc, xml::Parse(raw));
  if (doc->name != "methodCall") {
    return ParseError("expected <methodCall> document");
  }
  RpcRequest request;
  request.method = doc->ChildText("methodName");
  if (request.method.empty()) return ParseError("missing <methodName>");
  request.session_token = doc->ChildText("sessionToken");
  std::string trace = doc->ChildText("traceContext");
  if (!trace.empty()) {
    size_t colon = trace.find(':');
    if (colon == std::string::npos ||
        !ParseHexU64(std::string_view(trace).substr(0, colon),
                     &request.trace_id) ||
        !ParseHexU64(std::string_view(trace).substr(colon + 1),
                     &request.parent_span_id)) {
      return ParseError("malformed <traceContext> '" + trace + "'");
    }
  }
  std::string deadline = doc->ChildText("deadlineMs");
  if (!deadline.empty()) {
    if (!ParseDouble(deadline, &request.deadline_ms) ||
        request.deadline_ms < 0) {
      return ParseError("malformed <deadlineMs> '" + deadline + "'");
    }
  }
  request.tenant = doc->ChildText("tenant");
  request.wire_accept = doc->ChildText("wireAccept");
  if (const xml::Node* params = doc->Child("params")) {
    for (const auto& param : params->children) {
      if (param->name != "param" || param->children.empty()) {
        return ParseError("malformed <param>");
      }
      GRIDDB_ASSIGN_OR_RETURN(XmlRpcValue value,
                              XmlRpcValue::FromXml(*param->children[0]));
      request.params.push_back(std::move(value));
    }
  }
  return request;
}

std::string EncodeResponse(const XmlRpcValue& value) {
  // Single-pass, single-reserve encoder; byte-identical to serializing
  // the Node tree in compact mode (guarded by wire_codec_test).
  static constexpr std::string_view kPrefix =
      "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
      "<methodResponse><params><param>";
  static constexpr std::string_view kSuffix = "</param></params></methodResponse>";
  std::string out;
  out.reserve(kPrefix.size() + kSuffix.size() + value.EstimateXmlSize());
  out.append(kPrefix);
  value.AppendXml(&out);
  out.append(kSuffix);
  return out;
}

std::string EncodeFault(const Status& status) {
  xml::Node root("methodResponse");
  xml::Node& fault = root.AddChild("fault");
  XmlRpcStruct detail;
  detail["faultCode"] = static_cast<int64_t>(status.code());
  detail["faultString"] = std::string(StatusCodeName(status.code())) + ": " +
                          status.message();
  fault.children.push_back(
      std::make_unique<xml::Node>(XmlRpcValue(detail).ToXml()));
  return xml::Write(root, CompactXml());
}

Result<XmlRpcValue> DecodeResponse(std::string_view raw) {
  GRIDDB_ASSIGN_OR_RETURN(std::unique_ptr<xml::Node> doc, xml::Parse(raw));
  if (doc->name != "methodResponse") {
    return ParseError("expected <methodResponse> document");
  }
  if (const xml::Node* fault = doc->Child("fault")) {
    if (fault->children.empty()) return ParseError("empty <fault>");
    GRIDDB_ASSIGN_OR_RETURN(XmlRpcValue detail,
                            XmlRpcValue::FromXml(*fault->children[0]));
    auto code_member = detail.Member("faultCode");
    auto text_member = detail.Member("faultString");
    StatusCode code = StatusCode::kInternal;
    std::string message = "remote fault";
    if (code_member.ok()) {
      auto code_value = (*code_member)->AsInt();
      if (code_value.ok()) code = static_cast<StatusCode>(*code_value);
    }
    if (text_member.ok()) {
      auto text = (*text_member)->AsString();
      if (text.ok()) message = *text;
    }
    if (code == StatusCode::kOk) code = StatusCode::kInternal;
    return Status(code, message);
  }
  const xml::Node* params = doc->Child("params");
  if (!params || params->children.empty() ||
      params->children[0]->children.empty()) {
    return ParseError("response missing <params>");
  }
  return XmlRpcValue::FromXml(*params->children[0]->children[0]);
}

}  // namespace griddb::rpc
