#include "griddb/rpc/xmlrpc_value.h"

#include <cstdio>

#include "griddb/util/strings.h"

namespace griddb::rpc {

using storage::DataType;
using storage::Value;

Result<int64_t> XmlRpcValue::AsInt() const {
  if (const auto* v = std::get_if<int64_t>(&data_)) return *v;
  return TypeError("XML-RPC value is not an int");
}

Result<double> XmlRpcValue::AsDouble() const {
  if (const auto* v = std::get_if<double>(&data_)) return *v;
  if (const auto* v = std::get_if<int64_t>(&data_)) {
    return static_cast<double>(*v);
  }
  return TypeError("XML-RPC value is not a double");
}

Result<bool> XmlRpcValue::AsBool() const {
  if (const auto* v = std::get_if<bool>(&data_)) return *v;
  return TypeError("XML-RPC value is not a boolean");
}

Result<std::string> XmlRpcValue::AsString() const {
  if (const auto* v = std::get_if<std::string>(&data_)) return *v;
  return TypeError("XML-RPC value is not a string");
}

Result<const XmlRpcArray*> XmlRpcValue::AsArray() const {
  if (const auto* v = std::get_if<XmlRpcArray>(&data_)) return v;
  return TypeError("XML-RPC value is not an array");
}

Result<const XmlRpcStruct*> XmlRpcValue::AsStruct() const {
  if (const auto* v = std::get_if<XmlRpcStruct>(&data_)) return v;
  return TypeError("XML-RPC value is not a struct");
}

Result<const XmlRpcValue*> XmlRpcValue::Member(const std::string& key) const {
  GRIDDB_ASSIGN_OR_RETURN(const XmlRpcStruct* s, AsStruct());
  auto it = s->find(key);
  if (it == s->end()) return NotFound("struct member '" + key + "' absent");
  return &it->second;
}

xml::Node XmlRpcValue::ToXml() const {
  xml::Node value_node("value");
  if (is_empty()) {
    value_node.AddChild("nil");
  } else if (const auto* i = std::get_if<int64_t>(&data_)) {
    value_node.AddTextChild("i4", std::to_string(*i));
  } else if (const auto* d = std::get_if<double>(&data_)) {
    value_node.AddTextChild("double", StrFormat("%.17g", *d));
  } else if (const auto* b = std::get_if<bool>(&data_)) {
    value_node.AddTextChild("boolean", *b ? "1" : "0");
  } else if (const auto* s = std::get_if<std::string>(&data_)) {
    value_node.AddTextChild("string", *s);
  } else if (const auto* array = std::get_if<XmlRpcArray>(&data_)) {
    xml::Node& data = value_node.AddChild("array").AddChild("data");
    for (const XmlRpcValue& item : *array) {
      data.children.push_back(
          std::make_unique<xml::Node>(item.ToXml()));
    }
  } else if (const auto* record = std::get_if<XmlRpcStruct>(&data_)) {
    xml::Node& struct_node = value_node.AddChild("struct");
    for (const auto& [key, member] : *record) {
      xml::Node& member_node = struct_node.AddChild("member");
      member_node.AddTextChild("name", key);
      member_node.children.push_back(
          std::make_unique<xml::Node>(member.ToXml()));
    }
  }
  return value_node;
}

Result<XmlRpcValue> XmlRpcValue::FromXml(const xml::Node& value_node) {
  if (value_node.name != "value") {
    return ParseError("expected <value> element, got <" + value_node.name + ">");
  }
  // Bare text inside <value> is a string per the XML-RPC spec.
  if (value_node.children.empty()) return XmlRpcValue(value_node.text);

  const xml::Node& type_node = *value_node.children[0];
  const std::string& tag = type_node.name;
  if (tag == "nil") return XmlRpcValue();
  if (tag == "i4" || tag == "int") {
    int64_t v = 0;
    if (!ParseInt64(type_node.text, &v)) {
      return ParseError("bad XML-RPC int '" + type_node.text + "'");
    }
    return XmlRpcValue(v);
  }
  if (tag == "double") {
    double v = 0;
    if (!ParseDouble(type_node.text, &v)) {
      return ParseError("bad XML-RPC double '" + type_node.text + "'");
    }
    return XmlRpcValue(v);
  }
  if (tag == "boolean") {
    if (type_node.text == "1") return XmlRpcValue(true);
    if (type_node.text == "0") return XmlRpcValue(false);
    return ParseError("bad XML-RPC boolean '" + type_node.text + "'");
  }
  if (tag == "string") return XmlRpcValue(type_node.text);
  if (tag == "array") {
    const xml::Node* data = type_node.Child("data");
    if (!data) return ParseError("<array> without <data>");
    XmlRpcArray array;
    array.reserve(data->children.size());
    for (const auto& child : data->children) {
      GRIDDB_ASSIGN_OR_RETURN(XmlRpcValue item, FromXml(*child));
      array.push_back(std::move(item));
    }
    return XmlRpcValue(std::move(array));
  }
  if (tag == "struct") {
    XmlRpcStruct record;
    for (const auto& member : type_node.children) {
      if (member->name != "member") {
        return ParseError("<struct> child is not <member>");
      }
      const xml::Node* name = member->Child("name");
      const xml::Node* value = member->Child("value");
      if (!name || !value) return ParseError("<member> missing name/value");
      GRIDDB_ASSIGN_OR_RETURN(XmlRpcValue item, FromXml(*value));
      record[name->text] = std::move(item);
    }
    return XmlRpcValue(std::move(record));
  }
  return ParseError("unknown XML-RPC type <" + tag + ">");
}

size_t XmlRpcValue::WireSize() const {
  xml::WriteOptions options;
  options.pretty = false;
  options.declaration = false;
  return xml::Write(ToXml(), options).size();
}

// ---- ResultSet interop ----

XmlRpcValue ResultSetToRpc(const storage::ResultSet& rs) {
  XmlRpcArray columns;
  columns.reserve(rs.columns.size());
  for (const std::string& c : rs.columns) columns.emplace_back(c);

  XmlRpcArray rows;
  rows.reserve(rs.rows.size());
  for (const storage::Row& row : rs.rows) {
    XmlRpcArray cells;
    cells.reserve(row.size());
    for (const Value& cell : row) {
      switch (cell.type()) {
        case DataType::kNull: cells.emplace_back(); break;
        case DataType::kInt64: cells.emplace_back(cell.AsInt64Strict()); break;
        case DataType::kDouble: cells.emplace_back(cell.AsDoubleStrict()); break;
        case DataType::kBool: cells.emplace_back(cell.AsBoolStrict()); break;
        case DataType::kString: cells.emplace_back(cell.AsStringStrict()); break;
      }
    }
    rows.emplace_back(std::move(cells));
  }
  XmlRpcStruct out;
  out["columns"] = std::move(columns);
  out["rows"] = std::move(rows);
  return out;
}

Result<storage::ResultSet> RpcToResultSet(const XmlRpcValue& value) {
  storage::ResultSet rs;
  GRIDDB_ASSIGN_OR_RETURN(const XmlRpcValue* columns, value.Member("columns"));
  GRIDDB_ASSIGN_OR_RETURN(const XmlRpcArray* column_items, columns->AsArray());
  for (const XmlRpcValue& c : *column_items) {
    GRIDDB_ASSIGN_OR_RETURN(std::string name, c.AsString());
    rs.columns.push_back(std::move(name));
  }
  GRIDDB_ASSIGN_OR_RETURN(const XmlRpcValue* rows, value.Member("rows"));
  GRIDDB_ASSIGN_OR_RETURN(const XmlRpcArray* row_items, rows->AsArray());
  for (const XmlRpcValue& row_value : *row_items) {
    GRIDDB_ASSIGN_OR_RETURN(const XmlRpcArray* cells, row_value.AsArray());
    storage::Row row;
    row.reserve(cells->size());
    for (const XmlRpcValue& cell : *cells) {
      if (cell.is_empty()) row.push_back(Value::Null());
      else if (cell.is_int()) row.push_back(Value(cell.AsInt().value()));
      else if (cell.is_double()) row.push_back(Value(cell.AsDouble().value()));
      else if (cell.is_bool()) row.push_back(Value(cell.AsBool().value()));
      else if (cell.is_string()) row.push_back(Value(cell.AsString().value()));
      else return TypeError("unsupported cell type in result set");
    }
    rs.rows.push_back(std::move(row));
  }
  return rs;
}

// ---- message codec ----

namespace {
xml::WriteOptions CompactXml() {
  xml::WriteOptions options;
  options.pretty = false;
  return options;
}
}  // namespace

namespace {
std::string HexU64(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%llx",
                static_cast<unsigned long long>(v));
  return buf;
}

bool ParseHexU64(std::string_view text, uint64_t* out) {
  if (text.empty() || text.size() > 16) return false;
  uint64_t value = 0;
  for (char c : text) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      return false;
    }
    value = (value << 4) | static_cast<uint64_t>(digit);
  }
  *out = value;
  return true;
}
}  // namespace

std::string EncodeRequest(const RpcRequest& request) {
  xml::Node root("methodCall");
  root.AddTextChild("methodName", request.method);
  if (!request.session_token.empty()) {
    root.AddTextChild("sessionToken", request.session_token);
  }
  // Sparse: untraced requests carry no trace element at all.
  if (request.trace_id != 0) {
    root.AddTextChild("traceContext", HexU64(request.trace_id) + ":" +
                                          HexU64(request.parent_span_id));
  }
  // Sparse: calls without a deadline carry no budget element at all.
  if (request.deadline_ms > 0) {
    root.AddTextChild("deadlineMs", StrFormat("%.17g", request.deadline_ms));
  }
  // Sparse: anonymous-tenant calls carry no tenant element at all.
  if (!request.tenant.empty()) {
    root.AddTextChild("tenant", request.tenant);
  }
  xml::Node& params = root.AddChild("params");
  for (const XmlRpcValue& param : request.params) {
    xml::Node& param_node = params.AddChild("param");
    param_node.children.push_back(std::make_unique<xml::Node>(param.ToXml()));
  }
  return xml::Write(root, CompactXml());
}

Result<RpcRequest> DecodeRequest(std::string_view raw) {
  GRIDDB_ASSIGN_OR_RETURN(std::unique_ptr<xml::Node> doc, xml::Parse(raw));
  if (doc->name != "methodCall") {
    return ParseError("expected <methodCall> document");
  }
  RpcRequest request;
  request.method = doc->ChildText("methodName");
  if (request.method.empty()) return ParseError("missing <methodName>");
  request.session_token = doc->ChildText("sessionToken");
  std::string trace = doc->ChildText("traceContext");
  if (!trace.empty()) {
    size_t colon = trace.find(':');
    if (colon == std::string::npos ||
        !ParseHexU64(std::string_view(trace).substr(0, colon),
                     &request.trace_id) ||
        !ParseHexU64(std::string_view(trace).substr(colon + 1),
                     &request.parent_span_id)) {
      return ParseError("malformed <traceContext> '" + trace + "'");
    }
  }
  std::string deadline = doc->ChildText("deadlineMs");
  if (!deadline.empty()) {
    if (!ParseDouble(deadline, &request.deadline_ms) ||
        request.deadline_ms < 0) {
      return ParseError("malformed <deadlineMs> '" + deadline + "'");
    }
  }
  request.tenant = doc->ChildText("tenant");
  if (const xml::Node* params = doc->Child("params")) {
    for (const auto& param : params->children) {
      if (param->name != "param" || param->children.empty()) {
        return ParseError("malformed <param>");
      }
      GRIDDB_ASSIGN_OR_RETURN(XmlRpcValue value,
                              XmlRpcValue::FromXml(*param->children[0]));
      request.params.push_back(std::move(value));
    }
  }
  return request;
}

std::string EncodeResponse(const XmlRpcValue& value) {
  xml::Node root("methodResponse");
  xml::Node& param = root.AddChild("params").AddChild("param");
  param.children.push_back(std::make_unique<xml::Node>(value.ToXml()));
  return xml::Write(root, CompactXml());
}

std::string EncodeFault(const Status& status) {
  xml::Node root("methodResponse");
  xml::Node& fault = root.AddChild("fault");
  XmlRpcStruct detail;
  detail["faultCode"] = static_cast<int64_t>(status.code());
  detail["faultString"] = std::string(StatusCodeName(status.code())) + ": " +
                          status.message();
  fault.children.push_back(
      std::make_unique<xml::Node>(XmlRpcValue(detail).ToXml()));
  return xml::Write(root, CompactXml());
}

Result<XmlRpcValue> DecodeResponse(std::string_view raw) {
  GRIDDB_ASSIGN_OR_RETURN(std::unique_ptr<xml::Node> doc, xml::Parse(raw));
  if (doc->name != "methodResponse") {
    return ParseError("expected <methodResponse> document");
  }
  if (const xml::Node* fault = doc->Child("fault")) {
    if (fault->children.empty()) return ParseError("empty <fault>");
    GRIDDB_ASSIGN_OR_RETURN(XmlRpcValue detail,
                            XmlRpcValue::FromXml(*fault->children[0]));
    auto code_member = detail.Member("faultCode");
    auto text_member = detail.Member("faultString");
    StatusCode code = StatusCode::kInternal;
    std::string message = "remote fault";
    if (code_member.ok()) {
      auto code_value = (*code_member)->AsInt();
      if (code_value.ok()) code = static_cast<StatusCode>(*code_value);
    }
    if (text_member.ok()) {
      auto text = (*text_member)->AsString();
      if (text.ok()) message = *text;
    }
    if (code == StatusCode::kOk) code = StatusCode::kInternal;
    return Status(code, message);
  }
  const xml::Node* params = doc->Child("params");
  if (!params || params->children.empty() ||
      params->children[0]->children.empty()) {
    return ParseError("response missing <params>");
  }
  return XmlRpcValue::FromXml(*params->children[0]->children[0]);
}

}  // namespace griddb::rpc
