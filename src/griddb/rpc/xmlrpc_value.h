// XML-RPC value model and wire codec.
//
// Clarens exposes its services over XML-RPC; JClarens (the Java server the
// paper builds on) keeps the same wire format. We implement the classic
// <methodCall>/<methodResponse> vocabulary: i4/int, double, boolean,
// string, array and struct. (dateTime and base64 are not needed by any of
// the services in the prototype.)
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "griddb/storage/result_set.h"
#include "griddb/util/status.h"
#include "griddb/xml/xml.h"

namespace griddb::rpc {

class XmlRpcValue;
using XmlRpcArray = std::vector<XmlRpcValue>;
using XmlRpcStruct = std::map<std::string, XmlRpcValue>;
/// Result sets ride inside XmlRpcValue unconverted (shared, so wrapping
/// is O(1) and responses fanning out to several encoders share one
/// copy). The XML writer renders a wrapped set exactly as the classic
/// struct{columns,rows} form, so the text wire format is unchanged; the
/// binary codec (rpc/wire) serializes the rows columnar without ever
/// boxing cells into per-value variants.
using ResultSetPtr = std::shared_ptr<storage::ResultSet>;

class XmlRpcValue {
 public:
  XmlRpcValue() : data_(std::monostate{}) {}
  XmlRpcValue(int64_t v) : data_(v) {}  // NOLINT(google-explicit-constructor)
  XmlRpcValue(int v) : data_(static_cast<int64_t>(v)) {}  // NOLINT
  XmlRpcValue(double v) : data_(v) {}   // NOLINT
  XmlRpcValue(bool v) : data_(v) {}     // NOLINT
  XmlRpcValue(std::string v) : data_(std::move(v)) {}  // NOLINT
  XmlRpcValue(const char* v) : data_(std::string(v)) {}  // NOLINT
  XmlRpcValue(XmlRpcArray v) : data_(std::move(v)) {}    // NOLINT
  XmlRpcValue(XmlRpcStruct v) : data_(std::move(v)) {}   // NOLINT
  XmlRpcValue(ResultSetPtr v) : data_(std::move(v)) {}   // NOLINT

  bool is_empty() const { return std::holds_alternative<std::monostate>(data_); }
  bool is_int() const { return std::holds_alternative<int64_t>(data_); }
  bool is_double() const { return std::holds_alternative<double>(data_); }
  bool is_bool() const { return std::holds_alternative<bool>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }
  bool is_array() const { return std::holds_alternative<XmlRpcArray>(data_); }
  bool is_struct() const { return std::holds_alternative<XmlRpcStruct>(data_); }
  bool is_result_set() const {
    return std::holds_alternative<ResultSetPtr>(data_);
  }

  Result<int64_t> AsInt() const;
  Result<double> AsDouble() const;  ///< ints widen to double
  Result<bool> AsBool() const;
  Result<std::string> AsString() const;
  Result<const XmlRpcArray*> AsArray() const;
  Result<const XmlRpcStruct*> AsStruct() const;

  /// Struct member access; error when not a struct or key absent.
  Result<const XmlRpcValue*> Member(const std::string& key) const;

  /// The wrapped result set (nullptr unless is_result_set()).
  const storage::ResultSet* result_set() const {
    const auto* p = std::get_if<ResultSetPtr>(&data_);
    return p ? p->get() : nullptr;
  }
  ResultSetPtr result_set_ptr() const {
    const auto* p = std::get_if<ResultSetPtr>(&data_);
    return p ? *p : nullptr;
  }

  /// Serializes this value as a <value>...</value> element.
  xml::Node ToXml() const;
  static Result<XmlRpcValue> FromXml(const xml::Node& value_node);

  /// Appends this value's compact <value>...</value> serialization to
  /// `out` directly — no Node tree, no per-cell boxing, escaping only
  /// where string content can need it. Byte-identical to
  /// xml::Write(ToXml(), {pretty=false, declaration=false}).
  void AppendXml(std::string* out) const;
  /// Upper-bound-ish size estimate for AppendXml (single up-front
  /// reserve; an underestimate merely costs a realloc).
  size_t EstimateXmlSize() const;

  /// Approximate wire footprint: the serialized XML size.
  size_t WireSize() const;

  /// Structural equality. A wrapped result set compares equal to the
  /// classic struct{columns,rows} encoding of the same data (both sides
  /// are compared via their canonical XML serialization when a wrapped
  /// set is involved).
  bool operator==(const XmlRpcValue& other) const;

 private:
  std::variant<std::monostate, int64_t, double, bool, std::string, XmlRpcArray,
               XmlRpcStruct, ResultSetPtr>
      data_;
};

// ---- storage interop: result sets cross the wire as struct{columns,rows}
// on the XML codec, or as typed columns on the negotiated binary codec.
// Both forms decode back via RpcToResultSet.

XmlRpcValue ResultSetToRpc(const storage::ResultSet& rs);
XmlRpcValue ResultSetToRpc(storage::ResultSet&& rs);
Result<storage::ResultSet> RpcToResultSet(const XmlRpcValue& value);

// ---- message codec ----

struct RpcRequest {
  std::string method;
  XmlRpcArray params;
  std::string session_token;  ///< Carried as a header param; empty = none.
  /// Distributed-trace context (obs/trace.h), carried as a header element
  /// like the session token. Encoded ONLY when trace_id != 0, so requests
  /// from untraced clients are byte-identical to the pre-tracing wire
  /// format (the Table 1 / Fig 4-6 invariant).
  uint64_t trace_id = 0;
  uint64_t parent_span_id = 0;
  /// Remaining query budget in virtual ms, carried as a header element
  /// like the trace context. Encoded ONLY when > 0, so calls without a
  /// deadline stay byte-identical to the pre-deadline wire format. The
  /// value is relative (a budget, not an absolute instant): hosts share
  /// one virtual clock here, but real deployments do not share wall
  /// clocks, and a relative budget survives clock skew.
  double deadline_ms = 0;
  /// Requesting tenant identity, carried hop-by-hop as a header element.
  /// Encoded ONLY when non-empty: the default anonymous tenant sends no
  /// <tenant> element, so untenanted traffic stays byte-identical to the
  /// pre-RBAC wire format.
  std::string tenant;
  /// Wire capabilities the client accepts for THIS call's response
  /// (rpc/wire.h caps string, e.g. "binary,lz4,stream"), the result of
  /// the connect-time handshake. Encoded ONLY when non-empty, so a
  /// client that never negotiated — or a server that never advertised —
  /// keeps the request bytes identical to the XML-only wire format.
  std::string wire_accept;
};

std::string EncodeRequest(const RpcRequest& request);
Result<RpcRequest> DecodeRequest(std::string_view raw);

/// Successful response payload.
std::string EncodeResponse(const XmlRpcValue& value);
/// Fault response (code derived from StatusCode).
std::string EncodeFault(const Status& status);
/// Decodes either form; faults come back as error Status.
Result<XmlRpcValue> DecodeResponse(std::string_view raw);

}  // namespace griddb::rpc
