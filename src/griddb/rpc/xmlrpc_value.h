// XML-RPC value model and wire codec.
//
// Clarens exposes its services over XML-RPC; JClarens (the Java server the
// paper builds on) keeps the same wire format. We implement the classic
// <methodCall>/<methodResponse> vocabulary: i4/int, double, boolean,
// string, array and struct. (dateTime and base64 are not needed by any of
// the services in the prototype.)
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "griddb/storage/result_set.h"
#include "griddb/util/status.h"
#include "griddb/xml/xml.h"

namespace griddb::rpc {

class XmlRpcValue;
using XmlRpcArray = std::vector<XmlRpcValue>;
using XmlRpcStruct = std::map<std::string, XmlRpcValue>;

class XmlRpcValue {
 public:
  XmlRpcValue() : data_(std::monostate{}) {}
  XmlRpcValue(int64_t v) : data_(v) {}  // NOLINT(google-explicit-constructor)
  XmlRpcValue(int v) : data_(static_cast<int64_t>(v)) {}  // NOLINT
  XmlRpcValue(double v) : data_(v) {}   // NOLINT
  XmlRpcValue(bool v) : data_(v) {}     // NOLINT
  XmlRpcValue(std::string v) : data_(std::move(v)) {}  // NOLINT
  XmlRpcValue(const char* v) : data_(std::string(v)) {}  // NOLINT
  XmlRpcValue(XmlRpcArray v) : data_(std::move(v)) {}    // NOLINT
  XmlRpcValue(XmlRpcStruct v) : data_(std::move(v)) {}   // NOLINT

  bool is_empty() const { return std::holds_alternative<std::monostate>(data_); }
  bool is_int() const { return std::holds_alternative<int64_t>(data_); }
  bool is_double() const { return std::holds_alternative<double>(data_); }
  bool is_bool() const { return std::holds_alternative<bool>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }
  bool is_array() const { return std::holds_alternative<XmlRpcArray>(data_); }
  bool is_struct() const { return std::holds_alternative<XmlRpcStruct>(data_); }

  Result<int64_t> AsInt() const;
  Result<double> AsDouble() const;  ///< ints widen to double
  Result<bool> AsBool() const;
  Result<std::string> AsString() const;
  Result<const XmlRpcArray*> AsArray() const;
  Result<const XmlRpcStruct*> AsStruct() const;

  /// Struct member access; error when not a struct or key absent.
  Result<const XmlRpcValue*> Member(const std::string& key) const;

  /// Serializes this value as a <value>...</value> element.
  xml::Node ToXml() const;
  static Result<XmlRpcValue> FromXml(const xml::Node& value_node);

  /// Approximate wire footprint: the serialized XML size.
  size_t WireSize() const;

  bool operator==(const XmlRpcValue& other) const { return data_ == other.data_; }

 private:
  std::variant<std::monostate, int64_t, double, bool, std::string, XmlRpcArray,
               XmlRpcStruct>
      data_;
};

// ---- storage interop: result sets cross the wire as struct{columns,rows}.

XmlRpcValue ResultSetToRpc(const storage::ResultSet& rs);
Result<storage::ResultSet> RpcToResultSet(const XmlRpcValue& value);

// ---- message codec ----

struct RpcRequest {
  std::string method;
  XmlRpcArray params;
  std::string session_token;  ///< Carried as a header param; empty = none.
  /// Distributed-trace context (obs/trace.h), carried as a header element
  /// like the session token. Encoded ONLY when trace_id != 0, so requests
  /// from untraced clients are byte-identical to the pre-tracing wire
  /// format (the Table 1 / Fig 4-6 invariant).
  uint64_t trace_id = 0;
  uint64_t parent_span_id = 0;
  /// Remaining query budget in virtual ms, carried as a header element
  /// like the trace context. Encoded ONLY when > 0, so calls without a
  /// deadline stay byte-identical to the pre-deadline wire format. The
  /// value is relative (a budget, not an absolute instant): hosts share
  /// one virtual clock here, but real deployments do not share wall
  /// clocks, and a relative budget survives clock skew.
  double deadline_ms = 0;
  /// Requesting tenant identity, carried hop-by-hop as a header element.
  /// Encoded ONLY when non-empty: the default anonymous tenant sends no
  /// <tenant> element, so untenanted traffic stays byte-identical to the
  /// pre-RBAC wire format.
  std::string tenant;
};

std::string EncodeRequest(const RpcRequest& request);
Result<RpcRequest> DecodeRequest(std::string_view raw);

/// Successful response payload.
std::string EncodeResponse(const XmlRpcValue& value);
/// Fault response (code derived from StatusCode).
std::string EncodeFault(const Status& status);
/// Decodes either form; faults come back as error Status.
Result<XmlRpcValue> DecodeResponse(std::string_view raw);

}  // namespace griddb::rpc
