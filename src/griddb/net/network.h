// Simulated network: hosts, links and byte-accounted transfer costs.
//
// The paper's testbed is two Pentium-IV machines on a 100 Mbps Ethernet
// LAN (§5.2). We reproduce the *shape* of its measurements on a virtual
// clock: every logical operation (RPC, ETL stream, result shipment)
// accumulates simulated milliseconds derived from link latency, link
// bandwidth and per-operation overheads. Real CPU time of the in-process
// work is measured separately by the bench harness.
//
// The model is deliberately simple — latency + size/bandwidth, plus fixed
// connection-setup and authentication charges — because those are exactly
// the terms the paper uses to explain its own numbers ("determining which
// server to connect to using RLS, connecting and authenticating with
// several databases or servers, and integrating the results").
#pragma once

#include <algorithm>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "griddb/net/fault.h"
#include "griddb/util/status.h"

namespace griddb::net {

/// One directed link's characteristics.
struct LinkSpec {
  double latency_ms = 0.3;        ///< One-way propagation + stack latency.
  double bandwidth_mbps = 100.0;  ///< Nominal line rate, megabits/s.
  double efficiency = 0.95;       ///< Fraction of line rate achievable
                                  ///< (framing, TCP overhead).

  /// Milliseconds to move `bytes` across this link (one message).
  double TransferMs(size_t bytes) const {
    double effective_bytes_per_ms =
        bandwidth_mbps * efficiency * 1e6 / 8.0 / 1000.0;
    return latency_ms + static_cast<double>(bytes) / effective_bytes_per_ms;
  }

  static LinkSpec Lan100Mbps() { return {0.3, 100.0, 0.95}; }
  static LinkSpec Wan() { return {45.0, 10.0, 0.80}; }
  static LinkSpec Loopback() { return {0.02, 10000.0, 1.0}; }
};

/// Accumulates simulated milliseconds along one logical operation path.
/// Sequential work adds; parallel fan-out contributes the maximum of the
/// branches (the paper's enhanced driver runs sub-queries concurrently).
class Cost {
 public:
  void AddMs(double ms) { total_ms_ += std::max(0.0, ms); }
  void AddSequential(const Cost& other) { total_ms_ += other.total_ms_; }

  /// Joins parallel branches: the slowest branch gates completion.
  void AddParallel(const std::vector<Cost>& branches) {
    double slowest = 0;
    for (const Cost& branch : branches) {
      slowest = std::max(slowest, branch.total_ms_);
    }
    total_ms_ += slowest;
  }

  double total_ms() const { return total_ms_; }

 private:
  double total_ms_ = 0;
};

/// Named hosts and the links between them. Thread-safe (read-mostly).
class Network {
 public:
  Network() = default;

  void AddHost(const std::string& name);
  bool HasHost(const std::string& name) const;
  std::vector<std::string> Hosts() const;

  /// Sets the (symmetric) link between two hosts.
  Status SetLink(const std::string& a, const std::string& b, LinkSpec spec);
  /// Link used for host pairs without an explicit SetLink.
  void SetDefaultLink(LinkSpec spec);

  /// The effective link a -> b. Same-host traffic uses the loopback spec.
  Result<LinkSpec> GetLink(const std::string& a, const std::string& b) const;

  /// Convenience: milliseconds to transfer `bytes` from a to b.
  Result<double> TransferMs(const std::string& a, const std::string& b,
                            size_t bytes) const;

  /// One request/response exchange of the given payload sizes.
  Result<double> RoundTripMs(const std::string& a, const std::string& b,
                             size_t request_bytes, size_t response_bytes) const;

  // ---- fault injection (see fault.h) ----

  /// Installs a fault plan; nullptr clears it. Counters are reset.
  void InstallFaultPlan(std::shared_ptr<FaultPlan> plan);
  bool HasFaultPlan() const;
  FaultCounters fault_counters() const;

  /// Virtual clock in simulated milliseconds. The RPC layer advances it as
  /// simulated cost accrues (transfers, server work, retry backoff), and
  /// down-windows are evaluated against it.
  double NowMs() const;
  void AdvanceClockMs(double ms);

  /// True when `host` is inside a down-window at the current clock.
  bool HostDownNow(const std::string& host) const;

  /// TransferMs for one message a -> b with the fault plan applied:
  /// kNotFound for an unknown host (naming the host), kUnavailable when
  /// either endpoint is inside a down-window, kCorruption when the
  /// message is corrupted in transit (checksum mismatch), kTimeout when
  /// it is dropped; injected delays add to the returned milliseconds.
  /// With no plan installed this is exactly TransferMs.
  Result<double> WireTransferMs(const std::string& a, const std::string& b,
                                size_t bytes) const;

  /// Like WireTransferMs for a message whose bytes the caller holds in
  /// hand (a binary frame): corruption DELIVERS the message with
  /// `payload` damaged in place instead of failing the transfer, so the
  /// receiver's integrity check (the frame digest) is what detects it —
  /// the model the binary wire protocol needs. Follow-on frames of one
  /// streamed response (`first_message` false) ride the same established
  /// connection and do not re-pay the link latency term.
  Result<double> WireDeliverMs(const std::string& a, const std::string& b,
                               std::string* payload, bool first_message) const;

 private:
  static std::string PairKey(const std::string& a, const std::string& b) {
    return a < b ? a + "|" + b : b + "|" + a;
  }

  mutable std::shared_mutex mu_;
  std::map<std::string, bool> hosts_;
  std::map<std::string, LinkSpec> links_;
  LinkSpec default_link_ = LinkSpec::Lan100Mbps();
  LinkSpec loopback_ = LinkSpec::Loopback();

  // Fault state lives behind its own lock so the read-mostly topology
  // paths above are untouched when no plan is installed.
  mutable std::mutex fault_mu_;
  std::shared_ptr<FaultPlan> fault_plan_;
  mutable FaultCounters fault_counters_;
  double clock_ms_ = 0;
};

/// Fixed per-operation overheads used across the middleware, calibrated so
/// the Table 1 / Figure 6 shapes match the paper (see DESIGN.md §5).
struct ServiceCosts {
  double connect_auth_ms = 150.0;   ///< DB/server connect + authenticate.
  double rls_lookup_ms = 80.0;      ///< RLS catalog lookup round trip.
  double query_parse_ms = 2.0;      ///< Server-side parse/dispatch.
  double per_row_ser_ms = 0.10;     ///< Serialize one result row.
  double db_execute_base_ms = 25.0; ///< Base cost of one sub-query on a DB.
  double db_per_row_ms = 0.01;      ///< Per-row scan/fetch cost in the DB.
  double integrate_per_row_ms = 0.02;  ///< Middleware merge cost per row.
  /// Fixed cost of decomposing a distributed query: re-parsing the XSpec
  /// metadata of every involved database, building sub-queries, setting up
  /// the merge (the "NxS implementations ... meta-data has to be parsed"
  /// overhead §4.2 complains about). Paid once per distributed query.
  double distribution_overhead_ms = 145.0;

  static const ServiceCosts& Default();
};

}  // namespace griddb::net
