#include "griddb/net/network.h"

#include <mutex>

namespace griddb::net {

void Network::AddHost(const std::string& name) {
  std::unique_lock lock(mu_);
  hosts_[name] = true;
}

bool Network::HasHost(const std::string& name) const {
  std::shared_lock lock(mu_);
  return hosts_.count(name) > 0;
}

std::vector<std::string> Network::Hosts() const {
  std::shared_lock lock(mu_);
  std::vector<std::string> out;
  out.reserve(hosts_.size());
  for (const auto& [name, unused] : hosts_) {
    (void)unused;
    out.push_back(name);
  }
  return out;
}

Status Network::SetLink(const std::string& a, const std::string& b,
                        LinkSpec spec) {
  std::unique_lock lock(mu_);
  if (!hosts_.count(a)) return NotFound("unknown host '" + a + "'");
  if (!hosts_.count(b)) return NotFound("unknown host '" + b + "'");
  links_[PairKey(a, b)] = spec;
  return Status::Ok();
}

void Network::SetDefaultLink(LinkSpec spec) {
  std::unique_lock lock(mu_);
  default_link_ = spec;
}

Result<LinkSpec> Network::GetLink(const std::string& a,
                                  const std::string& b) const {
  std::shared_lock lock(mu_);
  if (!hosts_.count(a)) return NotFound("unknown host '" + a + "'");
  if (!hosts_.count(b)) return NotFound("unknown host '" + b + "'");
  if (a == b) return loopback_;
  auto it = links_.find(PairKey(a, b));
  return it == links_.end() ? default_link_ : it->second;
}

Result<double> Network::TransferMs(const std::string& a, const std::string& b,
                                   size_t bytes) const {
  GRIDDB_ASSIGN_OR_RETURN(LinkSpec link, GetLink(a, b));
  return link.TransferMs(bytes);
}

Result<double> Network::RoundTripMs(const std::string& a, const std::string& b,
                                    size_t request_bytes,
                                    size_t response_bytes) const {
  GRIDDB_ASSIGN_OR_RETURN(LinkSpec link, GetLink(a, b));
  return link.TransferMs(request_bytes) + link.TransferMs(response_bytes);
}

const ServiceCosts& ServiceCosts::Default() {
  static const ServiceCosts costs;
  return costs;
}

}  // namespace griddb::net
