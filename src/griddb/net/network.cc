#include "griddb/net/network.h"

#include <mutex>

#include "griddb/obs/metrics.h"

namespace griddb::net {

namespace {
// Process-wide mirrors of the per-Network FaultCounters, so injected
// faults show up in the dataaccess.metrics snapshot alongside the retry
// and failover counters they trigger.
obs::Counter& FaultMetric(size_t FaultCounters::* field) {
  static obs::Counter* host_down =
      obs::MetricsRegistry::Default().GetCounter("griddb.net.faults.host_down");
  static obs::Counter* drops =
      obs::MetricsRegistry::Default().GetCounter("griddb.net.faults.drops");
  static obs::Counter* corruptions = obs::MetricsRegistry::Default().GetCounter(
      "griddb.net.faults.corruptions");
  static obs::Counter* delays =
      obs::MetricsRegistry::Default().GetCounter("griddb.net.faults.delays");
  if (field == &FaultCounters::host_down) return *host_down;
  if (field == &FaultCounters::drops) return *drops;
  if (field == &FaultCounters::corruptions) return *corruptions;
  return *delays;
}
}  // namespace

void Network::AddHost(const std::string& name) {
  std::unique_lock lock(mu_);
  hosts_[name] = true;
}

bool Network::HasHost(const std::string& name) const {
  std::shared_lock lock(mu_);
  return hosts_.count(name) > 0;
}

std::vector<std::string> Network::Hosts() const {
  std::shared_lock lock(mu_);
  std::vector<std::string> out;
  out.reserve(hosts_.size());
  for (const auto& [name, unused] : hosts_) {
    (void)unused;
    out.push_back(name);
  }
  return out;
}

Status Network::SetLink(const std::string& a, const std::string& b,
                        LinkSpec spec) {
  std::unique_lock lock(mu_);
  if (!hosts_.count(a)) return NotFound("unknown host '" + a + "'");
  if (!hosts_.count(b)) return NotFound("unknown host '" + b + "'");
  links_[PairKey(a, b)] = spec;
  return Status::Ok();
}

void Network::SetDefaultLink(LinkSpec spec) {
  std::unique_lock lock(mu_);
  default_link_ = spec;
}

Result<LinkSpec> Network::GetLink(const std::string& a,
                                  const std::string& b) const {
  std::shared_lock lock(mu_);
  if (!hosts_.count(a)) return NotFound("unknown host '" + a + "'");
  if (!hosts_.count(b)) return NotFound("unknown host '" + b + "'");
  if (a == b) return loopback_;
  auto it = links_.find(PairKey(a, b));
  return it == links_.end() ? default_link_ : it->second;
}

Result<double> Network::TransferMs(const std::string& a, const std::string& b,
                                   size_t bytes) const {
  GRIDDB_ASSIGN_OR_RETURN(LinkSpec link, GetLink(a, b));
  return link.TransferMs(bytes);
}

Result<double> Network::RoundTripMs(const std::string& a, const std::string& b,
                                    size_t request_bytes,
                                    size_t response_bytes) const {
  GRIDDB_ASSIGN_OR_RETURN(LinkSpec link, GetLink(a, b));
  return link.TransferMs(request_bytes) + link.TransferMs(response_bytes);
}

// ---------- fault injection ----------

void Network::InstallFaultPlan(std::shared_ptr<FaultPlan> plan) {
  std::lock_guard<std::mutex> lock(fault_mu_);
  fault_plan_ = std::move(plan);
  fault_counters_ = FaultCounters();
}

bool Network::HasFaultPlan() const {
  std::lock_guard<std::mutex> lock(fault_mu_);
  return fault_plan_ != nullptr;
}

FaultCounters Network::fault_counters() const {
  std::lock_guard<std::mutex> lock(fault_mu_);
  return fault_counters_;
}

double Network::NowMs() const {
  std::lock_guard<std::mutex> lock(fault_mu_);
  return clock_ms_;
}

void Network::AdvanceClockMs(double ms) {
  if (ms <= 0) return;
  std::lock_guard<std::mutex> lock(fault_mu_);
  clock_ms_ += ms;
}

bool Network::HostDownNow(const std::string& host) const {
  std::shared_ptr<FaultPlan> plan;
  double now = 0;
  {
    std::lock_guard<std::mutex> lock(fault_mu_);
    plan = fault_plan_;
    now = clock_ms_;
  }
  return plan && plan->HostDownAt(host, now);
}

Result<double> Network::WireTransferMs(const std::string& a,
                                       const std::string& b,
                                       size_t bytes) const {
  GRIDDB_ASSIGN_OR_RETURN(LinkSpec link, GetLink(a, b));
  std::shared_ptr<FaultPlan> plan;
  double now = 0;
  {
    std::lock_guard<std::mutex> lock(fault_mu_);
    plan = fault_plan_;
    now = clock_ms_;
  }
  if (!plan) return link.TransferMs(bytes);

  auto count = [this](size_t FaultCounters::* field) {
    {
      std::lock_guard<std::mutex> lock(fault_mu_);
      ++(fault_counters_.*field);
    }
    FaultMetric(field).Add(1);
  };
  if (plan->HostDownAt(a, now)) {
    count(&FaultCounters::host_down);
    return Unavailable("host '" + a + "' is down");
  }
  if (plan->HostDownAt(b, now)) {
    count(&FaultCounters::host_down);
    return Unavailable("host '" + b + "' is down");
  }
  double delay_ms = 0;
  switch (plan->DrawMessageFate(a, b, &delay_ms)) {
    case MessageFate::kDrop:
      count(&FaultCounters::drops);
      return Timeout("message " + a + " -> " + b + " lost in transit");
    case MessageFate::kCorrupt:
      count(&FaultCounters::corruptions);
      return Corruption("message " + a + " -> " + b +
                        " corrupted in transit (checksum mismatch)");
    case MessageFate::kDelay:
      count(&FaultCounters::delays);
      return link.TransferMs(bytes) + delay_ms;
    case MessageFate::kDeliver:
      break;
  }
  return link.TransferMs(bytes);
}

Result<double> Network::WireDeliverMs(const std::string& a,
                                      const std::string& b,
                                      std::string* payload,
                                      bool first_message) const {
  GRIDDB_ASSIGN_OR_RETURN(LinkSpec link, GetLink(a, b));
  double base_ms = link.TransferMs(payload->size());
  if (!first_message) base_ms -= link.latency_ms;
  std::shared_ptr<FaultPlan> plan;
  double now = 0;
  {
    std::lock_guard<std::mutex> lock(fault_mu_);
    plan = fault_plan_;
    now = clock_ms_;
  }
  if (!plan) return base_ms;

  auto count = [this](size_t FaultCounters::* field) {
    {
      std::lock_guard<std::mutex> lock(fault_mu_);
      ++(fault_counters_.*field);
    }
    FaultMetric(field).Add(1);
  };
  if (plan->HostDownAt(a, now)) {
    count(&FaultCounters::host_down);
    return Unavailable("host '" + a + "' is down");
  }
  if (plan->HostDownAt(b, now)) {
    count(&FaultCounters::host_down);
    return Unavailable("host '" + b + "' is down");
  }
  double delay_ms = 0;
  switch (plan->DrawMessageFate(a, b, &delay_ms)) {
    case MessageFate::kDrop:
      count(&FaultCounters::drops);
      return Timeout("message " + a + " -> " + b + " lost in transit");
    case MessageFate::kCorrupt: {
      count(&FaultCounters::corruptions);
      // Flip bytes at a few spread-out positions and deliver anyway; the
      // frame digest on the receiving side is what notices.
      for (size_t pos :
           {payload->size() / 4, payload->size() / 2, payload->size() * 3 / 4}) {
        if (pos < payload->size()) (*payload)[pos] ^= '\xa5';
      }
      return base_ms;
    }
    case MessageFate::kDelay:
      count(&FaultCounters::delays);
      return base_ms + delay_ms;
    case MessageFate::kDeliver:
      break;
  }
  return base_ms;
}

const ServiceCosts& ServiceCosts::Default() {
  static const ServiceCosts costs;
  return costs;
}

}  // namespace griddb::net
