#include "griddb/net/fault.h"

namespace griddb::net {

void FaultPlan::AddDownWindow(const std::string& host, double start_ms,
                              double end_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  down_[host].push_back({start_ms, end_ms});
}

void FaultPlan::SetLinkFaults(const std::string& a, const std::string& b,
                              LinkFaultSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  link_faults_[PairKey(a, b)] = spec;
}

void FaultPlan::SetDefaultLinkFaults(LinkFaultSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  default_faults_ = spec;
}

bool FaultPlan::HostDownAt(const std::string& host, double now_ms) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = down_.find(host);
  if (it == down_.end()) return false;
  for (const DownWindow& window : it->second) {
    if (now_ms >= window.start_ms && now_ms < window.end_ms) return true;
  }
  return false;
}

MessageFate FaultPlan::DrawMessageFate(const std::string& a,
                                       const std::string& b,
                                       double* delay_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  LinkFaultSpec spec = default_faults_;
  auto it = link_faults_.find(PairKey(a, b));
  if (it != link_faults_.end()) spec = it->second;
  if (!spec.Faulty()) return MessageFate::kDeliver;
  double draw = rng_.NextDouble();
  if (draw < spec.drop_probability) return MessageFate::kDrop;
  draw -= spec.drop_probability;
  if (draw < spec.corrupt_probability) return MessageFate::kCorrupt;
  draw -= spec.corrupt_probability;
  if (draw < spec.delay_probability) {
    if (delay_ms) *delay_ms = spec.delay_ms;
    return MessageFate::kDelay;
  }
  return MessageFate::kDeliver;
}

}  // namespace griddb::net
