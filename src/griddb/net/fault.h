// Deterministic fault injection for the simulated network.
//
// A Grid of geographically distributed databases is defined by hosts that
// flap, links that stall, and replicas that vanish mid-query; the paper's
// §5 measures only the happy path. A FaultPlan attached to a Network
// delivers the unhappy ones reproducibly: host down-windows are intervals
// on the network's virtual clock, and per-link message faults (drop,
// corrupt, delay) are drawn from a seeded RNG so a given plan replays
// identically run-to-run. Injection is consulted only from the wire-level
// transfer path; when no plan is installed that path is byte-for-byte the
// plain cost computation.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "griddb/util/rng.h"

namespace griddb::net {

/// Per-link message fault schedule. Each message on the link independently
/// draws its fate; probabilities are evaluated in the order drop, corrupt,
/// delay against a single uniform draw, so they must sum to <= 1.
struct LinkFaultSpec {
  double drop_probability = 0;     ///< Message lost; the sender times out.
  double corrupt_probability = 0;  ///< Detected checksum failure on receipt.
  double delay_probability = 0;    ///< Message stalls for delay_ms extra.
  double delay_ms = 0;

  bool Faulty() const {
    return drop_probability > 0 || corrupt_probability > 0 ||
           delay_probability > 0;
  }
};

/// Running totals of injected faults, surfaced for assertions.
struct FaultCounters {
  size_t host_down = 0;    ///< Messages rejected by a down-window.
  size_t drops = 0;
  size_t corruptions = 0;
  size_t delays = 0;

  size_t total() const { return host_down + drops + corruptions + delays; }
};

/// What the plan decided for one message.
enum class MessageFate { kDeliver, kDrop, kCorrupt, kDelay };

/// A deterministic fault schedule. Thread-safe; one RNG stream is shared
/// by all links so fates depend only on the global message order.
class FaultPlan {
 public:
  explicit FaultPlan(uint64_t seed = 2005) : rng_(seed) {}

  /// `host` answers nothing while the virtual clock is in [start, end) ms.
  void AddDownWindow(const std::string& host, double start_ms, double end_ms);

  /// Installs a fault schedule on the (symmetric) link a <-> b.
  void SetLinkFaults(const std::string& a, const std::string& b,
                     LinkFaultSpec spec);
  /// Schedule applied to links without an explicit SetLinkFaults.
  void SetDefaultLinkFaults(LinkFaultSpec spec);

  bool HostDownAt(const std::string& host, double now_ms) const;

  /// Draws the fate of the next message a -> b (advances the RNG). On
  /// kDelay, `*delay_ms` receives the extra stall.
  MessageFate DrawMessageFate(const std::string& a, const std::string& b,
                              double* delay_ms);

 private:
  struct DownWindow {
    double start_ms = 0;
    double end_ms = 0;
  };

  static std::string PairKey(const std::string& a, const std::string& b) {
    return a < b ? a + "|" + b : b + "|" + a;
  }

  mutable std::mutex mu_;
  Rng rng_;
  std::map<std::string, std::vector<DownWindow>> down_;
  std::map<std::string, LinkFaultSpec> link_faults_;
  LinkFaultSpec default_faults_;
};

}  // namespace griddb::net
