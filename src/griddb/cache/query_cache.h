// Multi-tier query cache for the data access layer.
//
// Two tiers share one lock and one invalidation model:
//
//  - The *plan cache* maps a canonical query fingerprint
//    (sql/fingerprint.h) to the full planning artefact: the semantic-
//    checked QueryPlan plus every per-dialect rendered SQL string the
//    executor would otherwise regenerate (POOL-RAL field/table/where
//    strings or the JDBC statement text, per sub-query and for the
//    single-database fast path). A hit skips lexer, parser, semantic
//    analysis, planning and rendering. Entries are valid only for the
//    (schema epoch, routing generation) they were planned under — an
//    epoch bump (schema change) or routing-generation bump (quarantine /
//    reinstate changed which replicas are eligible) turns the next
//    lookup into a miss that evicts the stale entry.
//
//  - The *result cache* maps (fingerprint, epoch, per-table content
//    versions) to an immutable shared ResultSet, LRU-evicted under a
//    byte budget (ResultSet::WireSize accounting). Table versions bump
//    when the IntegrityMonitor observes a content-digest change, so a
//    mutation anywhere in the federation forces a miss on every query
//    that referenced the mutated table — while queries over unchanged
//    tables (including the unchanged side of a cross-database join,
//    cached per sub-query) keep hitting. Quarantine invalidates by
//    marking entries stale-only.
//
// Invalidated entries are not dropped immediately: they leave the key
// index but remain LRU-reachable as the *last known good* result of
// their fingerprint, which the service may serve — tagged stale=true —
// when every replica is down and the operator opted into
// stale-while-revalidate. Normal lookups never see them.
//
// Thread safety: every public method is safe against the parallel
// sub-query fan-out; one mutex guards both tiers (entries themselves are
// immutable shared_ptr<const ...>, so hits copy a pointer, not rows).
//
// Multi-tenancy: keys are deliberately tenant-agnostic — all tenants
// share one cache, so a popular query warms the cache for everyone. The
// safety contract lives in the service layer: DataAccessService checks
// the REQUESTING tenant's grants (core/rbac) before every probe of this
// cache, including the stale-while-revalidate serve, so a result cached
// under tenant A's request is never replayed to a tenant whose current
// grants do not cover the referenced tables, and a revocation takes
// effect on the very next request without touching cached entries.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "griddb/storage/result_set.h"
#include "griddb/unity/planner.h"

namespace griddb::cache {

struct QueryCacheConfig {
  size_t plan_capacity = 128;              ///< Max cached plans (LRU).
  size_t result_capacity_bytes = 8u << 20; ///< Result-tier byte budget.
};

/// Pre-rendered execution strings for one planned sub-query, so repeat
/// executions (and replica failover re-attempts) never re-render.
struct RenderedSubQuery {
  bool pool_form = false;                  ///< POOL-RAL wrapper route.
  std::vector<std::string> field_strings;  ///< "P AS l" select fields.
  std::string quoted_table;                ///< Quoted physical table.
  std::string where_string;                ///< Rendered WHERE, may be "".
  std::string full_sql;                    ///< JDBC statement text.
  /// Digest identifying this rendered fetch (connection + text); the key
  /// prefix for per-sub-query result caching.
  std::string cache_id;
};

/// A plan plus everything derivable from it that execution needs.
struct CachedPlan {
  unity::QueryPlan plan;

  // Single-database fast path, pre-rendered.
  bool direct_pool_form = false;
  std::vector<std::string> direct_fields;
  std::vector<std::string> direct_tables;
  std::string direct_where;
  std::string direct_sql;  ///< JDBC form when !direct_pool_form.

  /// Parallel to plan.subqueries.
  std::vector<RenderedSubQuery> subquery_renders;
};

/// Response-shape facts replayed into QueryStats on a result-cache hit.
struct ResultMeta {
  bool distributed = false;
  size_t databases = 0;
  size_t tables = 0;
  /// True when the producing execution did not run to clean completion:
  /// cancelled, deadline-truncated, or assembled with partial-results
  /// substitutes. Such a result reflects a moment the operator chose
  /// availability over completeness — replaying it from cache would turn
  /// a one-off degradation into a sticky wrong answer, so InsertResult
  /// refuses to store it (the service also skips the insert; the tag here
  /// is defence in depth for future call sites).
  bool non_cacheable = false;
};

/// A result-tier hit: shared immutable rows plus replay metadata.
struct CachedResult {
  std::shared_ptr<const storage::ResultSet> result;
  ResultMeta meta;

  explicit operator bool() const { return result != nullptr; }
};

class QueryCache {
 public:
  explicit QueryCache(QueryCacheConfig config = {});

  // ---- text memo ----

  /// Raw-text -> fingerprint/table-list memo. A pure function of the
  /// query text (never invalidated, only LRU-bounded at 4x the plan
  /// capacity), it lets a byte-identical repeat query skip the lexer and
  /// parser before the result-cache probe.
  struct TextInfo {
    std::string fingerprint;
    std::vector<std::string> tables;  ///< Referenced tables, lower-case.
  };
  std::optional<TextInfo> LookupText(const std::string& text);
  void InsertText(const std::string& text, TextInfo info);

  // ---- plan tier ----

  /// Returns the cached plan for `fingerprint` if it was built at exactly
  /// this (epoch, routing_gen); a mismatch evicts the entry and misses.
  std::shared_ptr<const CachedPlan> LookupPlan(const std::string& fingerprint,
                                               uint64_t epoch,
                                               uint64_t routing_gen);
  void InsertPlan(const std::string& fingerprint, uint64_t epoch,
                  uint64_t routing_gen, std::shared_ptr<const CachedPlan> plan);

  // ---- result tier ----

  /// Composes the result-tier key: fingerprint + epoch + the current
  /// content version of every referenced table (sorted, lower-case).
  /// Computed BEFORE execution; if a version bumps mid-flight the insert
  /// under this key is simply never hit again.
  std::string ResultKey(const std::string& fingerprint, uint64_t epoch,
                        const std::vector<std::string>& tables);

  CachedResult LookupResult(const std::string& key);
  void InsertResult(const std::string& key, const std::string& fingerprint,
                    uint64_t epoch, std::vector<std::string> tables,
                    std::shared_ptr<const storage::ResultSet> result,
                    const ResultMeta& meta);

  /// Most recent (possibly invalidated) result of `fingerprint`, served
  /// only when it was computed at the same schema epoch — bounded
  /// staleness never spans a schema change. Counts a stale serve.
  CachedResult LastKnownGood(const std::string& fingerprint, uint64_t epoch);

  // ---- invalidation ----

  /// Records the observed content digest of a (lower-case logical) table.
  /// A digest different from the last observation bumps the table's
  /// version — future keys miss — and marks every cached result that
  /// referenced the table stale-only. Returns true when a change was
  /// detected.
  bool ObserveDigest(const std::string& table, const std::string& md5);

  /// Marks every result referencing `table` stale-only (quarantine, admin
  /// invalidation). Returns the number of entries invalidated.
  size_t InvalidateTable(const std::string& table);

  /// Drops everything, last-known-good entries included. Returns the
  /// number of entries dropped (plans + results).
  size_t Clear();

  // ---- introspection (tests) ----

  size_t result_bytes() const;
  size_t result_entries() const;
  size_t plan_entries() const;

 private:
  struct ResultNode {
    std::string key;  ///< Empty once stale-only (left the key index).
    std::string fingerprint;
    uint64_t epoch = 0;
    std::vector<std::string> tables;
    std::shared_ptr<const storage::ResultSet> result;
    ResultMeta meta;
    size_t bytes = 0;
    bool stale_only = false;
  };
  struct PlanNode {
    std::string fingerprint;
    uint64_t epoch = 0;
    uint64_t routing_gen = 0;
    std::shared_ptr<const CachedPlan> plan;
  };

  void MarkStaleLocked(std::list<ResultNode>::iterator it);
  void EvictResultLocked(std::list<ResultNode>::iterator it);
  void TrimLocked();

  QueryCacheConfig config_;
  mutable std::mutex mu_;

  std::list<PlanNode> plan_lru_;  ///< Front = most recently used.
  std::unordered_map<std::string, std::list<PlanNode>::iterator> plan_by_fp_;

  using TextNode = std::pair<std::string, TextInfo>;  // raw text, info
  std::list<TextNode> text_lru_;  ///< Front = most recently used.
  std::unordered_map<std::string, std::list<TextNode>::iterator> text_by_sql_;

  std::list<ResultNode> result_lru_;  ///< Front = most recently used.
  std::unordered_map<std::string, std::list<ResultNode>::iterator> by_key_;
  /// fingerprint -> most recently inserted/hit node (stale-only included).
  std::unordered_map<std::string, std::list<ResultNode>::iterator> last_good_;
  size_t bytes_ = 0;

  std::unordered_map<std::string, uint64_t> table_versions_;
  std::unordered_map<std::string, std::string> table_digests_;
};

}  // namespace griddb::cache
