#include "griddb/cache/query_cache.h"

#include <algorithm>

#include "griddb/obs/metrics.h"

namespace griddb::cache {

namespace {
// Per-call-site instrument handles (rpc/server.cc pattern). Hits/misses
// are counted by the data access layer, which knows whether a lookup was
// a whole-query or per-sub-query probe; the cache itself owns the
// counters only it can observe.
obs::Counter& PlanEvictionsCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "griddb.cache.plan.evictions");
  return *c;
}
obs::Counter& ResultEvictionsCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "griddb.cache.result.evictions");
  return *c;
}
obs::Counter& ResultInvalidationsCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "griddb.cache.result.invalidations");
  return *c;
}
obs::Counter& StaleServesCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "griddb.cache.result.stale_serves");
  return *c;
}
obs::Gauge& ResultBytesGauge() {
  static obs::Gauge* g = obs::MetricsRegistry::Default().GetGauge(
      "griddb.cache.result.bytes");
  return *g;
}
obs::Gauge& PlanEntriesGauge() {
  static obs::Gauge* g = obs::MetricsRegistry::Default().GetGauge(
      "griddb.cache.plan.entries");
  return *g;
}
}  // namespace

QueryCache::QueryCache(QueryCacheConfig config) : config_(config) {}

// ---------- text memo ----------

std::optional<QueryCache::TextInfo> QueryCache::LookupText(
    const std::string& text) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = text_by_sql_.find(text);
  if (it == text_by_sql_.end()) return std::nullopt;
  text_lru_.splice(text_lru_.begin(), text_lru_, it->second);
  return it->second->second;
}

void QueryCache::InsertText(const std::string& text, TextInfo info) {
  if (config_.plan_capacity == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = text_by_sql_.find(text);
  if (it != text_by_sql_.end()) {
    text_lru_.erase(it->second);
    text_by_sql_.erase(it);
  }
  text_lru_.emplace_front(text, std::move(info));
  text_by_sql_[text] = text_lru_.begin();
  while (text_lru_.size() > config_.plan_capacity * 4) {
    text_by_sql_.erase(text_lru_.back().first);
    text_lru_.pop_back();
  }
}

// ---------- plan tier ----------

std::shared_ptr<const CachedPlan> QueryCache::LookupPlan(
    const std::string& fingerprint, uint64_t epoch, uint64_t routing_gen) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = plan_by_fp_.find(fingerprint);
  if (it == plan_by_fp_.end()) return nullptr;
  if (it->second->epoch != epoch || it->second->routing_gen != routing_gen) {
    // Schema or routing moved since planning; the plan's physical names /
    // replica choices are unusable. Evict so the replan replaces it.
    plan_lru_.erase(it->second);
    plan_by_fp_.erase(it);
    PlanEvictionsCounter().Add(1);
    PlanEntriesGauge().Set(static_cast<double>(plan_lru_.size()));
    return nullptr;
  }
  plan_lru_.splice(plan_lru_.begin(), plan_lru_, it->second);
  return it->second->plan;
}

void QueryCache::InsertPlan(const std::string& fingerprint, uint64_t epoch,
                            uint64_t routing_gen,
                            std::shared_ptr<const CachedPlan> plan) {
  if (config_.plan_capacity == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = plan_by_fp_.find(fingerprint);
  if (it != plan_by_fp_.end()) {
    plan_lru_.erase(it->second);
    plan_by_fp_.erase(it);
  }
  plan_lru_.push_front(PlanNode{fingerprint, epoch, routing_gen,
                                std::move(plan)});
  plan_by_fp_[fingerprint] = plan_lru_.begin();
  while (plan_lru_.size() > config_.plan_capacity) {
    plan_by_fp_.erase(plan_lru_.back().fingerprint);
    plan_lru_.pop_back();
    PlanEvictionsCounter().Add(1);
  }
  PlanEntriesGauge().Set(static_cast<double>(plan_lru_.size()));
}

// ---------- result tier ----------

std::string QueryCache::ResultKey(const std::string& fingerprint,
                                  uint64_t epoch,
                                  const std::vector<std::string>& tables) {
  std::vector<std::string> sorted = tables;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  std::string key = fingerprint;
  key += "|e";
  key += std::to_string(epoch);
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::string& table : sorted) {
    auto it = table_versions_.find(table);
    key += '|';
    key += table;
    key += '@';
    key += std::to_string(it == table_versions_.end() ? 0 : it->second);
  }
  return key;
}

CachedResult QueryCache::LookupResult(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_key_.find(key);
  if (it == by_key_.end()) return {};
  result_lru_.splice(result_lru_.begin(), result_lru_, it->second);
  last_good_[it->second->fingerprint] = it->second;
  return {it->second->result, it->second->meta};
}

void QueryCache::InsertResult(
    const std::string& key, const std::string& fingerprint, uint64_t epoch,
    std::vector<std::string> tables,
    std::shared_ptr<const storage::ResultSet> result, const ResultMeta& meta) {
  if (!result) return;
  // Cancelled / deadline-truncated / partial executions never enter the
  // cache — not even as a last-known-good candidate.
  if (meta.non_cacheable) return;
  const size_t bytes = result->WireSize();
  if (bytes > config_.result_capacity_bytes) return;  // would evict all
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_key_.find(key);
  if (it != by_key_.end()) EvictResultLocked(it->second);
  result_lru_.push_front(ResultNode{key, fingerprint, epoch,
                                    std::move(tables), std::move(result), meta,
                                    bytes, /*stale_only=*/false});
  by_key_[key] = result_lru_.begin();
  last_good_[result_lru_.begin()->fingerprint] = result_lru_.begin();
  bytes_ += bytes;
  TrimLocked();
  ResultBytesGauge().Set(static_cast<double>(bytes_));
}

CachedResult QueryCache::LastKnownGood(const std::string& fingerprint,
                                       uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = last_good_.find(fingerprint);
  if (it == last_good_.end()) return {};
  if (it->second->epoch != epoch) return {};  // never span a schema change
  StaleServesCounter().Add(1);
  return {it->second->result, it->second->meta};
}

// ---------- invalidation ----------

void QueryCache::MarkStaleLocked(std::list<ResultNode>::iterator it) {
  if (it->stale_only) return;
  by_key_.erase(it->key);
  it->key.clear();
  it->stale_only = true;
  ResultInvalidationsCounter().Add(1);
}

void QueryCache::EvictResultLocked(std::list<ResultNode>::iterator it) {
  if (!it->stale_only) by_key_.erase(it->key);
  auto lg = last_good_.find(it->fingerprint);
  if (lg != last_good_.end() && lg->second == it) last_good_.erase(lg);
  bytes_ -= it->bytes;
  result_lru_.erase(it);
}

void QueryCache::TrimLocked() {
  while (bytes_ > config_.result_capacity_bytes && !result_lru_.empty()) {
    EvictResultLocked(std::prev(result_lru_.end()));
    ResultEvictionsCounter().Add(1);
  }
}

bool QueryCache::ObserveDigest(const std::string& table,
                               const std::string& md5) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = table_digests_.find(table);
  if (it == table_digests_.end()) {
    // First observation establishes the baseline; nothing cached before
    // this instant could have been computed from different content.
    table_digests_[table] = md5;
    return false;
  }
  if (it->second == md5) return false;
  it->second = md5;
  ++table_versions_[table];
  for (auto node = result_lru_.begin(); node != result_lru_.end(); ++node) {
    if (std::find(node->tables.begin(), node->tables.end(), table) !=
        node->tables.end()) {
      MarkStaleLocked(node);
    }
  }
  return true;
}

size_t QueryCache::InvalidateTable(const std::string& table) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t count = 0;
  for (auto node = result_lru_.begin(); node != result_lru_.end(); ++node) {
    if (node->stale_only) continue;
    if (std::find(node->tables.begin(), node->tables.end(), table) !=
        node->tables.end()) {
      MarkStaleLocked(node);
      ++count;
    }
  }
  return count;
}

size_t QueryCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  size_t count = plan_lru_.size() + result_lru_.size();
  plan_lru_.clear();
  plan_by_fp_.clear();
  text_lru_.clear();
  text_by_sql_.clear();
  result_lru_.clear();
  by_key_.clear();
  last_good_.clear();
  bytes_ = 0;
  ResultBytesGauge().Set(0);
  PlanEntriesGauge().Set(0);
  return count;
}

// ---------- introspection ----------

size_t QueryCache::result_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

size_t QueryCache::result_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return result_lru_.size();
}

size_t QueryCache::plan_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return plan_lru_.size();
}

}  // namespace griddb::cache
