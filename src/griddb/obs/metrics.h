// Lock-cheap metrics: counters, gauges and fixed-bucket latency
// histograms behind a name-keyed registry.
//
// The fast path (Counter::Add, Gauge::Set, Histogram::Observe) is a
// handful of relaxed atomic operations — no locks, no allocations — so
// instrumentation can sit on the per-message and per-row hot paths the
// benches measure. Registration (GetCounter and friends) takes a lock
// and may allocate; call sites register once (typically via a
// function-local static) and keep the returned pointer, which stays
// valid for the registry's lifetime.
//
// Metric names follow `griddb.<layer>.<name>` (see DESIGN.md §10); the
// full catalog lives in docs/OPERATIONS.md and scripts/check.sh fails
// when a registered name is missing from it.
//
// Snapshots are plain value types that merge: counters and histogram
// buckets add, gauges take the other side's value. Merging lets an
// operator aggregate `dataaccess.metrics` responses from a fleet of
// JClarens servers into one view.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

namespace griddb::obs {

/// Upper bounds (ms) of the fixed latency buckets; the last bucket is
/// unbounded. Fixed so snapshots from different processes merge without
/// bucket-boundary negotiation.
inline constexpr size_t kLatencyBuckets = 14;
inline constexpr std::array<double, kLatencyBuckets> kLatencyBucketUpperMs = {
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 1e300};

/// Monotonic event count.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-written level (queue depth, clock reading, config knob).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

/// Merged view of one histogram (also the snapshot form).
struct HistogramData {
  std::array<uint64_t, kLatencyBuckets> buckets{};
  uint64_t count = 0;
  double sum = 0;

  double mean() const { return count ? sum / static_cast<double>(count) : 0; }
  /// Upper bound of the bucket containing the q-quantile (q in [0,1]);
  /// the usual fixed-bucket estimate, exact enough to spot regressions.
  double ApproxQuantileMs(double q) const;
  void Merge(const HistogramData& other);
};

/// Fixed-bucket latency histogram. Observe is allocation-free.
class Histogram {
 public:
  void Observe(double ms) {
    size_t bucket = 0;
    while (bucket + 1 < kLatencyBuckets && ms > kLatencyBucketUpperMs[bucket]) {
      ++bucket;
    }
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(ms, std::memory_order_relaxed);
  }

  HistogramData Data() const;
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  void Reset();

 private:
  std::array<std::atomic<uint64_t>, kLatencyBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0};
};

/// Point-in-time copy of a registry; mergeable across processes.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramData> histograms;

  /// Counters and histograms accumulate; gauges take `other`'s value.
  void Merge(const MetricsSnapshot& other);
};

class MetricsRegistry {
 public:
  /// Returns the instrument registered under `name`, creating it on
  /// first use. The pointer stays valid for the registry's lifetime.
  /// A name registers as exactly one kind; re-requesting it as another
  /// kind returns nullptr (callers treat that as a wiring bug).
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;
  /// Zeroes every registered instrument (handles stay valid) — tests
  /// and the overhead bench isolate runs with this.
  void Reset();
  /// Sorted names of every registered instrument.
  std::vector<std::string> Names() const;

  /// The process-wide registry all built-in instrumentation uses.
  static MetricsRegistry& Default();

 private:
  mutable std::shared_mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace griddb::obs
