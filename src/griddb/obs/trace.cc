#include "griddb/obs/trace.h"

#include <algorithm>
#include <map>
#include <sstream>

namespace griddb::obs {

namespace {
// Innermost live span per thread. The tracer pointer disambiguates when
// several tracers run in one process (every JClarens server owns one):
// implicit parenting only crosses spans of the same tracer, so a server
// handling a call inline (the simulated network dispatches on the
// caller's thread) cannot accidentally parent into the caller's tracer —
// cross-server parentage only happens through the explicit wire context.
thread_local Tracer* tls_tracer = nullptr;
thread_local SpanContext tls_ctx;
}  // namespace

Span& Span::operator=(Span&& other) noexcept {
  if (this == &other) return *this;
  End();
  tracer_ = other.tracer_;
  ctx_ = other.ctx_;
  parent_span_id_ = other.parent_span_id_;
  name_ = std::move(other.name_);
  start_ms_ = other.start_ms_;
  error_ = other.error_;
  note_ = std::move(other.note_);
  attrs_ = std::move(other.attrs_);
  prev_tracer_ = other.prev_tracer_;
  prev_ctx_ = other.prev_ctx_;
  other.tracer_ = nullptr;
  return *this;
}

void Span::AddAttr(std::string key, std::string value) {
  if (!tracer_) return;
  attrs_.emplace_back(std::move(key), std::move(value));
}

void Span::SetError(std::string note) {
  if (!tracer_) return;
  error_ = true;
  note_ = std::move(note);
}

void Span::End() {
  if (!tracer_) return;
  Tracer* tracer = tracer_;
  tracer_ = nullptr;
  tracer->FinishSpan(*this);
}

void Tracer::Reseed(uint64_t seed) {
  seed_ = seed;
  next_id_.store(1, std::memory_order_relaxed);
}

Span Tracer::StartSpan(std::string name) {
  return StartSpanUnder(std::move(name), CurrentContext());
}

Span Tracer::StartSpanUnder(std::string name, const SpanContext& parent) {
  if (!enabled()) return Span();
  Span span;
  span.tracer_ = this;
  span.name_ = std::move(name);
  if (parent.valid()) {
    span.ctx_.trace_id = parent.trace_id;
    span.parent_span_id_ = parent.span_id;
  } else {
    span.ctx_.trace_id = NextId();
  }
  span.ctx_.span_id = NextId();
  span.start_ms_ = clock_ ? clock_() : 0.0;
  span.prev_tracer_ = tls_tracer;
  span.prev_ctx_ = tls_ctx;
  tls_tracer = this;
  tls_ctx = span.ctx_;
  return span;
}

SpanContext Tracer::CurrentContext() const {
  return tls_tracer == this ? tls_ctx : SpanContext{};
}

void Tracer::FinishSpan(Span& span) {
  // Pop this span from the thread's stack — but only on the thread that
  // still has it innermost; a span moved to (and ended on) another
  // thread must not clobber that thread's stack.
  if (tls_tracer == this && tls_ctx.span_id == span.ctx_.span_id) {
    tls_tracer = span.prev_tracer_;
    tls_ctx = span.prev_ctx_;
  }
  SpanRecord record;
  record.trace_id = span.ctx_.trace_id;
  record.span_id = span.ctx_.span_id;
  record.parent_span_id = span.parent_span_id_;
  record.name = std::move(span.name_);
  record.start_ms = span.start_ms_;
  double now = clock_ ? clock_() : 0.0;
  record.duration_ms = std::max(0.0, now - span.start_ms_);
  record.error = span.error_;
  record.note = std::move(span.note_);
  record.attrs = std::move(span.attrs_);
  Import(std::move(record));
}

void Tracer::Import(SpanRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (finished_.size() >= kMaxFinished) {
    finished_.erase(finished_.begin());
    ++dropped_;
  }
  finished_.push_back(std::move(record));
}

std::vector<SpanRecord> Tracer::Finished() const {
  std::lock_guard<std::mutex> lock(mu_);
  return finished_;
}

std::vector<SpanRecord> Tracer::Drain() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanRecord> out;
  out.swap(finished_);
  return out;
}

std::vector<SpanRecord> Tracer::TakeTrace(uint64_t trace_id) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanRecord> out;
  auto keep = finished_.begin();
  for (auto it = finished_.begin(); it != finished_.end(); ++it) {
    if (it->trace_id == trace_id) {
      out.push_back(std::move(*it));
    } else {
      if (keep != it) *keep = std::move(*it);
      ++keep;
    }
  }
  finished_.erase(keep, finished_.end());
  return out;
}

size_t Tracer::finished_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return finished_.size();
}

size_t Tracer::dropped_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  finished_.clear();
  dropped_ = 0;
}

namespace {
void FormatSubtree(const std::map<uint64_t, const SpanRecord*>& by_id,
                   const std::map<uint64_t, std::vector<const SpanRecord*>>&
                       children,
                   const SpanRecord& record, int depth, std::ostringstream& out) {
  for (int i = 0; i < depth; ++i) out << "  ";
  out << record.name;
  if (!record.host.empty()) out << " @" << record.host;
  out << " [span " << std::hex << record.span_id << std::dec << "]";
  out << " start=" << record.start_ms << "ms dur=" << record.duration_ms
      << "ms";
  for (const auto& [key, value] : record.attrs) {
    out << " " << key << "=" << value;
  }
  if (record.error) out << " ERROR(" << record.note << ")";
  out << "\n";
  auto it = children.find(record.span_id);
  if (it == children.end()) return;
  for (const SpanRecord* child : it->second) {
    FormatSubtree(by_id, children, *child, depth + 1, out);
  }
}
}  // namespace

std::string Tracer::FormatTrace(uint64_t trace_id) const {
  std::vector<SpanRecord> records;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const SpanRecord& record : finished_) {
      if (record.trace_id == trace_id) records.push_back(record);
    }
  }
  std::map<uint64_t, const SpanRecord*> by_id;
  for (const SpanRecord& record : records) by_id[record.span_id] = &record;
  std::map<uint64_t, std::vector<const SpanRecord*>> children;
  std::vector<const SpanRecord*> roots;
  for (const SpanRecord& record : records) {
    if (record.parent_span_id != 0 && by_id.count(record.parent_span_id)) {
      children[record.parent_span_id].push_back(&record);
    } else {
      roots.push_back(&record);
    }
  }
  auto by_start = [](const SpanRecord* a, const SpanRecord* b) {
    return a->start_ms != b->start_ms ? a->start_ms < b->start_ms
                                      : a->span_id < b->span_id;
  };
  for (auto& [parent, kids] : children) {
    std::sort(kids.begin(), kids.end(), by_start);
  }
  std::sort(roots.begin(), roots.end(), by_start);
  std::ostringstream out;
  out << "trace " << std::hex << trace_id << std::dec << " (" << records.size()
      << " spans)\n";
  for (const SpanRecord* root : roots) {
    FormatSubtree(by_id, children, *root, 1, out);
  }
  return out.str();
}

}  // namespace griddb::obs
