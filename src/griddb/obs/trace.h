// Hierarchical distributed tracing on the virtual clock.
//
// A Tracer hands out RAII Span handles; finished spans accumulate as
// SpanRecords that can be drained, rendered as an indented tree, or
// shipped across the XML-RPC wire so a query forwarded to a remote
// JClarens server continues the same trace (the remote's child spans
// come back in the response and are Import()ed here).
//
// Determinism: trace and span ids come from a seeded counter — no
// wall clock, no randomness — so a test replaying the same call
// sequence sees the same ids. Timestamps come from an injected clock
// (the data access layer wires net::Network::NowMs, the virtual clock);
// with no clock set every timestamp is 0 and spans still nest correctly
// by parentage.
//
// Parenting: each thread tracks its innermost live span; StartSpan
// parents to it implicitly when it belongs to the same tracer. Work
// fanned out to other threads (parallel sub-queries) captures the
// parent context before submit and opens children with StartSpanUnder,
// which is also how a server continues a trace from a remote caller's
// wire context.
//
// A disabled tracer (the default) returns inactive spans: no ids are
// drawn, nothing is recorded, nothing rides the wire — the fault-free
// paper benchmarks stay byte-identical.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace griddb::obs {

/// What crosses process (and wire) boundaries: enough to parent remote
/// child spans into the caller's trace.
struct SpanContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  bool valid() const { return trace_id != 0; }
};

/// One finished span.
struct SpanRecord {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;  ///< 0 = root of its trace.
  std::string name;
  std::string host;     ///< Producing server; empty = this process.
  double start_ms = 0;  ///< Tracer clock (virtual ms) at StartSpan.
  double duration_ms = 0;
  bool error = false;
  std::string note;  ///< Error detail when `error`.
  std::vector<std::pair<std::string, std::string>> attrs;
};

class Tracer;

/// RAII span handle. Inactive (no-op) when the tracer was disabled at
/// StartSpan time. Ends at destruction or an explicit End(); ending
/// restores the thread's previous innermost span.
class Span {
 public:
  Span() = default;
  ~Span() { End(); }
  Span(Span&& other) noexcept { *this = std::move(other); }
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool active() const { return tracer_ != nullptr; }
  SpanContext context() const { return ctx_; }

  void AddAttr(std::string key, std::string value);
  void SetError(std::string note);

  /// Finishes the span (idempotent): records it with the tracer and
  /// pops it from the thread's span stack.
  void End();

 private:
  friend class Tracer;
  Tracer* tracer_ = nullptr;
  SpanContext ctx_;
  uint64_t parent_span_id_ = 0;
  std::string name_;
  double start_ms_ = 0;
  bool error_ = false;
  std::string note_;
  std::vector<std::pair<std::string, std::string>> attrs_;
  // Thread-local stack linkage restored by End().
  Tracer* prev_tracer_ = nullptr;
  SpanContext prev_ctx_;
};

class Tracer {
 public:
  explicit Tracer(uint64_t seed = 0x0b5e7aced) : seed_(seed) {}

  /// Re-seeds the id stream and restarts the counter. Call before any
  /// spans are started.
  void Reseed(uint64_t seed);
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  /// Timestamp source for span start/duration (virtual ms). Set before
  /// spans start; default reports 0.
  void set_clock(std::function<double()> clock) { clock_ = std::move(clock); }

  /// New span, implicitly parented to this thread's innermost live span
  /// of this tracer (a new root trace otherwise).
  Span StartSpan(std::string name);
  /// New span under an explicit parent — cross-thread fan-out, or a
  /// remote caller's wire context. An invalid parent starts a new root.
  Span StartSpanUnder(std::string name, const SpanContext& parent);
  /// This thread's innermost live span of this tracer (invalid if none).
  SpanContext CurrentContext() const;

  /// Records a span finished elsewhere (a remote server's child spans).
  void Import(SpanRecord record);

  /// Finished spans, oldest first (copy / destructive / per-trace take).
  std::vector<SpanRecord> Finished() const;
  std::vector<SpanRecord> Drain();
  /// Removes and returns every finished span of `trace_id` — what a
  /// server ships back to the caller that sent the trace context.
  std::vector<SpanRecord> TakeTrace(uint64_t trace_id);
  size_t finished_count() const;
  /// Total spans evicted because the finished buffer was full.
  size_t dropped_count() const;
  void Clear();

  /// Renders a trace's span tree as indented text (the slow-query dump
  /// format documented in docs/OPERATIONS.md).
  std::string FormatTrace(uint64_t trace_id) const;

 private:
  friend class Span;
  uint64_t NextId() {
    return seed_ + next_id_.fetch_add(1, std::memory_order_relaxed);
  }
  void FinishSpan(Span& span);

  /// Finished-span buffer cap; the oldest spans are evicted beyond it so
  /// an un-drained tracer cannot grow without bound.
  static constexpr size_t kMaxFinished = 8192;

  uint64_t seed_;
  std::atomic<uint64_t> next_id_{1};
  std::atomic<bool> enabled_{false};
  std::function<double()> clock_;
  mutable std::mutex mu_;
  std::vector<SpanRecord> finished_;
  size_t dropped_ = 0;
};

}  // namespace griddb::obs
