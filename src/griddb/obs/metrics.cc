#include "griddb/obs/metrics.h"

#include <algorithm>
#include <mutex>

namespace griddb::obs {

double HistogramData::ApproxQuantileMs(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count - 1));
  uint64_t seen = 0;
  for (size_t i = 0; i < kLatencyBuckets; ++i) {
    seen += buckets[i];
    if (seen > rank) return kLatencyBucketUpperMs[i];
  }
  return kLatencyBucketUpperMs[kLatencyBuckets - 1];
}

void HistogramData::Merge(const HistogramData& other) {
  for (size_t i = 0; i < kLatencyBuckets; ++i) buckets[i] += other.buckets[i];
  count += other.count;
  sum += other.sum;
}

HistogramData Histogram::Data() const {
  HistogramData data;
  for (size_t i = 0; i < kLatencyBuckets; ++i) {
    data.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  data.count = count_.load(std::memory_order_relaxed);
  data.sum = sum_.load(std::memory_order_relaxed);
  return data;
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

void MetricsSnapshot::Merge(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.counters) counters[name] += value;
  for (const auto& [name, value] : other.gauges) gauges[name] = value;
  for (const auto& [name, data] : other.histograms) {
    histograms[name].Merge(data);
  }
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  {
    std::shared_lock lock(mu_);
    auto it = counters_.find(name);
    if (it != counters_.end()) return it->second.get();
    if (gauges_.count(name) || histograms_.count(name)) return nullptr;
  }
  std::unique_lock lock(mu_);
  if (gauges_.count(name) || histograms_.count(name)) return nullptr;
  auto [it, inserted] = counters_.emplace(name, std::make_unique<Counter>());
  (void)inserted;  // a racing registration wins; both are the same instrument
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  {
    std::shared_lock lock(mu_);
    auto it = gauges_.find(name);
    if (it != gauges_.end()) return it->second.get();
    if (counters_.count(name) || histograms_.count(name)) return nullptr;
  }
  std::unique_lock lock(mu_);
  if (counters_.count(name) || histograms_.count(name)) return nullptr;
  auto [it, inserted] = gauges_.emplace(name, std::make_unique<Gauge>());
  (void)inserted;
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  {
    std::shared_lock lock(mu_);
    auto it = histograms_.find(name);
    if (it != histograms_.end()) return it->second.get();
    if (counters_.count(name) || gauges_.count(name)) return nullptr;
  }
  std::unique_lock lock(mu_);
  if (counters_.count(name) || gauges_.count(name)) return nullptr;
  auto [it, inserted] = histograms_.emplace(name, std::make_unique<Histogram>());
  (void)inserted;
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::shared_lock lock(mu_);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->value();
  }
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms[name] = histogram->Data();
  }
  return snapshot;
}

void MetricsRegistry::Reset() {
  std::unique_lock lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

std::vector<std::string> MetricsRegistry::Names() const {
  std::shared_lock lock(mu_);
  std::vector<std::string> names;
  names.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, counter] : counters_) names.push_back(name);
  for (const auto& [name, gauge] : gauges_) names.push_back(name);
  for (const auto& [name, histogram] : histograms_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace griddb::obs
