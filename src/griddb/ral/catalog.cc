#include "griddb/ral/catalog.h"

#include <mutex>

#include "griddb/util/strings.h"

namespace griddb::ral {

Result<ConnectionString> ConnectionString::Parse(std::string_view text) {
  ConnectionString out;
  out.raw = std::string(text);
  size_t scheme_end = text.find("://");
  if (scheme_end == std::string_view::npos) {
    return ParseError("connection string '" + out.raw +
                      "' missing '<vendor>://'");
  }
  GRIDDB_ASSIGN_OR_RETURN(out.vendor,
                          sql::VendorFromName(text.substr(0, scheme_end)));
  std::string_view rest = text.substr(scheme_end + 3);
  size_t slash = rest.find('/');
  if (slash == std::string_view::npos || slash + 1 >= rest.size()) {
    return ParseError("connection string '" + out.raw +
                      "' missing '/<database>'");
  }
  out.host = std::string(rest.substr(0, slash));
  out.database = std::string(rest.substr(slash + 1));
  if (out.host.empty()) {
    return ParseError("connection string '" + out.raw + "' missing host");
  }
  return out;
}

bool IsPoolSupported(sql::Vendor vendor) {
  switch (vendor) {
    case sql::Vendor::kOracle:
    case sql::Vendor::kMySql:
    case sql::Vendor::kSqlite:
      return true;
    case sql::Vendor::kMsSql:
      return false;
  }
  return false;
}

Status DatabaseCatalog::Add(Entry entry) {
  GRIDDB_ASSIGN_OR_RETURN(ConnectionString parsed,
                          ConnectionString::Parse(entry.connection_string));
  if (entry.database == nullptr) {
    return InvalidArgument("catalog entry without a database");
  }
  if (parsed.vendor != entry.database->vendor()) {
    return InvalidArgument(
        "connection string vendor '" + std::string(sql::VendorName(parsed.vendor)) +
        "' does not match database vendor '" +
        sql::VendorName(entry.database->vendor()) + "'");
  }
  if (entry.host.empty()) entry.host = parsed.host;
  std::unique_lock lock(mu_);
  auto [it, inserted] = entries_.emplace(entry.connection_string, entry);
  (void)it;
  if (!inserted) {
    return AlreadyExists("'" + entry.connection_string +
                         "' already registered");
  }
  return Status::Ok();
}

Status DatabaseCatalog::Remove(const std::string& connection_string) {
  std::unique_lock lock(mu_);
  if (entries_.erase(connection_string) == 0) {
    return NotFound("'" + connection_string + "' not registered");
  }
  return Status::Ok();
}

Result<DatabaseCatalog::Entry> DatabaseCatalog::Find(
    const std::string& connection_string) const {
  std::shared_lock lock(mu_);
  auto it = entries_.find(connection_string);
  if (it == entries_.end()) {
    return NotFound("no database at '" + connection_string + "'");
  }
  return it->second;
}

std::vector<std::string> DatabaseCatalog::ConnectionStrings() const {
  std::shared_lock lock(mu_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [conn, entry] : entries_) {
    (void)entry;
    out.push_back(conn);
  }
  return out;
}

Status DatabaseCatalog::Authenticate(const Entry& entry,
                                     const std::string& user,
                                     const std::string& password) const {
  if (entry.user.empty()) return Status::Ok();
  if (entry.user != user || entry.password != password) {
    return PermissionDenied("invalid credentials for '" +
                            entry.connection_string + "'");
  }
  return Status::Ok();
}

}  // namespace griddb::ral
