#include "griddb/ral/pool_ral.h"

#include "griddb/sql/parser.h"
#include "griddb/sql/render.h"
#include "griddb/util/strings.h"

namespace griddb::ral {

using storage::ResultSet;

PoolRal::PoolRal(const DatabaseCatalog* catalog, const net::Network* network,
                 net::ServiceCosts costs, std::string client_host)
    : catalog_(catalog),
      network_(network),
      costs_(costs),
      client_host_(std::move(client_host)) {}

Result<DatabaseCatalog::Entry> PoolRal::FindSupported(
    const std::string& connection_string) const {
  GRIDDB_ASSIGN_OR_RETURN(DatabaseCatalog::Entry entry,
                          catalog_->Find(connection_string));
  if (!IsPoolSupported(entry.database->vendor())) {
    return Unsupported("POOL-RAL does not support vendor '" +
                       std::string(sql::VendorName(entry.database->vendor())) +
                       "' (use the JDBC driver)");
  }
  return entry;
}

Status PoolRal::InitHandle(const std::string& connection_string,
                           const std::string& user,
                           const std::string& password, net::Cost* cost) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (handles_.count(connection_string)) return Status::Ok();
  }
  GRIDDB_ASSIGN_OR_RETURN(DatabaseCatalog::Entry entry,
                          FindSupported(connection_string));
  // Connecting and authenticating is the expensive part (paper §5.2).
  if (cost) cost->AddMs(costs_.connect_auth_ms);
  GRIDDB_RETURN_IF_ERROR(catalog_->Authenticate(entry, user, password));
  std::lock_guard<std::mutex> lock(mu_);
  handles_[connection_string] = true;
  return Status::Ok();
}

bool PoolRal::HasHandle(const std::string& connection_string) const {
  std::lock_guard<std::mutex> lock(mu_);
  return handles_.count(connection_string) > 0;
}

size_t PoolRal::NumHandles() const {
  std::lock_guard<std::mutex> lock(mu_);
  return handles_.size();
}

Result<ResultSet> PoolRal::Execute(const std::string& connection_string,
                                   const std::vector<std::string>& select_fields,
                                   const std::vector<std::string>& tables,
                                   const std::string& where_clause,
                                   net::Cost* cost) {
  if (!HasHandle(connection_string)) {
    return Unavailable("no POOL-RAL handle for '" + connection_string +
                       "'; call InitHandle first");
  }
  GRIDDB_ASSIGN_OR_RETURN(DatabaseCatalog::Entry entry,
                          FindSupported(connection_string));
  if (tables.empty()) return InvalidArgument("no tables given");
  if (select_fields.empty()) return InvalidArgument("no select fields given");

  // Build the SELECT in the target dialect. Fields and the where clause
  // are parsed as expressions of that dialect, matching the RAL's
  // behaviour of passing attribute lists and condition strings through to
  // the vendor plugin.
  const sql::Dialect& dialect = entry.database->dialect();
  std::string text = "SELECT " + Join(select_fields, ", ") + " FROM " +
                     Join(tables, ", ");
  std::string_view trimmed_where = Trim(where_clause);
  if (!trimmed_where.empty()) {
    text += " WHERE " + std::string(trimmed_where);
  }
  GRIDDB_ASSIGN_OR_RETURN(std::unique_ptr<sql::SelectStmt> stmt,
                          sql::ParseSelect(text, dialect));
  GRIDDB_ASSIGN_OR_RETURN(ResultSet rs, entry.database->ExecuteSelect(*stmt));

  // Result shipment crosses the wire, so fault injection applies even for
  // callers that skip cost accounting (a down mart must fail the fetch).
  GRIDDB_ASSIGN_OR_RETURN(
      double transfer,
      network_->WireTransferMs(entry.host, client_host_, rs.WireSize()));
  if (cost) {
    cost->AddMs(costs_.db_execute_base_ms);
    cost->AddMs(costs_.db_per_row_ms * static_cast<double>(rs.num_rows()));
    cost->AddMs(costs_.per_row_ser_ms * static_cast<double>(rs.num_rows()));
    cost->AddMs(transfer);
  }
  return rs;
}

Result<std::vector<std::string>> PoolRal::ListTables(
    const std::string& connection_string) const {
  GRIDDB_ASSIGN_OR_RETURN(DatabaseCatalog::Entry entry,
                          FindSupported(connection_string));
  return entry.database->TableNames();
}

Result<storage::TableSchema> PoolRal::DescribeTable(
    const std::string& connection_string, const std::string& table) const {
  GRIDDB_ASSIGN_OR_RETURN(DatabaseCatalog::Entry entry,
                          FindSupported(connection_string));
  return entry.database->GetSchema(table);
}

}  // namespace griddb::ral
