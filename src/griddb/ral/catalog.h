// Grid-wide database catalog: connection strings -> database servers.
//
// Stands in for the DNS + listener + credential infrastructure that lets
// the prototype reach its backends. A connection string has the form
//   <vendor>://<host>/<database>        e.g. oracle://cern-tier1/warehouse
// and resolves to an embedded engine::Database plus the credentials a
// client must present and the network host the server lives on.
#pragma once

#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "griddb/engine/database.h"
#include "griddb/util/status.h"

namespace griddb::ral {

/// Parsed "<vendor>://<host>/<database>".
struct ConnectionString {
  sql::Vendor vendor = sql::Vendor::kSqlite;
  std::string host;
  std::string database;
  std::string raw;

  static Result<ConnectionString> Parse(std::string_view text);
};

/// The vendors the real POOL-RAL libraries supported (Oracle, MySQL,
/// SQLite); MS-SQL goes through the JDBC/Unity path instead (paper §4.3).
bool IsPoolSupported(sql::Vendor vendor);

class DatabaseCatalog {
 public:
  struct Entry {
    std::string connection_string;
    engine::Database* database = nullptr;
    std::string host;          ///< Network host the server runs on.
    std::string user;          ///< Empty = no authentication required.
    std::string password;
  };

  /// Registers a database server. The connection string must parse, and
  /// its vendor must match the database's vendor.
  Status Add(Entry entry);
  Status Remove(const std::string& connection_string);

  Result<Entry> Find(const std::string& connection_string) const;
  std::vector<std::string> ConnectionStrings() const;

  /// Credential check used by drivers when opening a connection.
  Status Authenticate(const Entry& entry, const std::string& user,
                      const std::string& password) const;

 private:
  mutable std::shared_mutex mu_;
  std::map<std::string, Entry> entries_;
};

}  // namespace griddb::ral
