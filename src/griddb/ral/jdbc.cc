#include "griddb/ral/jdbc.h"

namespace griddb::ral {

Result<std::unique_ptr<JdbcConnection>> JdbcConnection::Open(
    const DatabaseCatalog* catalog, const net::Network* network,
    const net::ServiceCosts& costs, const std::string& connection_string,
    const std::string& user, const std::string& password,
    std::string client_host, net::Cost* cost) {
  GRIDDB_ASSIGN_OR_RETURN(DatabaseCatalog::Entry entry,
                          catalog->Find(connection_string));
  if (cost) cost->AddMs(costs.connect_auth_ms);
  GRIDDB_RETURN_IF_ERROR(catalog->Authenticate(entry, user, password));
  return std::unique_ptr<JdbcConnection>(new JdbcConnection(
      std::move(entry), network, costs, std::move(client_host)));
}

Result<storage::ResultSet> JdbcConnection::ExecuteQuery(
    const std::string& sql_text, net::Cost* cost) {
  GRIDDB_ASSIGN_OR_RETURN(storage::ResultSet rs,
                          entry_.database->Execute(sql_text));
  // Result shipment crosses the wire, so fault injection applies even for
  // callers that skip cost accounting (a down mart must fail the fetch).
  GRIDDB_ASSIGN_OR_RETURN(
      double transfer,
      network_->WireTransferMs(entry_.host, client_host_, rs.WireSize()));
  if (cost) {
    cost->AddMs(costs_.db_execute_base_ms);
    cost->AddMs(costs_.db_per_row_ms * static_cast<double>(rs.num_rows()));
    cost->AddMs(costs_.per_row_ser_ms * static_cast<double>(rs.num_rows()));
    cost->AddMs(transfer);
  }
  return rs;
}

}  // namespace griddb::ral
