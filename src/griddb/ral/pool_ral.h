// POOL Relational Abstraction Layer wrapper (paper §4.7).
//
// The prototype wraps CERN's POOL-RAL C++ libraries behind a JNI shim
// exposing exactly two methods: one to initialize a service handle for a
// database from a connection string + credentials, and one that takes
// (connection string, select fields, table names, where clause) and
// returns a 2-D array of results. This class reproduces that interface —
// including the restriction that a query addresses tables in ONE database
// at a time, which is precisely the limitation the paper's middleware
// works around.
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "griddb/net/network.h"
#include "griddb/ral/catalog.h"
#include "griddb/storage/result_set.h"
#include "griddb/util/status.h"

namespace griddb::ral {

class PoolRal {
 public:
  /// `client_host` is where the wrapper runs (the JClarens server's host);
  /// result shipping is charged from the database host to it.
  PoolRal(const DatabaseCatalog* catalog, const net::Network* network,
          net::ServiceCosts costs, std::string client_host);

  /// Paper wrapper method 1: initialize a service handle. Charges the
  /// connect+auth cost once per connection string; re-initializing an
  /// existing handle is a cheap no-op (the handle list is consulted).
  Status InitHandle(const std::string& connection_string,
                    const std::string& user, const std::string& password,
                    net::Cost* cost = nullptr);

  bool HasHandle(const std::string& connection_string) const;
  size_t NumHandles() const;

  /// Paper wrapper method 2: execute a (fields, tables, where) query on
  /// the database behind `connection_string` and return the 2-D result.
  /// Fails (kUnsupported) for vendors outside POOL support and
  /// (kUnavailable) when InitHandle was not called first.
  Result<storage::ResultSet> Execute(const std::string& connection_string,
                                     const std::vector<std::string>& select_fields,
                                     const std::vector<std::string>& tables,
                                     const std::string& where_clause,
                                     net::Cost* cost = nullptr);

  /// Schema introspection through the RAL (vendor-neutral).
  Result<std::vector<std::string>> ListTables(
      const std::string& connection_string) const;
  Result<storage::TableSchema> DescribeTable(
      const std::string& connection_string, const std::string& table) const;

 private:
  Result<DatabaseCatalog::Entry> FindSupported(
      const std::string& connection_string) const;

  const DatabaseCatalog* catalog_;
  const net::Network* network_;
  net::ServiceCosts costs_;
  std::string client_host_;
  mutable std::mutex mu_;
  std::map<std::string, bool> handles_;  // connection string -> initialized
};

}  // namespace griddb::ral
