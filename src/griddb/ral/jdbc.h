// JDBC-style connection for databases outside POOL-RAL support.
//
// The prototype reaches MS-SQL (and any other unsupported backend)
// through vendor JDBC drivers. This connection object carries the same
// cost model as the POOL path — connect+auth once, per-query execute and
// result-shipping charges — but executes raw SQL text in the target
// database's own dialect, exactly like a JDBC Statement would.
#pragma once

#include <memory>
#include <string>

#include "griddb/net/network.h"
#include "griddb/ral/catalog.h"
#include "griddb/storage/result_set.h"
#include "griddb/util/status.h"

namespace griddb::ral {

class JdbcConnection {
 public:
  /// Opens (and authenticates) a connection. Charges connect+auth.
  static Result<std::unique_ptr<JdbcConnection>> Open(
      const DatabaseCatalog* catalog, const net::Network* network,
      const net::ServiceCosts& costs, const std::string& connection_string,
      const std::string& user, const std::string& password,
      std::string client_host, net::Cost* cost = nullptr);

  /// Executes SQL text (parsed in the target vendor's dialect).
  Result<storage::ResultSet> ExecuteQuery(const std::string& sql_text,
                                          net::Cost* cost = nullptr);

  engine::Database* database() const { return entry_.database; }
  const std::string& connection_string() const {
    return entry_.connection_string;
  }

 private:
  JdbcConnection(DatabaseCatalog::Entry entry, const net::Network* network,
                 net::ServiceCosts costs, std::string client_host)
      : entry_(std::move(entry)),
        network_(network),
        costs_(costs),
        client_host_(std::move(client_host)) {}

  DatabaseCatalog::Entry entry_;
  const net::Network* network_;
  net::ServiceCosts costs_;
  std::string client_host_;
};

}  // namespace griddb::ral
